"""The campaign runner: expand a spec, execute cells, collect results.

One :class:`Runner` drives every campaign family (chaos, profile,
mechanistic, SNMP, managed-service, synth) through the same pipeline:

1. expand the :class:`~repro.experiments.spec.ExperimentSpec` into cells
   with deterministic per-cell seeds;
2. satisfy what it can from the content-addressed
   :class:`~repro.experiments.cache.ResultCache` and, on a resumed run,
   from the :class:`~repro.experiments.checkpoint.CampaignCheckpoint`
   journal (which restores quarantined cells the cache never stores);
3. execute the rest through a pluggable executor — serial in-process, or
   a ``ProcessPoolExecutor`` (``jobs > 1``) with chunked submission and a
   per-cell wall-clock timeout measured from *observed execution start*
   (workers stamp a shared start-time map), so a cell that merely queued
   behind a slow batch never burns its budget waiting;
4. quarantine failed cells (exception or timeout) as
   :class:`CellResult` errors instead of aborting the campaign, so one
   pathological grid point cannot cost you the other 99.  A timed-out
   cell's worker cannot be cancelled (``Future.cancel`` is a no-op once
   running), so the pool is recycled — hung workers are terminated and
   replaced — rather than letting one wedged cell serialize the
   remaining batches.  Cells a batch could not execute at all (the pool
   broke under them, or every worker slot wedged past budget before the
   queued cells could start) are resubmitted on the recycled pool, with
   a retry cap so a cell that keeps killing its workers is eventually
   quarantined instead of looping forever — every cell always settles.

SIGINT/SIGTERM are handled gracefully while a campaign runs: the first
signal stops new submissions, cancels not-yet-started futures, drains
the in-flight cells, flushes the checkpoint, and raises
:class:`CampaignInterrupted` (the CLI maps it to exit code 75,
``EX_TEMPFAIL`` — "try again").  A second signal aborts immediately.

Every cell result uniformly carries its wall-clock seconds; scenarios
that run the fluid simulator embed their
:class:`~repro.sim.probe.SimProbe` counters in the result payload, so
engine instrumentation flows into campaign reports for free.

Multi-stage pipelines ride the same machinery.  :meth:`Runner.run_pipeline`
executes a :class:`~repro.experiments.spec.PipelineSpec`: each stage's
``needs`` resolve to the upstream stages' (or external specs')
:class:`~repro.experiments.artifacts.ArtifactSet` objects, whose digests
fold into the stage's cell keys and checkpoint fingerprint — so a warm
re-run short-circuits entire stages through the cache, an upstream edit
re-keys (and therefore re-runs) exactly the stages downstream of it, and
a kill mid-stage resumes from that stage's own journal.

Under ``jobs > 1`` the pipeline runs on a **ready-set DAG scheduler**:
one worker pool serves the whole pipeline, and a stage becomes runnable
the moment the artifact digests of everything it ``needs`` settle — so
the two middle stages of a diamond execute their cells side by side in
shared batches instead of serializing stage by stage.  Scheduling order
never leaks into results: cell keys, fingerprints, and artifacts are
pure functions of the specs and upstream digests, so any legal
interleaving produces byte-identical artifacts to the ``jobs=1`` serial
stage loop (which is preserved verbatim as the ``jobs == 1`` path).
Per-stage checkpoints journal exactly as before; a drain signal flushes
every open stage's journal and exits resumable.  A stage that settles
with quarantined cells *cancels* its artifact-consuming dependents
(transitively) — their cells settle with a one-line ``cancelled:``
reason instead of the scheduler raising mid-flight, and stages that
never needed the broken grid still run to completion.

:meth:`Runner.dry_run` walks the same plan without executing anything;
:func:`plan_dag_summary` reduces a dry-run plan to the stage DAG's
critical path, width, and a predicted serial-vs-parallel cell schedule.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import os
import signal
import threading
import time
import traceback
import warnings
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from .artifacts import Artifact, ArtifactSet, keys_digest
from .cache import _CACHE_VERSION, ResultCache, cell_key
from .checkpoint import CampaignCheckpoint, spec_fingerprint
from .registry import get_scenario, scenario_needs_artifacts
from .spec import Cell, ExperimentSpec, PipelineSpec, load_spec

__all__ = [
    "CellResult",
    "CampaignResult",
    "CampaignInterrupted",
    "StagePlan",
    "PipelineResult",
    "PlanSummary",
    "plan_dag_summary",
    "Runner",
]

#: supervisor poll interval while watching a parallel batch
_POLL_S = 0.05

#: times a cell is resubmitted after a broken pool before assuming the
#: cell itself is what keeps killing the workers and quarantining it
_MAX_POOL_RETRIES = 2


def _worker_init() -> None:
    """Worker processes ignore SIGINT so a Ctrl-C (delivered to the whole
    process group) leaves in-flight cells drainable by the parent."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def _execute_cell(
    scenario: str,
    params: dict[str, Any],
    seed: int,
    start_times: Any = None,
    index: int | None = None,
    artifacts: dict[str, ArtifactSet] | None = None,
) -> tuple[Any, float]:
    """Run one cell; module-level so it pickles into worker processes.

    ``start_times`` is an optional shared mapping the worker stamps with
    ``time.monotonic()`` at execution start — the supervisor's timeout
    clock starts there, not at submission.  ``artifacts`` are the
    resolved upstream sets an analysis scenario receives as its third
    argument (plain frozen dataclasses, so they pickle into workers).
    """
    if start_times is not None and index is not None:
        try:
            start_times[index] = time.monotonic()
        except Exception:  # a dead manager must not fail the cell
            pass
    fn = get_scenario(scenario)
    t0 = time.perf_counter()
    if scenario_needs_artifacts(scenario):
        result = fn(params, seed, artifacts or {})
    else:
        result = fn(params, seed)
    return result, time.perf_counter() - t0


@dataclasses.dataclass(frozen=True)
class CellResult:
    """Outcome of one grid point."""

    index: int
    coords: dict[str, Any]
    params: dict[str, Any]
    seed: int
    #: the scenario's return value; ``None`` for quarantined cells
    result: Any
    #: wall-clock seconds the scenario took (cached: the *original* wall)
    wall_s: float
    cached: bool = False
    #: quarantine reason ("TimeoutError: ..." / "ValueError: ..."), or None
    error: str | None = None
    #: the cell's content-addressed cache key (None when uncomputable)
    key: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """All cells of one campaign, in spec cell order."""

    spec: ExperimentSpec
    cells: tuple[CellResult, ...]
    #: end-to-end campaign wall clock, including cache traffic
    wall_s: float
    #: inputs-aware spec fingerprint (provenance identity of this run)
    fingerprint: str | None = None

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_cached(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def n_failed(self) -> int:
        return sum(1 for c in self.cells if not c.ok)

    @property
    def n_executed(self) -> int:
        return sum(1 for c in self.cells if not c.cached and c.ok)

    def results(self) -> list[Any]:
        """Cell results in grid order; raises if any cell is quarantined."""
        bad = [c for c in self.cells if not c.ok]
        if bad:
            raise RuntimeError(
                f"{len(bad)} quarantined cell(s); first: "
                f"cell {bad[0].index} {bad[0].coords}: {bad[0].error}"
            )
        return [c.result for c in self.cells]

    def artifact_set(self, name: str | None = None) -> ArtifactSet:
        """This campaign's cells as first-class artifacts, grid order.

        Raises if any cell is quarantined — a downstream consumer must
        never silently analyze a partial grid.
        """
        bad = [c for c in self.cells if not c.ok]
        if bad:
            raise RuntimeError(
                f"campaign '{self.spec.name}' has {len(bad)} quarantined "
                f"cell(s); first: cell {bad[0].index} {bad[0].coords}: "
                f"{bad[0].error}"
            )
        return ArtifactSet(
            name=name or self.spec.name,
            artifacts=tuple(
                Artifact(
                    scenario=self.spec.scenario,
                    params=c.params,
                    seed=c.seed,
                    key=c.key,
                    result=c.result,
                    wall_s=c.wall_s,
                    cache_version=_CACHE_VERSION,
                    spec_fingerprint=self.fingerprint,
                    spec_name=self.spec.name,
                    index=c.index,
                    coords=c.coords,
                    cached=c.cached,
                )
                for c in self.cells
            ),
        )

    def format(self) -> str:
        """Human-readable campaign summary (also what the CLI prints)."""
        axes = " x ".join(self.spec.axes) if self.spec.axes else "(no axes)"
        lines = [
            f"campaign '{self.spec.name}': scenario {self.spec.scenario}, "
            f"{self.n_cells} cell(s) over {axes}, seed {self.spec.seed} "
            f"({self.spec.seed_mode})"
        ]
        for c in self.cells:
            coords = " ".join(f"{k}={v}" for k, v in c.coords.items())
            status = "FAIL" if not c.ok else ("hit " if c.cached else "run ")
            tail = c.error if not c.ok else _summarize(c.result)
            lines.append(
                f"  [{c.index:>3}] {status} {c.wall_s:8.3f} s  {coords:<40} {tail}"
            )
        lines.append(
            f"cells: {self.n_cells} total, {self.n_executed} executed, "
            f"{self.n_cached} cached, {self.n_failed} failed; "
            f"wall {self.wall_s:.2f} s"
        )
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class StagePlan:
    """One stage of an expanded pipeline plan (:meth:`Runner.dry_run`).

    Everything here is computed without executing a single cell: keys
    and digests are pure functions of the specs, and the cache-hit
    census only checks artifact existence.
    """

    #: the key downstream stages resolve this stage under (a stage name,
    #: or an external spec reference exactly as written in ``needs``)
    name: str
    scenario: str
    needs: tuple[str, ...]
    #: inputs-aware fingerprint (checkpoint/provenance identity)
    fingerprint: str
    #: ordered cell keys (one per grid point)
    keys: tuple[str, ...]
    #: how many of those keys are already in the cache
    n_hits: int
    #: True for an external spec folded in as an implicit stage
    external: bool = False

    @property
    def n_cells(self) -> int:
        return len(self.keys)

    @property
    def n_to_execute(self) -> int:
        return self.n_cells - self.n_hits


@dataclasses.dataclass(frozen=True)
class PlanSummary:
    """The stage DAG's shape and predicted schedule, from a dry-run plan.

    Pure plan arithmetic — nothing executes.  ``depth`` assigns each
    stage its longest-path level (roots at 0); ``width`` is the largest
    set of stages sharing a level, i.e. how many stages the ready-set
    scheduler can have runnable at once.  The critical path maximizes
    *cells still to execute* along a dependency chain, so a fully
    cached branch never masquerades as the bottleneck.
    ``parallel_cells`` is the classic makespan lower bound
    ``max(critical_cells, ceil(serial_cells / jobs))`` under unit cell
    cost — what a perfect shared-pool schedule cannot beat.
    """

    #: stage name -> longest-path depth (roots at 0)
    depths: dict[str, int]
    #: max number of stages sharing one depth level
    width: int
    #: stage names along the heaviest to-execute chain, root first
    critical_path: tuple[str, ...]
    #: cells still to execute, summed over every stage (serial schedule)
    serial_cells: int
    #: cells still to execute along the critical path
    critical_cells: int
    #: makespan lower bound in cells for the given worker count
    parallel_cells: int
    #: worker count the parallel bound was computed for
    jobs: int

    @property
    def depth(self) -> int:
        return max(self.depths.values(), default=-1) + 1

    def format(self) -> str:
        path = " -> ".join(self.critical_path) if self.critical_path else "(empty)"
        lines = [
            f"stage DAG: depth {self.depth}, width {self.width} "
            f"(max concurrently-runnable stages)",
            f"critical path: {path}  ({self.critical_cells} cell(s) to execute)",
            f"schedule: serial {self.serial_cells} cell(s); "
            f"parallel >= {self.parallel_cells} cell-round(s) "
            f"at {self.jobs} job(s)",
        ]
        return "\n".join(lines)


def plan_dag_summary(plans: list[StagePlan], jobs: int = 1) -> PlanSummary:
    """Reduce a :meth:`Runner.dry_run` plan to its DAG schedule summary."""
    by_name = {p.name: p for p in plans}
    depths: dict[str, int] = {}
    best_chain: dict[str, tuple[int, tuple[str, ...]]] = {}

    def visit(name: str) -> tuple[int, tuple[int, tuple[str, ...]]]:
        if name in depths:
            return depths[name], best_chain[name]
        plan = by_name[name]
        depth = 0
        chain_cells, chain = plan.n_to_execute, (name,)
        for need in plan.needs:
            nd, (nc, npath) = visit(need)
            depth = max(depth, nd + 1)
            if nc + plan.n_to_execute > chain_cells:
                chain_cells = nc + plan.n_to_execute
                chain = npath + (name,)
        depths[name] = depth
        best_chain[name] = (chain_cells, chain)
        return depth, best_chain[name]

    for plan in plans:
        visit(plan.name)
    level_sizes: dict[int, int] = {}
    for depth in depths.values():
        level_sizes[depth] = level_sizes.get(depth, 0) + 1
    serial = sum(p.n_to_execute for p in plans)
    critical_cells, critical_path = max(
        best_chain.values(), default=(0, ())
    )
    jobs = max(int(jobs), 1)
    parallel = max(critical_cells, -(-serial // jobs))
    return PlanSummary(
        depths=depths,
        width=max(level_sizes.values(), default=0),
        critical_path=critical_path,
        serial_cells=serial,
        critical_cells=critical_cells,
        parallel_cells=parallel,
        jobs=jobs,
    )


@dataclasses.dataclass(frozen=True)
class PipelineResult:
    """Every stage of one pipeline run, in plan order.

    ``stages`` maps each stage's resolution key — a stage name, or an
    external spec reference as written in ``needs`` — to its
    :class:`CampaignResult`; insertion order is the deterministic plan
    order (externals first, then topological stage order), regardless
    of how the DAG scheduler interleaved execution.
    """

    pipeline: PipelineSpec
    stages: dict[str, CampaignResult]
    #: end-to-end pipeline wall clock, including cache traffic
    wall_s: float

    def stage(self, name: str) -> CampaignResult:
        try:
            return self.stages[name]
        except KeyError:
            raise KeyError(
                f"no stage {name!r} in pipeline {self.pipeline.name!r}; "
                f"ran: {list(self.stages)}"
            ) from None

    @property
    def n_cells(self) -> int:
        return sum(c.n_cells for c in self.stages.values())

    @property
    def n_cached(self) -> int:
        return sum(c.n_cached for c in self.stages.values())

    @property
    def n_failed(self) -> int:
        return sum(c.n_failed for c in self.stages.values())

    @property
    def n_executed(self) -> int:
        return sum(c.n_executed for c in self.stages.values())

    def format(self) -> str:
        """Per-stage summary (also what the CLI prints for pipelines)."""
        lines = [
            f"pipeline '{self.pipeline.name}': "
            f"{len(self.stages)} stage(s), {self.n_cells} cell(s)"
        ]
        for name, campaign in self.stages.items():
            lines.append(
                f"  stage '{name}' [{campaign.spec.scenario}]: "
                f"{campaign.n_cells} total, {campaign.n_executed} executed, "
                f"{campaign.n_cached} cached, {campaign.n_failed} failed; "
                f"wall {campaign.wall_s:.2f} s"
            )
        lines.append(
            f"pipeline cells: {self.n_cells} total, "
            f"{self.n_executed} executed, {self.n_cached} cached, "
            f"{self.n_failed} failed; wall {self.wall_s:.2f} s"
        )
        return "\n".join(lines)


class CampaignInterrupted(RuntimeError):
    """A campaign stopped on SIGINT/SIGTERM after draining in-flight cells.

    The run is *resumable*: settled cells live in the cache, quarantined
    cells and the batch frontier live in the checkpoint journal, and
    re-running the same spec against the same cache/checkpoint executes
    only what never finished.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        signum: int,
        n_cells: int,
        n_settled: int,
        n_executed: int,
        n_cached: int,
        n_failed: int,
        checkpoint_path: os.PathLike | str | None,
    ) -> None:
        self.spec = spec
        self.signum = signum
        self.n_cells = n_cells
        self.n_settled = n_settled
        self.n_executed = n_executed
        self.n_cached = n_cached
        self.n_failed = n_failed
        self.checkpoint_path = checkpoint_path
        try:
            signame = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - exotic signum
            signame = str(signum)
        where = (
            f"; checkpoint at {checkpoint_path}" if checkpoint_path else ""
        )
        super().__init__(
            f"campaign '{spec.name}' interrupted by {signame}: "
            f"{n_settled}/{n_cells} cells settled "
            f"({n_executed} executed, {n_cached} cached, {n_failed} failed)"
            f"{where}; re-run with the same spec and cache to resume"
        )


class _SignalDrain:
    """Context manager that converts SIGINT/SIGTERM into a drain flag.

    First signal: remember it and let the runner drain gracefully.
    Second signal: the user really means it — raise ``KeyboardInterrupt``
    from the handler for an immediate (non-resumable-beyond-the-cache)
    exit.  Handlers only install from the main thread; elsewhere the
    drain flag simply never fires.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.signum: int | None = None
        self._previous: dict[int, Any] = {}

    @property
    def triggered(self) -> bool:
        return self.signum is not None

    def _handle(self, signum: int, frame: Any) -> None:
        if self.signum is not None:
            raise KeyboardInterrupt
        self.signum = signum

    def __enter__(self) -> "_SignalDrain":
        if threading.current_thread() is threading.main_thread():
            for sig in self.SIGNALS:
                try:
                    self._previous[sig] = signal.signal(sig, self._handle)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for sig, handler in self._previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass


def _summarize(result: Any, limit: int = 4) -> str:
    """First few scalar fields of a result dict, for the per-cell line."""
    if not isinstance(result, dict):
        return ""
    parts = []
    for key in sorted(result):
        value = result[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        parts.append(f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}")
        if len(parts) == limit:
            break
    return " ".join(parts)


@dataclasses.dataclass(frozen=True)
class _RunContext:
    """Everything one campaign's executors need beyond the cell itself.

    Bundles the spec with the pipeline-era extras — upstream artifact
    sets (for analysis scenarios), their digests (folded into cell keys
    and stored with each artifact), and the inputs-aware fingerprint
    (the provenance header) — so the executor plumbing stays one
    argument wide.
    """

    spec: ExperimentSpec
    #: dependency name -> resolved upstream set (analysis scenarios only)
    artifacts: dict[str, ArtifactSet] | None = None
    #: dependency name -> upstream set digest (participates in cell keys)
    digests: dict[str, str] | None = None
    fingerprint: str | None = None


@dataclasses.dataclass
class _Task:
    """One dispatchable cell bound to its stage's context.

    The parallel executors work on tasks, not bare cells, so a single
    worker-pool batch can mix cells from several pipeline stages: each
    task carries its stage's context, its settle target, and its
    checkpoint journal.  ``token`` is unique across the whole run — the
    worker stamps execution start under it in the shared map, so equal
    cell indices from sibling stages can never collide.
    """

    ctx: _RunContext
    cell: Cell
    key: str | None
    settled: dict[int, CellResult]
    ckpt: CampaignCheckpoint | None
    token: int
    #: resolution key of the owning stage (None for flat campaigns)
    stage: str | None = None


@dataclasses.dataclass
class _StageRun:
    """Mutable per-stage state inside the DAG scheduler."""

    key: str
    spec: ExperimentSpec
    needs: tuple[str, ...]
    external: bool
    #: set once the stage's needs settled and its cells were resolved
    ctx: _RunContext | None = None
    ckpt: CampaignCheckpoint | None = None
    cells: list[Cell] = dataclasses.field(default_factory=list)
    settled: dict[int, CellResult] = dataclasses.field(default_factory=dict)
    #: resolved cells not yet dispatched, in grid order
    pending: list[tuple[Cell, str | None]] = dataclasses.field(default_factory=list)
    t0: float = 0.0
    opened: bool = False
    #: final result; also set (with all-cancelled cells) on cancellation
    campaign: CampaignResult | None = None
    cancelled: bool = False

    @property
    def finished(self) -> bool:
        return self.campaign is not None


class Runner:
    """Execute campaigns: serial or process-parallel, cached, resumable.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (default) runs serially in-process.
        For pipelines the pool is *pipeline-wide*: cells from every
        runnable stage share it, so sibling stages of a diamond run
        side by side.
    cache:
        A :class:`ResultCache` to consult before and fill after each
        cell; ``None`` disables caching.
    cell_timeout_s:
        Per-cell wall-clock budget (parallel mode only — a serial run
        has no supervisor to interrupt the cell), measured from the
        cell's observed execution start, not its submission; overruns
        quarantine the cell and the wedged worker is terminated when
        the pool recycles.
    chunk_size:
        Cells submitted per worker per batch in parallel mode.  Batches
        bound how much work is in flight, so a campaign killed mid-run
        has cached everything completed rather than nothing.
    checkpoint_dir:
        Directory for :class:`CampaignCheckpoint` journals; ``None``
        disables checkpointing.  With a journal, a killed run restarted
        with the same spec (and cache) resumes mid-batch: cached cells
        come back as hits, quarantined cells are restored verbatim, and
        only genuinely unfinished cells execute.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        cell_timeout_s: float | None = None,
        chunk_size: int = 4,
        checkpoint_dir: str | os.PathLike | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.cell_timeout_s = cell_timeout_s
        self.chunk_size = chunk_size
        self.checkpoint_dir = checkpoint_dir
        #: optional scheduling-order hook for the DAG scheduler: called
        #: with the candidate list of ``(stage_key, cell_index)`` pairs
        #: (plan order) before each batch is cut; returns the pairs in
        #: the order to dispatch.  Exists so tests can force arbitrary
        #: legal interleavings and pin that results never depend on one.
        self.schedule_hook = None
        #: monotonically increasing task token source (uniqueness only)
        self._next_token = 0

    def run(
        self,
        spec: ExperimentSpec,
        force: bool = False,
        inputs: dict[str, ArtifactSet] | None = None,
    ) -> CampaignResult:
        """Expand ``spec`` and settle every cell; never raises per-cell.

        ``force=True`` skips cache lookups and checkpoint restore
        (results still get stored).  ``inputs`` are the resolved
        upstream artifact sets an analysis scenario consumes (dependency
        name -> :class:`ArtifactSet`); their digests fold into every
        cell key and into the campaign's fingerprint, so changing
        anything upstream re-keys (and re-runs) this campaign while a
        byte-identical upstream resolves straight from the cache.
        Raises :class:`CampaignInterrupted` if a SIGINT/SIGTERM arrived;
        everything settled up to that point is journaled/cached for
        resume.
        """
        t0 = time.perf_counter()
        ctx, cells, ckpt, settled, pending = self._prepare(spec, force, inputs)
        if pending:
            with _SignalDrain() as drain:
                if self.jobs == 1:
                    self._run_serial(ctx, pending, settled, ckpt, drain)
                else:
                    self._run_parallel(ctx, pending, settled, ckpt, drain)
                if drain.triggered:
                    if ckpt is not None:
                        ckpt.flush()
                    raise self._interrupted(spec, drain.signum, cells, settled, ckpt)
        return self._finish(ctx, cells, ckpt, settled, t0)

    def _prepare(
        self,
        spec: ExperimentSpec,
        force: bool,
        inputs: dict[str, ArtifactSet] | None,
    ) -> tuple[
        _RunContext,
        list[Cell],
        CampaignCheckpoint | None,
        dict[int, CellResult],
        list[tuple[Cell, str | None]],
    ]:
        """Resolve one campaign up to (but not into) execution.

        Validates the scenario signature, folds upstream digests into
        the context, loads/restores the checkpoint journal, satisfies
        cache hits, and returns the still-pending cells.  Shared by
        :meth:`run` and the DAG scheduler's stage-open step.
        """
        get_scenario(spec.scenario)  # fail fast on unknown scenarios
        if scenario_needs_artifacts(spec.scenario):
            if inputs is None:
                raise ValueError(
                    f"scenario {spec.scenario!r} consumes upstream artifacts; "
                    "run it as a pipeline stage with needs=[...] (or pass "
                    "inputs= explicitly)"
                )
        elif inputs is not None:
            raise ValueError(
                f"scenario {spec.scenario!r} takes no upstream artifacts "
                "but inputs were supplied; register it with "
                "needs_artifacts=True or drop the stage's needs"
            )
        digests = (
            {name: aset.digest for name, aset in sorted(inputs.items())}
            if inputs
            else None
        )
        fingerprint = spec_fingerprint(spec, inputs=digests)
        ctx = _RunContext(
            spec=spec,
            artifacts=dict(inputs) if inputs else None,
            digests=digests,
            fingerprint=fingerprint,
        )
        cells = spec.cells()
        ckpt: CampaignCheckpoint | None = None
        if self.checkpoint_dir is not None:
            ckpt = CampaignCheckpoint.for_spec(
                self.checkpoint_dir, spec, inputs=digests
            )
            if not force:
                ckpt.load()
        settled: dict[int, CellResult] = {}
        pending: list[tuple[Cell, str | None]] = []
        for cell in cells:
            key = self._key_for(ctx, cell)
            if not force and ckpt is not None:
                entry = ckpt.settled.get(cell.index)
                if entry is not None and entry.error is not None:
                    # quarantined cells are never cached; restore them
                    # verbatim so the resumed campaign reports exactly
                    # what the uninterrupted one would
                    settled[cell.index] = CellResult(
                        index=cell.index,
                        coords=cell.coords,
                        params=cell.params,
                        seed=cell.seed,
                        result=None,
                        wall_s=entry.wall_s,
                        error=entry.error,
                        key=key,
                    )
                    continue
            hit = (
                self.cache.get(key)
                if (self.cache is not None and key is not None and not force)
                else None
            )
            if hit is not None:
                settled[cell.index] = CellResult(
                    index=cell.index,
                    coords=cell.coords,
                    params=cell.params,
                    seed=cell.seed,
                    result=hit["result"],
                    wall_s=float(hit["wall_s"]),
                    cached=True,
                    key=key,
                )
            else:
                pending.append((cell, key))
        return ctx, cells, ckpt, settled, pending

    @staticmethod
    def _interrupted(
        spec: ExperimentSpec,
        signum: int,
        cells: list[Cell],
        settled: dict[int, CellResult],
        ckpt: CampaignCheckpoint | None,
    ) -> CampaignInterrupted:
        return CampaignInterrupted(
            spec,
            signum,
            n_cells=len(cells),
            n_settled=len(settled),
            n_executed=sum(1 for c in settled.values() if c.ok and not c.cached),
            n_cached=sum(1 for c in settled.values() if c.cached),
            n_failed=sum(1 for c in settled.values() if not c.ok),
            checkpoint_path=ckpt.path if ckpt is not None else None,
        )

    def _finish(
        self,
        ctx: _RunContext,
        cells: list[Cell],
        ckpt: CampaignCheckpoint | None,
        settled: dict[int, CellResult],
        t0: float,
    ) -> CampaignResult:
        missing = [c.index for c in cells if c.index not in settled]
        if missing:  # invariant: every non-drained path settles its cell
            raise RuntimeError(
                f"internal error: {len(missing)} cell(s) never settled "
                f"(first: {missing[0]}); the checkpoint journal was kept "
                "so the run stays resumable"
            )
        if ckpt is not None:
            ckpt.complete()
        ordered = tuple(settled[c.index] for c in cells)
        return CampaignResult(
            spec=ctx.spec,
            cells=ordered,
            wall_s=time.perf_counter() - t0,
            fingerprint=ctx.fingerprint,
        )

    def _key_for(self, ctx: _RunContext, cell: Cell) -> str | None:
        """The cell's content address, or None when it has no identity.

        With a cache attached the key *must* compute — a spec whose
        params cannot be content-addressed cannot be cached, and the
        historical behaviour is to raise.  Without a cache the key is
        still computed when possible (downstream digests need it), but a
        programmatic spec with non-JSON-safe params degrades to None
        instead of failing a run that never asked for caching.
        """
        if self.cache is not None:
            return cell_key(
                ctx.spec.scenario, cell.params, cell.seed, inputs=ctx.digests
            )
        try:
            return cell_key(
                ctx.spec.scenario, cell.params, cell.seed, inputs=ctx.digests
            )
        except (TypeError, ValueError):
            return None

    # -- executors ---------------------------------------------------------

    def _settle(
        self,
        ctx: _RunContext,
        cell: Cell,
        key: str | None,
        settled: dict[int, CellResult],
        result: Any,
        wall_s: float,
        error: str | None,
        ckpt: CampaignCheckpoint | None = None,
    ) -> None:
        if error is None and key is not None and self.cache is not None:
            try:
                self.cache.put(
                    key,
                    ctx.spec.scenario,
                    cell.params,
                    cell.seed,
                    result,
                    wall_s,
                    inputs=ctx.digests,
                    provenance={
                        "spec_fingerprint": ctx.fingerprint,
                        "spec_name": ctx.spec.name,
                        "index": cell.index,
                        "coords": cell.coords,
                    },
                )
            except (ValueError, OSError) as exc:
                # an uncacheable result (non-finite floats, or the tmp
                # file lost to a concurrent prune/full disk) is still a
                # valid in-memory result; warn and carry on uncached
                warnings.warn(
                    f"cell {cell.index} not cached: {exc}",
                    RuntimeWarning,
                    stacklevel=4,
                )
        settled[cell.index] = CellResult(
            index=cell.index,
            coords=cell.coords,
            params=cell.params,
            seed=cell.seed,
            result=result,
            wall_s=wall_s,
            error=error,
            key=key,
        )
        if ckpt is not None:
            ckpt.record(cell.index, key, error, wall_s)

    def _run_serial(
        self,
        ctx: _RunContext,
        pending: list[tuple[Cell, str | None]],
        settled: dict[int, CellResult],
        ckpt: CampaignCheckpoint | None,
        drain: _SignalDrain,
    ) -> None:
        for cell, key in pending:
            if drain.triggered:
                return
            if ckpt is not None:
                ckpt.begin_batch([cell.index])
            t0 = time.perf_counter()
            try:
                result, wall = _execute_cell(
                    ctx.spec.scenario,
                    cell.params,
                    cell.seed,
                    artifacts=ctx.artifacts,
                )
                error = None
            except Exception as exc:  # quarantine, keep the campaign alive
                result, wall = None, time.perf_counter() - t0
                error = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
            self._settle(ctx, cell, key, settled, result, wall, error, ckpt)

    def _task(
        self,
        ctx: _RunContext,
        cell: Cell,
        key: str | None,
        settled: dict[int, CellResult],
        ckpt: CampaignCheckpoint | None,
        stage: str | None = None,
    ) -> _Task:
        """Bind one cell to its stage context under a fresh token.

        Tokens are never reused — a resubmitted cell gets a new task, so
        a stale execution-start stamp from a broken first attempt can
        never be mistaken for the retry's start.
        """
        self._next_token += 1
        return _Task(
            ctx=ctx,
            cell=cell,
            key=key,
            settled=settled,
            ckpt=ckpt,
            token=self._next_token,
            stage=stage,
        )

    def _run_parallel(
        self,
        ctx: _RunContext,
        pending: list[tuple[Cell, str | None]],
        settled: dict[int, CellResult],
        ckpt: CampaignCheckpoint | None,
        drain: _SignalDrain,
    ) -> None:
        batch_size = self.jobs * self.chunk_size
        manager = None
        start_times = None
        if self.cell_timeout_s is not None:
            # workers stamp execution start here; the supervisor's
            # timeout clock starts at the stamp, not at submission
            manager = multiprocessing.Manager()
            start_times = manager.dict()
        queue = list(pending)
        pool_retries: dict[tuple[str | None, int], int] = {}
        pool = self._new_pool()
        try:
            while queue:
                if drain.triggered:
                    return
                batch, queue = queue[:batch_size], queue[batch_size:]
                tasks = [
                    self._task(ctx, cell, key, settled, ckpt)
                    for cell, key in batch
                ]
                if ckpt is not None:
                    ckpt.begin_batch([t.cell.index for t in tasks])
                hung, broken, unfinished = self._drain_batch(
                    pool, tasks, drain, start_times
                )
                if drain.triggered:
                    # unfinished cells stay journaled for resume
                    return
                requeue = self._requeue(unfinished, broken, pool_retries)
                queue = [(t.cell, t.key) for t in requeue] + queue
                if (hung or broken) and queue:
                    # Future.cancel() is a no-op once running: a hung
                    # cell would silently hold its pool slot for the
                    # rest of the campaign.  Recycle instead.
                    self._kill_pool(pool)
                    pool = self._new_pool()
        finally:
            self._kill_pool(pool)
            if manager is not None:
                manager.shutdown()

    def _requeue(
        self,
        unfinished: list[_Task],
        broken: bool,
        pool_retries: dict[tuple[str | None, int], int],
    ) -> list[_Task]:
        """Decide each unexecuted task's fate: retry or quarantine.

        Cells the batch could not execute (pool broke under them, or
        every worker slot was wedged) go back for the recycled pool —
        capped per cell, so one that keeps killing its workers is
        quarantined instead of looping forever.  Retries are counted
        per ``(stage, index)``, which stays stable across the fresh
        tokens each resubmission mints.
        """
        retry: list[_Task] = []
        for task in unfinished:
            rid = (task.stage, task.cell.index)
            if broken:
                pool_retries[rid] = pool_retries.get(rid, 0) + 1
            if pool_retries.get(rid, 0) > _MAX_POOL_RETRIES:
                self._settle(
                    task.ctx,
                    task.cell,
                    task.key,
                    task.settled,
                    None,
                    0.0,
                    "BrokenProcessPool: worker pool broke "
                    f"{pool_retries[rid]} times with this "
                    "cell in flight (does the scenario kill or "
                    "exit its worker process?)",
                    task.ckpt,
                )
            else:
                retry.append(task)
        return retry

    def _drain_batch(
        self,
        pool: concurrent.futures.ProcessPoolExecutor,
        tasks: list[_Task],
        drain: _SignalDrain,
        start_times: Any,
    ) -> tuple[
        list[concurrent.futures.Future],
        bool,
        list[_Task],
    ]:
        """Submit one batch of tasks and settle every future.

        Tasks may come from several pipeline stages — each settles into
        its own stage's result map and checkpoint journal.  Returns
        ``(hung, broken, unfinished)``: futures abandoned past their
        budget with the worker still running; whether the pool itself
        broke; and tasks this batch could not execute — the pool broke
        before/under them, or every worker slot was wedged past budget
        so a queued cell could never start.  The caller resubmits
        unfinished tasks on a recycled pool (every cell is eventually
        settled — ``run()`` relies on that to build the ordered result).
        A drain signal mid-batch cancels not-yet-started futures (they
        stay unfinished, for resume) and waits out the running ones.
        """
        futmap: dict[concurrent.futures.Future, tuple[_Task, float]] = {}
        unfinished: list[_Task] = []
        try:
            for task in tasks:
                fut = pool.submit(
                    _execute_cell,
                    task.ctx.spec.scenario,
                    task.cell.params,
                    task.cell.seed,
                    start_times,
                    task.token,
                    task.ctx.artifacts,
                )
                futmap[fut] = (task, time.perf_counter())
        except BrokenProcessPool:
            # the pool died mid-submission: salvage futures that still
            # settled, hand everything else back for resubmission
            submitted = {task.token for task, _ in futmap.values()}
            unfinished.extend(t for t in tasks if t.token not in submitted)
            self._salvage(futmap, unfinished)
            return [], True, unfinished

        pending_futs = set(futmap)
        hung: list[concurrent.futures.Future] = []
        broken = False
        drained = False
        while pending_futs:
            if drain.triggered and not drained:
                drained = True
                for fut in list(pending_futs):
                    if fut.cancel():  # never started: leave unfinished
                        pending_futs.discard(fut)
            done, pending_futs = concurrent.futures.wait(
                pending_futs,
                timeout=_POLL_S,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            for fut in done:
                task, submitted = futmap[fut]
                try:
                    result, wall = fut.result()
                    error = None
                except concurrent.futures.CancelledError:
                    continue
                except BrokenProcessPool:
                    broken = True
                    if drain.triggered:
                        # the signal (e.g. group-delivered SIGINT) took
                        # the workers down; the cell never finished —
                        # leave it unsettled so a resume re-runs it
                        continue
                    # the cell may be innocent (a batch-mate killed the
                    # pool): resubmit on the recycled pool rather than
                    # quarantining it outright; the caller's retry cap
                    # catches the actual worker-killer
                    unfinished.append(task)
                    continue
                except Exception as exc:
                    result, wall = None, time.perf_counter() - submitted
                    error = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                self._settle(
                    task.ctx, task.cell, task.key, task.settled,
                    result, wall, error, task.ckpt,
                )
            if self.cell_timeout_s is not None and pending_futs:
                now = time.monotonic()
                for fut in list(pending_futs):
                    task, _ = futmap[fut]
                    begun = None
                    if start_times is not None:
                        try:
                            begun = start_times.get(task.token)
                        except Exception:  # pragma: no cover - dead manager
                            begun = None
                    if begun is not None and now - begun > self.cell_timeout_s:
                        pending_futs.discard(fut)
                        hung.append(fut)
                        self._settle(
                            task.ctx,
                            task.cell,
                            task.key,
                            task.settled,
                            None,
                            self.cell_timeout_s,
                            f"TimeoutError: cell exceeded "
                            f"{self.cell_timeout_s:.1f} s budget",
                            task.ckpt,
                        )
                if pending_futs and sum(
                    1 for f in hung if f.running()
                ) >= self.jobs:
                    # every worker slot is wedged past budget: a queued
                    # future can never start, never stamp, and never
                    # time out — this drain would spin forever (or wait
                    # out the hung sleeps).  Pull every cell that has
                    # not stamped an execution start back for the
                    # recycled pool; cancel() alone is not enough, the
                    # pool marks call-queue-buffered futures RUNNING
                    # even though no worker will ever pick them up.
                    for fut in list(pending_futs):
                        task, _ = futmap[fut]
                        begun = None
                        if start_times is not None:
                            try:
                                begun = start_times.get(task.token)
                            except Exception:  # pragma: no cover
                                begun = None
                        if begun is None:
                            fut.cancel()  # best effort; pool dies anyway
                            pending_futs.discard(fut)
                            unfinished.append(task)
        return [f for f in hung if f.running()], broken, unfinished

    def _salvage(
        self,
        futmap: dict[concurrent.futures.Future, tuple[_Task, float]],
        unfinished: list[_Task],
    ) -> None:
        """After a pool break, settle what finished; queue the rest.

        A future that completed before the break still holds its result
        (or its genuine scenario exception, which quarantines as usual);
        anything cancelled, failed-by-the-break, or still nominally
        pending is appended to ``unfinished`` for resubmission.
        """
        for fut, (task, submitted) in futmap.items():
            if not fut.done():
                unfinished.append(task)
                continue
            try:
                result, wall = fut.result(timeout=0)
                error = None
            except (
                concurrent.futures.CancelledError,
                concurrent.futures.TimeoutError,
                BrokenProcessPool,
            ):
                unfinished.append(task)
                continue
            except Exception as exc:
                result, wall = None, time.perf_counter() - submitted
                error = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
            self._settle(
                task.ctx, task.cell, task.key, task.settled,
                result, wall, error, task.ckpt,
            )

    # -- pipelines ---------------------------------------------------------

    def run_pipeline(
        self, pipeline: PipelineSpec, force: bool = False
    ) -> PipelineResult:
        """Execute every stage of ``pipeline``, respecting the stage DAG.

        External spec references in ``needs`` are loaded and folded in
        as implicit stages ahead of the pipeline's own — their cells are
        content-addressed exactly like a direct run of that spec, so a
        grid another spec already computed resolves entirely from the
        cache with zero recomputation.  Each stage short-circuits
        through the cache independently; a stage whose upstream is
        unchanged and whose own cells are cached executes nothing.

        With ``jobs == 1`` stages run one after another in topological
        order.  With ``jobs > 1`` the ready-set DAG scheduler dispatches
        cells from *every* runnable stage into one shared worker pool —
        sibling stages execute side by side, and a stage opens the
        moment the artifact digests it needs settle.  Both paths produce
        byte-identical cell keys, fingerprints, and artifacts.

        A stage that settles with quarantined cells *cancels* its
        artifact-consuming dependents (transitively): their cells settle
        with a ``cancelled: needed stage ...`` reason instead of the
        pipeline raising — an analysis never silently reads a partial
        grid, and unrelated branches still run to completion.  Stages
        whose ``needs`` only order execution are not cancelled.  A
        SIGINT/SIGTERM surfaces as :class:`CampaignInterrupted` from an
        in-flight stage; re-running the pipeline resumes there (earlier
        stages come back as hits).
        """
        t0 = time.perf_counter()
        plan = self._pipeline_plan(pipeline)
        if self.jobs == 1:
            stages = self._run_pipeline_serial(pipeline, plan, force)
        else:
            stages = self._run_pipeline_dag(pipeline, plan, force)
        return PipelineResult(
            pipeline=pipeline,
            stages=stages,
            wall_s=time.perf_counter() - t0,
        )

    @staticmethod
    def _cancelled_campaign(
        spec: ExperimentSpec, blocker: str, reason: str
    ) -> CampaignResult:
        """Settle every cell of a stage as cancelled, executing nothing.

        Cancelled cells carry ``key=None`` and the campaign no
        fingerprint: the stage's inputs never materialized, so it has no
        provenance identity — nothing lands in cache or checkpoint, and
        a re-run after fixing the upstream executes it from scratch.
        """
        error = f"cancelled: needed stage '{blocker}' {reason}"
        cells = tuple(
            CellResult(
                index=c.index,
                coords=c.coords,
                params=c.params,
                seed=c.seed,
                result=None,
                wall_s=0.0,
                error=error,
                key=None,
            )
            for c in spec.cells()
        )
        return CampaignResult(
            spec=spec, cells=cells, wall_s=0.0, fingerprint=None
        )

    def _run_pipeline_serial(
        self,
        pipeline: PipelineSpec,
        plan: list[tuple[str, ExperimentSpec, tuple[str, ...], bool]],
        force: bool,
    ) -> dict[str, CampaignResult]:
        """The ``jobs == 1`` path: one stage after another, plan order."""
        campaigns: dict[str, CampaignResult] = {}
        sets: dict[str, ArtifactSet] = {}
        #: stage key -> why consumers of it must cancel
        failed: dict[str, str] = {}
        for key, spec, needs, _external in plan:
            # needs on a plain scenario only order the stage; the sets
            # (and the digest folding) are for artifact consumers
            consumes = scenario_needs_artifacts(spec.scenario)
            blocker = (
                next((n for n in needs if n in failed), None)
                if consumes
                else None
            )
            if blocker is not None:
                campaigns[key] = self._cancelled_campaign(
                    spec, blocker, failed[blocker]
                )
                failed[key] = "was cancelled"
                continue
            inputs = (
                {need: sets[need] for need in needs}
                if needs and consumes
                else None
            )
            campaign = self.run(spec, force=force, inputs=inputs)
            campaigns[key] = campaign
            if campaign.n_failed:
                failed[key] = (
                    f"settled with {campaign.n_failed} quarantined cell(s)"
                )
            elif self._is_needed(pipeline, key):
                sets[key] = campaign.artifact_set(name=key)
        return campaigns

    def _run_pipeline_dag(
        self,
        pipeline: PipelineSpec,
        plan: list[tuple[str, ExperimentSpec, tuple[str, ...], bool]],
        force: bool,
    ) -> dict[str, CampaignResult]:
        """The ``jobs > 1`` path: ready-set scheduling, one shared pool.

        Every iteration opens whatever stages became runnable (their
        needs' digests settled), gathers pending cells from *all* open
        stages in plan order, cuts one mixed batch, and drains it on the
        pipeline-wide pool.  Stage completion, cancellation, and the
        requeue/recycle machinery all happen between batches, so the
        scheduler state is single-threaded and easy to reason about.
        """
        runs: dict[str, _StageRun] = {}
        for key, spec, needs, external in plan:
            runs[key] = _StageRun(
                key=key, spec=spec, needs=needs, external=external
            )
        sets: dict[str, ArtifactSet] = {}
        failed: dict[str, str] = {}
        batch_size = self.jobs * self.chunk_size
        manager = None
        start_times = None
        if self.cell_timeout_s is not None:
            manager = multiprocessing.Manager()
            start_times = manager.dict()
        pool_retries: dict[tuple[str | None, int], int] = {}
        pool = self._new_pool()
        try:
            with _SignalDrain() as drain:
                while not all(r.finished for r in runs.values()):
                    self._open_ready_stages(pipeline, runs, sets, failed, force)
                    if all(r.finished for r in runs.values()):
                        break
                    if drain.triggered:
                        raise self._drain_pipeline(runs, drain)
                    # candidate cells from every open stage, plan order;
                    # the hook (tests) may permute them — any legal
                    # interleaving must produce identical results
                    by_id: dict[
                        tuple[str, int], tuple[_StageRun, Cell, str | None]
                    ] = {}
                    order: list[tuple[str, int]] = []
                    for run in runs.values():
                        if run.opened and not run.finished:
                            for cell, key in run.pending:
                                order.append((run.key, cell.index))
                                by_id[(run.key, cell.index)] = (run, cell, key)
                    if self.schedule_hook is not None:
                        order = [tuple(p) for p in self.schedule_hook(list(order))]
                    if not order:
                        raise RuntimeError(
                            "internal error: DAG scheduler stalled with "
                            "unfinished stages and no dispatchable cells"
                        )
                    tasks: list[_Task] = []
                    taken: dict[str, set[int]] = {}
                    for stage_key, index in order[:batch_size]:
                        run, cell, key = by_id[(stage_key, index)]
                        taken.setdefault(stage_key, set()).add(index)
                        tasks.append(
                            self._task(
                                run.ctx, cell, key, run.settled, run.ckpt,
                                stage=run.key,
                            )
                        )
                    for stage_key, indices in taken.items():
                        run = runs[stage_key]
                        run.pending = [
                            (c, k) for c, k in run.pending
                            if c.index not in indices
                        ]
                        if run.ckpt is not None:
                            run.ckpt.begin_batch(sorted(indices))
                    hung, broken, unfinished = self._drain_batch(
                        pool, tasks, drain, start_times
                    )
                    if drain.triggered:
                        raise self._drain_pipeline(runs, drain)
                    for task in self._requeue(unfinished, broken, pool_retries):
                        runs[task.stage].pending.insert(
                            0, (task.cell, task.key)
                        )
                    for run in runs.values():
                        if (
                            run.opened
                            and not run.finished
                            and not run.pending
                            and len(run.settled) == len(run.cells)
                        ):
                            self._finalize_stage(pipeline, run, sets, failed)
                    if (hung or broken) and not all(
                        r.finished for r in runs.values()
                    ):
                        self._kill_pool(pool)
                        pool = self._new_pool()
        finally:
            self._kill_pool(pool)
            if manager is not None:
                manager.shutdown()
        return {key: run.campaign for key, run in runs.items()}

    def _open_ready_stages(
        self,
        pipeline: PipelineSpec,
        runs: dict[str, _StageRun],
        sets: dict[str, ArtifactSet],
        failed: dict[str, str],
        force: bool,
    ) -> None:
        """Open every stage whose needs settled; cancel the doomed ones.

        Runs to a fixpoint: opening a fully-cached stage finalizes it
        immediately, which may unblock (or doom) further stages in the
        same pass.  A consumer cancels as soon as *any* needed stage is
        in ``failed`` — it never waits for its other needs, so a broken
        grid propagates promptly instead of starving dependents.
        """
        progressed = True
        while progressed:
            progressed = False
            for run in runs.values():
                if run.finished or run.opened:
                    continue
                consumes = scenario_needs_artifacts(run.spec.scenario)
                blocker = (
                    next((n for n in run.needs if n in failed), None)
                    if consumes
                    else None
                )
                if blocker is not None:
                    run.campaign = self._cancelled_campaign(
                        run.spec, blocker, failed[blocker]
                    )
                    run.cancelled = True
                    failed[run.key] = "was cancelled"
                    progressed = True
                    continue
                if any(not runs[n].finished for n in run.needs):
                    continue
                inputs = (
                    {n: sets[n] for n in run.needs}
                    if run.needs and consumes
                    else None
                )
                run.t0 = time.perf_counter()
                run.ctx, run.cells, run.ckpt, run.settled, run.pending = (
                    self._prepare(run.spec, force, inputs)
                )
                run.opened = True
                progressed = True
                if not run.pending:
                    self._finalize_stage(pipeline, run, sets, failed)

    def _finalize_stage(
        self,
        pipeline: PipelineSpec,
        run: _StageRun,
        sets: dict[str, ArtifactSet],
        failed: dict[str, str],
    ) -> None:
        """Seal a fully-settled stage and publish its artifacts/verdict."""
        run.campaign = self._finish(
            run.ctx, run.cells, run.ckpt, run.settled, run.t0
        )
        if run.campaign.n_failed:
            failed[run.key] = (
                f"settled with {run.campaign.n_failed} quarantined cell(s)"
            )
        elif self._is_needed(pipeline, run.key):
            sets[run.key] = run.campaign.artifact_set(name=run.key)

    def _drain_pipeline(
        self, runs: dict[str, _StageRun], drain: _SignalDrain
    ) -> CampaignInterrupted:
        """Flush every open journal; report the first in-flight stage."""
        for run in runs.values():
            if run.opened and not run.finished and run.ckpt is not None:
                run.ckpt.flush()
        for run in runs.values():
            if run.opened and not run.finished:
                return self._interrupted(
                    run.spec, drain.signum, run.cells, run.settled, run.ckpt
                )
        for run in runs.values():  # pragma: no cover - drain before open
            if not run.finished:
                return self._interrupted(
                    run.spec, drain.signum, run.spec.cells(), {}, None
                )
        raise AssertionError("drain with every stage finished")

    def dry_run(
        self, target: ExperimentSpec | PipelineSpec
    ) -> list[StagePlan]:
        """Expand a spec or pipeline without executing a single cell.

        Returns one :class:`StagePlan` per stage in execution order,
        with the stage's cell keys, inputs-aware fingerprint, and a
        cache-hit census.  Downstream keys are computed from upstream
        *digests*, which are pure functions of the upstream keys — so
        the plan is exact, not an estimate: a subsequent real run
        executes precisely the cells reported missing here.
        """
        if isinstance(target, ExperimentSpec):
            target = PipelineSpec.wrap(target)
        out: list[StagePlan] = []
        digests: dict[str, str] = {}
        for key, spec, needs, external in self._pipeline_plan(target):
            stage_inputs = (
                {need: digests[need] for need in sorted(needs)}
                if needs and scenario_needs_artifacts(spec.scenario)
                else None
            )
            keys = tuple(
                cell_key(spec.scenario, c.params, c.seed, inputs=stage_inputs)
                for c in spec.cells()
            )
            digests[key] = keys_digest(keys)
            n_hits = (
                sum(1 for k in keys if self.cache.path_for(k).is_file())
                if self.cache is not None
                else 0
            )
            out.append(
                StagePlan(
                    name=key,
                    scenario=spec.scenario,
                    needs=needs,
                    fingerprint=spec_fingerprint(spec, inputs=stage_inputs),
                    keys=keys,
                    n_hits=n_hits,
                    external=external,
                )
            )
        return out

    def _pipeline_plan(
        self, pipeline: PipelineSpec
    ) -> list[tuple[str, ExperimentSpec, tuple[str, ...], bool]]:
        """Resolve a pipeline into ``(key, spec, needs, external)`` rows.

        External spec references load from disk (anchored at the
        pipeline's ``base_dir``) and come first, keyed by the reference
        string exactly as written in ``needs`` — that string is how the
        consuming stage's scenario will look the set up.  Validation is
        all up front: unknown scenarios, pipeline-shaped external refs,
        and needs/scenario signature mismatches fail before any cell
        runs.
        """
        rows: list[tuple[str, ExperimentSpec, tuple[str, ...], bool]] = []
        for need in pipeline.external_needs():
            path = pipeline.resolve_path(need)
            try:
                loaded = load_spec(path)
            except OSError as exc:
                raise ValueError(
                    f"pipeline '{pipeline.name}': cannot load external "
                    f"spec {need!r}: {exc}"
                ) from None
            if isinstance(loaded, PipelineSpec):
                raise ValueError(
                    f"pipeline '{pipeline.name}': external need {need!r} "
                    "is itself a pipeline; point needs at flat specs "
                    "(run the other pipeline separately — its cached "
                    "stages resolve here for free)"
                )
            rows.append((need, loaded, (), True))
        for stage in pipeline.stage_order():
            rows.append((stage.name, stage.spec, stage.needs, False))
        for key, spec, needs, _external in rows:
            get_scenario(spec.scenario)  # fail fast, before any stage runs
            if scenario_needs_artifacts(spec.scenario) and not needs:
                raise ValueError(
                    f"pipeline '{pipeline.name}': stage '{key}' runs "
                    f"analysis scenario {spec.scenario!r} but declares no "
                    "needs — it would have nothing to analyze"
                )
        return rows

    @staticmethod
    def _is_needed(pipeline: PipelineSpec, key: str) -> bool:
        """Whether an artifact-consuming stage reads ``key``'s artifacts."""
        return any(
            key in stage.needs
            and scenario_needs_artifacts(stage.spec.scenario)
            for stage in pipeline.stages
        )

    def _new_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_worker_init
        )

    @staticmethod
    def _kill_pool(pool: concurrent.futures.ProcessPoolExecutor) -> None:
        """Shut the pool down without waiting for wedged workers.

        ``shutdown(wait=True)`` would block until a hung cell returns —
        exactly the leak this avoids.  Worker processes are terminated
        outright; every settled result has already been fetched, and
        abandoned cells are quarantined or journaled for resume.
        """
        procs = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already gone
                pass
        for proc in procs:
            try:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=1.0)
            except Exception:  # pragma: no cover - already gone
                pass
