"""Declarative experiment specs: what to run, over which grid, how seeded.

An :class:`ExperimentSpec` is the unit the campaign :class:`~repro.experiments.runner.Runner`
consumes: it names a registered scenario (see
:mod:`repro.experiments.registry`), fixes a base parameter set, and
declares the sweep axes whose cartesian product is the campaign grid.
Specs load from TOML or JSON files, so a campaign is a reviewable text
artifact rather than a for-loop::

    name = "chaos-grid"
    scenario = "chaos"
    seed = 11
    seed_mode = "shared"

    [params]
    n_jobs = 4

    [axes]
    rejection_prob = [0.0, 0.3]
    setup_timeout_prob = [0.0, 0.2]

Cell ordering is ``itertools.product`` over the axes in declaration
order (first axis outermost), matching the historical ordering of
:func:`repro.experiments.campaigns.chaos_sweep`.

Seeding rule
------------
``seed_mode="per-cell"`` (the default) gives cell *i* the seed
``derive_seed(spec.seed, i)`` — independent streams per cell, so a
sweep is a proper Monte Carlo grid.  ``seed_mode="shared"`` hands every
cell the spec seed unchanged; the ported chaos sweeps use this because
their historical contract is "same seed at every grid point" (the fault
schedule is then identical across points, isolating the knob under
sweep).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tomllib
from collections.abc import Mapping, Sequence
from typing import Any

from ..core.rng import derive_seed

__all__ = ["Cell", "ExperimentSpec"]

_SEED_MODES = ("per-cell", "shared")


@dataclasses.dataclass(frozen=True)
class Cell:
    """One grid point of an expanded spec."""

    #: position in the campaign's cell ordering (product order)
    index: int
    #: axis name -> this cell's value, in axis declaration order
    coords: dict[str, Any]
    #: full scenario parameters: spec params overlaid with the coords
    params: dict[str, Any]
    #: the seed this cell's scenario call receives
    seed: int


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """A declarative campaign: scenario, fixed params, sweep axes, seeding."""

    name: str
    scenario: str
    params: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: axis name -> tuple of values; declaration order is sweep order
    axes: dict[str, tuple[Any, ...]] = dataclasses.field(default_factory=dict)
    seed: int = 0
    seed_mode: str = "per-cell"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec needs a name")
        if not self.scenario:
            raise ValueError("spec needs a scenario")
        if self.seed_mode not in _SEED_MODES:
            raise ValueError(
                f"seed_mode must be one of {_SEED_MODES}, got {self.seed_mode!r}"
            )
        axes: dict[str, tuple[Any, ...]] = {}
        for axis, values in self.axes.items():
            if isinstance(values, (str, bytes)) or not isinstance(
                values, Sequence
            ):
                raise ValueError(f"axis {axis!r} must be a list of values")
            if len(values) == 0:
                raise ValueError(f"axis {axis!r} is empty")
            axes[axis] = tuple(values)
        overlap = set(axes) & set(self.params)
        if overlap:
            raise ValueError(
                f"axes shadow fixed params: {sorted(overlap)} — "
                "a knob is either swept or pinned, not both"
            )
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "params", dict(self.params))

    # -- loading -----------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec keys: {sorted(unknown)}")
        return cls(**dict(data))

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "ExperimentSpec":
        """Load a spec from ``path`` — TOML unless the suffix is .json."""
        path = os.fspath(path)
        if path.endswith(".json"):
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        else:
            with open(path, "rb") as fh:
                data = tomllib.load(fh)
        return cls.from_dict(data)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "params": dict(self.params),
            "axes": {axis: list(v) for axis, v in self.axes.items()},
            "seed": self.seed,
            "seed_mode": self.seed_mode,
        }

    # -- expansion ---------------------------------------------------------

    @property
    def n_cells(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def cell_seed(self, index: int) -> int:
        if self.seed_mode == "shared":
            return self.seed
        return derive_seed(self.seed, index)

    def cells(self) -> list[Cell]:
        """Expand the grid: product order, first declared axis outermost."""
        names = list(self.axes)
        grids: list[tuple[Any, ...]] = [()]
        for axis in names:
            grids = [g + (v,) for g in grids for v in self.axes[axis]]
        out = []
        for index, combo in enumerate(grids):
            coords = dict(zip(names, combo))
            out.append(
                Cell(
                    index=index,
                    coords=coords,
                    params={**self.params, **coords},
                    seed=self.cell_seed(index),
                )
            )
        return out
