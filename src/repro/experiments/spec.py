"""Declarative experiment specs: what to run, over which grid, how seeded.

An :class:`ExperimentSpec` is the unit the campaign :class:`~repro.experiments.runner.Runner`
consumes: it names a registered scenario (see
:mod:`repro.experiments.registry`), fixes a base parameter set, and
declares the sweep axes whose cartesian product is the campaign grid.
Specs load from TOML or JSON files, so a campaign is a reviewable text
artifact rather than a for-loop::

    name = "chaos-grid"
    scenario = "chaos"
    seed = 11
    seed_mode = "shared"

    [params]
    n_jobs = 4

    [axes]
    rejection_prob = [0.0, 0.3]
    setup_timeout_prob = [0.0, 0.2]

Cell ordering is ``itertools.product`` over the axes in declaration
order (first axis outermost), matching the historical ordering of
:func:`repro.experiments.campaigns.chaos_sweep`.

A spec file may instead declare a multi-stage **pipeline** with a
``[[stages]]`` array — each stage is its own scenario grid plus a
``needs = [...]`` list naming upstream stages (or external spec files)
whose cached artifacts the stage consumes::

    name = "pareto"
    seed = 11

    [[stages]]
    name = "workload"
    scenario = "synth"
    [stages.axes]
    n_transfers = [60, 90]

    [[stages]]
    name = "analysis"
    scenario = "managed_from_workload"
    needs = ["workload"]

:func:`load_spec` returns an :class:`ExperimentSpec` or a
:class:`PipelineSpec` depending on the file's shape; a flat spec is the
degenerate single-stage pipeline and behaves byte-identically to how it
always has.

Seeding rule
------------
``seed_mode="per-cell"`` (the default) gives cell *i* the seed
``derive_seed(spec.seed, i)`` — independent streams per cell, so a
sweep is a proper Monte Carlo grid.  ``seed_mode="shared"`` hands every
cell the spec seed unchanged; the ported chaos sweeps use this because
their historical contract is "same seed at every grid point" (the fault
schedule is then identical across points, isolating the knob under
sweep).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tomllib
from collections.abc import Mapping, Sequence
from typing import Any

from ..core.rng import derive_seed

__all__ = [
    "Cell",
    "ExperimentSpec",
    "StageSpec",
    "PipelineSpec",
    "load_spec",
]

_SEED_MODES = ("per-cell", "shared")

#: needs entries with these suffixes are external spec files, not stages
_SPEC_SUFFIXES = (".toml", ".json")


@dataclasses.dataclass(frozen=True)
class Cell:
    """One grid point of an expanded spec."""

    #: position in the campaign's cell ordering (product order)
    index: int
    #: axis name -> this cell's value, in axis declaration order
    coords: dict[str, Any]
    #: full scenario parameters: spec params overlaid with the coords
    params: dict[str, Any]
    #: the seed this cell's scenario call receives
    seed: int


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """A declarative campaign: scenario, fixed params, sweep axes, seeding."""

    name: str
    scenario: str
    params: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: axis name -> tuple of values; declaration order is sweep order
    axes: dict[str, tuple[Any, ...]] = dataclasses.field(default_factory=dict)
    seed: int = 0
    seed_mode: str = "per-cell"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec needs a name")
        if not self.scenario:
            raise ValueError("spec needs a scenario")
        if self.seed_mode not in _SEED_MODES:
            raise ValueError(
                f"seed_mode must be one of {_SEED_MODES}, got {self.seed_mode!r}"
            )
        axes: dict[str, tuple[Any, ...]] = {}
        for axis, values in self.axes.items():
            if isinstance(values, (str, bytes)) or not isinstance(
                values, Sequence
            ):
                raise ValueError(f"axis {axis!r} must be a list of values")
            if len(values) == 0:
                raise ValueError(f"axis {axis!r} is empty")
            axes[axis] = tuple(values)
        overlap = set(axes) & set(self.params)
        if overlap:
            raise ValueError(
                f"axes shadow fixed params: {sorted(overlap)} — "
                "a knob is either swept or pinned, not both"
            )
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "params", dict(self.params))

    # -- loading -----------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec keys: {sorted(unknown)}")
        return cls(**dict(data))

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "ExperimentSpec":
        """Load a flat spec from ``path`` — TOML unless the suffix is .json."""
        return cls.from_dict(_load_spec_data(path))

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "params": dict(self.params),
            "axes": {axis: list(v) for axis, v in self.axes.items()},
            "seed": self.seed,
            "seed_mode": self.seed_mode,
        }

    # -- expansion ---------------------------------------------------------

    @property
    def n_cells(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def cell_seed(self, index: int) -> int:
        if self.seed_mode == "shared":
            return self.seed
        return derive_seed(self.seed, index)

    def cells(self) -> list[Cell]:
        """Expand the grid: product order, first declared axis outermost."""
        names = list(self.axes)
        grids: list[tuple[Any, ...]] = [()]
        for axis in names:
            grids = [g + (v,) for g in grids for v in self.axes[axis]]
        out = []
        for index, combo in enumerate(grids):
            coords = dict(zip(names, combo))
            out.append(
                Cell(
                    index=index,
                    coords=coords,
                    params={**self.params, **coords},
                    seed=self.cell_seed(index),
                )
            )
        return out


# -- pipelines ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: a scenario grid plus its upstream dependencies.

    ``needs`` entries are either the names of earlier stages in the same
    pipeline, or paths to external spec files (recognised by a ``.toml``
    / ``.json`` suffix, resolved relative to the pipeline's own file).
    A stage with ``needs`` must declare an artifact-consuming scenario
    (see :func:`~repro.experiments.registry.register_scenario`); the
    resolved upstream :class:`~repro.experiments.artifacts.ArtifactSet`
    objects are handed to every cell of the stage.
    """

    name: str
    spec: ExperimentSpec
    needs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage needs a name")
        if self.name.endswith(_SPEC_SUFFIXES):
            raise ValueError(
                f"stage name {self.name!r} looks like a spec file path; "
                "stage names must not end in .toml/.json"
            )
        object.__setattr__(self, "needs", tuple(self.needs))
        if len(set(self.needs)) != len(self.needs):
            raise ValueError(f"stage {self.name!r} lists a need twice")

    @staticmethod
    def is_external(need: str) -> bool:
        return need.endswith(_SPEC_SUFFIXES)


@dataclasses.dataclass(frozen=True)
class PipelineSpec:
    """A multi-stage campaign: a DAG of scenario grids.

    Stages execute in topological order; each stage's cells resolve the
    artifact sets of the stages (or external specs) it ``needs``.  A
    flat :class:`ExperimentSpec` is the degenerate single-stage case —
    :func:`load_spec` returns whichever form a file declares, and the
    Runner accepts both.

    ``seed`` is the default seed for stages that do not pin their own;
    ``base_dir`` anchors relative external-spec paths (set by
    :meth:`from_file`, excluded from equality and from ``to_dict`` so a
    pipeline's identity does not depend on where its file happens to
    live).
    """

    name: str
    stages: tuple[StageSpec, ...]
    seed: int = 0
    base_dir: str | None = dataclasses.field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pipeline needs a name")
        if not self.stages:
            raise ValueError("pipeline needs at least one stage")
        object.__setattr__(self, "stages", tuple(self.stages))
        names = [s.name for s in self.stages]
        dup = {n for n in names if names.count(n) > 1}
        if dup:
            raise ValueError(f"duplicate stage name(s): {sorted(dup)}")
        known = set(names)
        for stage in self.stages:
            for need in stage.needs:
                if need == stage.name:
                    raise ValueError(f"stage {stage.name!r} needs itself")
                if not StageSpec.is_external(need) and need not in known:
                    raise ValueError(
                        f"stage {stage.name!r} needs unknown stage "
                        f"{need!r} (external refs must end in .toml/.json)"
                    )
        self.stage_order()  # raises on dependency cycles

    def stage(self, name: str) -> StageSpec:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} in pipeline {self.name!r}")

    def stage_order(self) -> list[StageSpec]:
        """Stages in topological order (declaration order breaks ties)."""
        remaining = list(self.stages)
        done: set[str] = set()
        ordered: list[StageSpec] = []
        while remaining:
            ready = [
                s
                for s in remaining
                if all(
                    StageSpec.is_external(n) or n in done for n in s.needs
                )
            ]
            if not ready:
                cycle = sorted(s.name for s in remaining)
                raise ValueError(f"dependency cycle among stages: {cycle}")
            for stage in ready:
                ordered.append(stage)
                done.add(stage.name)
                remaining.remove(stage)
        return ordered

    @property
    def n_cells(self) -> int:
        return sum(s.spec.n_cells for s in self.stages)

    def external_needs(self) -> list[str]:
        """Every distinct external spec reference, in first-use order."""
        out: list[str] = []
        for stage in self.stage_order():
            for need in stage.needs:
                if StageSpec.is_external(need) and need not in out:
                    out.append(need)
        return out

    def resolve_path(self, need: str) -> str:
        """An external need's path, anchored at the pipeline's base_dir."""
        if os.path.isabs(need) or self.base_dir is None:
            return need
        return os.path.join(self.base_dir, need)

    # -- loading -----------------------------------------------------------

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], base_dir: str | None = None
    ) -> "PipelineSpec":
        known = {"name", "seed", "stages"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown pipeline keys: {sorted(unknown)}")
        name = data.get("name", "")
        seed = int(data.get("seed", 0))
        raw_stages = data.get("stages")
        if not isinstance(raw_stages, Sequence) or isinstance(
            raw_stages, (str, bytes)
        ):
            raise ValueError("stages must be a list of stage tables")
        stages = []
        for raw in raw_stages:
            if not isinstance(raw, Mapping):
                raise ValueError("each stage must be a table/dict")
            stage_known = {
                "name",
                "scenario",
                "params",
                "axes",
                "seed",
                "seed_mode",
                "needs",
            }
            unknown = set(raw) - stage_known
            if unknown:
                raise ValueError(f"unknown stage keys: {sorted(unknown)}")
            stage_name = raw.get("name", "")
            spec = ExperimentSpec(
                name=f"{name}/{stage_name}",
                scenario=raw.get("scenario", ""),
                params=dict(raw.get("params", {})),
                axes=dict(raw.get("axes", {})),
                seed=int(raw.get("seed", seed)),
                seed_mode=raw.get("seed_mode", "per-cell"),
            )
            stages.append(
                StageSpec(
                    name=stage_name,
                    spec=spec,
                    needs=tuple(raw.get("needs", ())),
                )
            )
        return cls(
            name=name, stages=tuple(stages), seed=seed, base_dir=base_dir
        )

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "PipelineSpec":
        data = _load_spec_data(path)
        return cls.from_dict(data, base_dir=os.path.dirname(os.fspath(path)))

    @classmethod
    def wrap(cls, spec: ExperimentSpec) -> "PipelineSpec":
        """A flat spec as the degenerate single-stage pipeline.

        The stage keeps the spec *unchanged* (same name, same cells,
        same fingerprint), so running the wrapped form is byte-identical
        to running the flat spec directly.
        """
        return cls(
            name=spec.name,
            stages=(StageSpec(name=spec.name, spec=spec),),
            seed=spec.seed,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "stages": [
                {
                    "name": s.name,
                    "scenario": s.spec.scenario,
                    "params": dict(s.spec.params),
                    "axes": {a: list(v) for a, v in s.spec.axes.items()},
                    "seed": s.spec.seed,
                    "seed_mode": s.spec.seed_mode,
                    "needs": list(s.needs),
                }
                for s in self.stages
            ],
        }


def _load_spec_data(path: str | os.PathLike) -> dict[str, Any]:
    path = os.fspath(path)
    if path.endswith(".json"):
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    with open(path, "rb") as fh:
        return tomllib.load(fh)


def load_spec(path: str | os.PathLike) -> "ExperimentSpec | PipelineSpec":
    """Load a spec file as whichever form it declares.

    A file with a ``[[stages]]`` array is a :class:`PipelineSpec`;
    anything else is a flat :class:`ExperimentSpec` (the degenerate
    single-stage pipeline).  The CLI's ``run`` accepts both through
    this one entry point.
    """
    data = _load_spec_data(path)
    if isinstance(data, Mapping) and "stages" in data:
        return PipelineSpec.from_dict(
            data, base_dir=os.path.dirname(os.fspath(path))
        )
    return ExperimentSpec.from_dict(data)
