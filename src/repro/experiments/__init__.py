"""The declarative experiment framework: specs, runner, cache, campaigns.

The unit of work is an :class:`~repro.experiments.spec.ExperimentSpec` —
a scenario name, fixed parameters, and sweep axes, loadable from
TOML/JSON.  A :class:`~repro.experiments.runner.Runner` expands it into
deterministically seeded cells, executes them serially or across worker
processes, quarantines failures, and (optionally) settles results
through a content-addressed :class:`~repro.experiments.cache.ResultCache`
so re-running a sweep only computes changed cells.  With a
:class:`~repro.experiments.checkpoint.CampaignCheckpoint` journal the
campaign is also crash-safe: a killed ``--jobs N`` run resumes mid-batch
and executes only cells that never finished.

Specs compose into multi-stage **pipelines**: a
:class:`~repro.experiments.spec.PipelineSpec` is a DAG of scenario grids
whose stages ``need`` earlier stages or external spec files, resolved as
first-class :class:`~repro.experiments.artifacts.Artifact` reads from
the cache (:meth:`Runner.run_pipeline`, :meth:`Runner.dry_run`).

The campaign families the repo grew before this framework — chaos,
profiling, mechanistic, SNMP, managed-service, synth, and the
cross-spec Pareto analyses — are registered as scenarios
(:mod:`repro.experiments.registry`) and their report plumbing lives in
:mod:`repro.experiments.campaigns`.
"""

from .artifacts import Artifact, ArtifactSet, keys_digest
from .cache import (
    CacheStats,
    ResultCache,
    VerifyReport,
    canonical_json,
    cell_key,
)
from .checkpoint import CampaignCheckpoint, spec_fingerprint
from .campaigns import (
    ChaosConfig,
    ChaosReport,
    ManagedChaosConfig,
    ManagedChaosReport,
    ProfileReport,
    chaos_config_from_params,
    chaos_params_from_config,
    chaos_sweep,
    cross_spec_pareto,
    decode_nonfinite,
    encode_nonfinite,
    managed_campaign_from_workload,
    pareto_front_points,
    profile_campaign,
    report_from_dict,
    report_to_dict,
    run_chaos,
    run_managed_chaos,
)
from .registry import (
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_needs_artifacts,
)
from .runner import (
    CampaignInterrupted,
    CampaignResult,
    CellResult,
    PipelineResult,
    Runner,
    StagePlan,
)
from .spec import Cell, ExperimentSpec, PipelineSpec, StageSpec, load_spec

__all__ = [
    "ExperimentSpec",
    "StageSpec",
    "PipelineSpec",
    "load_spec",
    "Cell",
    "Runner",
    "CampaignResult",
    "CellResult",
    "PipelineResult",
    "StagePlan",
    "CampaignInterrupted",
    "CampaignCheckpoint",
    "spec_fingerprint",
    "ResultCache",
    "CacheStats",
    "VerifyReport",
    "cell_key",
    "canonical_json",
    "Artifact",
    "ArtifactSet",
    "keys_digest",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "scenario_needs_artifacts",
    "ChaosConfig",
    "ChaosReport",
    "run_chaos",
    "chaos_sweep",
    "chaos_params_from_config",
    "chaos_config_from_params",
    "report_to_dict",
    "report_from_dict",
    "encode_nonfinite",
    "decode_nonfinite",
    "ManagedChaosConfig",
    "ManagedChaosReport",
    "run_managed_chaos",
    "ProfileReport",
    "profile_campaign",
    "pareto_front_points",
    "managed_campaign_from_workload",
    "cross_spec_pareto",
]
