"""The declarative experiment framework: specs, runner, cache, campaigns.

The unit of work is an :class:`~repro.experiments.spec.ExperimentSpec` —
a scenario name, fixed parameters, and sweep axes, loadable from
TOML/JSON.  A :class:`~repro.experiments.runner.Runner` expands it into
deterministically seeded cells, executes them serially or across worker
processes, quarantines failures, and (optionally) settles results
through a content-addressed :class:`~repro.experiments.cache.ResultCache`
so re-running a sweep only computes changed cells.  With a
:class:`~repro.experiments.checkpoint.CampaignCheckpoint` journal the
campaign is also crash-safe: a killed ``--jobs N`` run resumes mid-batch
and executes only cells that never finished.

The campaign families the repo grew before this framework — chaos,
profiling, mechanistic, SNMP, managed-service, synth — are registered as
scenarios (:mod:`repro.experiments.registry`) and their report plumbing
lives in :mod:`repro.experiments.campaigns`.
"""

from .cache import (
    CacheStats,
    ResultCache,
    VerifyReport,
    canonical_json,
    cell_key,
)
from .checkpoint import CampaignCheckpoint, spec_fingerprint
from .campaigns import (
    ChaosConfig,
    ChaosReport,
    ManagedChaosConfig,
    ManagedChaosReport,
    ProfileReport,
    chaos_config_from_params,
    chaos_params_from_config,
    chaos_sweep,
    decode_nonfinite,
    encode_nonfinite,
    profile_campaign,
    report_from_dict,
    report_to_dict,
    run_chaos,
    run_managed_chaos,
)
from .registry import get_scenario, register_scenario, scenario_names
from .runner import CampaignInterrupted, CampaignResult, CellResult, Runner
from .spec import Cell, ExperimentSpec

__all__ = [
    "ExperimentSpec",
    "Cell",
    "Runner",
    "CampaignResult",
    "CellResult",
    "CampaignInterrupted",
    "CampaignCheckpoint",
    "spec_fingerprint",
    "ResultCache",
    "CacheStats",
    "VerifyReport",
    "cell_key",
    "canonical_json",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "ChaosConfig",
    "ChaosReport",
    "run_chaos",
    "chaos_sweep",
    "chaos_params_from_config",
    "chaos_config_from_params",
    "report_to_dict",
    "report_from_dict",
    "encode_nonfinite",
    "decode_nonfinite",
    "ManagedChaosConfig",
    "ManagedChaosReport",
    "run_managed_chaos",
    "ProfileReport",
    "profile_campaign",
]
