"""First-class campaign artifacts: typed reads over cached cell results.

A cached cell result used to be an anonymous JSON blob only its own
spec could find again.  Pipelines change that: a downstream stage needs
to *resolve* an upstream stage's results — possibly written by a
different spec file in a different run — without recomputing them.  So
a cell result becomes an :class:`Artifact` carrying its provenance
(producing spec fingerprint and name, stage, cell index/coords) next to
the identity the cache already stored (scenario, params, seed, cell
key, cache version), and a stage's worth of artifacts becomes an
:class:`ArtifactSet` with a small query API.

The set's :attr:`ArtifactSet.digest` is the identity of the upstream
data as seen by a consumer: the hash of the ordered cell keys.  Each
cell key already content-addresses *what was computed* (scenario,
params, seed), so the digest changes exactly when any upstream input
changed — it is folded into downstream cell keys and stage
fingerprints, which is what makes cross-stage caching sound: editing an
upstream axis invalidates downstream artifacts automatically, while a
byte-identical upstream grid (even one declared in a different spec
file) resolves to the same artifacts with zero recomputation.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Iterable, Iterator
from typing import Any

from .cache import canonical_json

__all__ = ["keys_digest", "Artifact", "ArtifactSet"]


def keys_digest(keys: Iterable[str]) -> str:
    """Stable identity of an ordered collection of cell keys."""
    return hashlib.sha256(
        canonical_json(list(keys)).encode("utf-8")
    ).hexdigest()


@dataclasses.dataclass(frozen=True)
class Artifact:
    """One cell result plus the provenance that locates it.

    ``scenario``/``params``/``seed``/``key``/``cache_version`` are the
    content address (what was computed); ``spec_fingerprint``/
    ``spec_name``/``index``/``coords`` are provenance (who computed it,
    where in their grid).  Provenance is ``None``-tolerant: artifacts
    written before provenance headers existed still resolve.
    """

    scenario: str
    params: dict[str, Any]
    seed: int
    #: the cell's content-addressed cache key
    key: str
    result: Any
    wall_s: float
    cache_version: int
    #: sha256 fingerprint of the spec (+ input digests) that produced it
    spec_fingerprint: str | None = None
    spec_name: str | None = None
    #: position in the producing grid, and the axis values at that cell
    index: int | None = None
    coords: dict[str, Any] = dataclasses.field(default_factory=dict)
    #: upstream dependency digests this cell was computed against
    inputs: dict[str, str] | None = None
    #: True when the value was read back from the cache (vs. fresh)
    cached: bool = False


@dataclasses.dataclass(frozen=True)
class ArtifactSet:
    """An ordered, queryable collection of one stage's artifacts."""

    #: the dependency name downstream stages resolve this set under
    name: str
    artifacts: tuple[Artifact, ...]

    def __len__(self) -> int:
        return len(self.artifacts)

    def __iter__(self) -> Iterator[Artifact]:
        return iter(self.artifacts)

    def __getitem__(self, index: int) -> Artifact:
        return self.artifacts[index]

    @property
    def digest(self) -> str:
        """Hash of the ordered cell keys: the set's identity to consumers."""
        missing = [a.index for a in self.artifacts if a.key is None]
        if missing:
            raise ValueError(
                f"artifact set {self.name!r} has {len(missing)} cell(s) "
                "without a content-addressed key (non-JSON-safe params?); "
                "its digest — and therefore downstream cache identity — "
                "is undefined"
            )
        return keys_digest(a.key for a in self.artifacts)

    def query(self, **filters: Any) -> "ArtifactSet":
        """Artifacts whose params match every ``name=value`` filter.

        Axis coordinates are part of each cell's params, so
        ``aset.query(flaps_per_hour=6.0)`` selects one slice of the
        producing grid.  Unknown names simply match nothing.
        """
        kept = tuple(
            a
            for a in self.artifacts
            if all(
                name in a.params and a.params[name] == value
                for name, value in filters.items()
            )
        )
        return ArtifactSet(name=self.name, artifacts=kept)

    def one(self, **filters: Any) -> Artifact:
        """The single artifact matching ``filters``; raises otherwise."""
        found = self.query(**filters) if filters else self
        if len(found) != 1:
            raise LookupError(
                f"expected exactly one artifact in {self.name!r} for "
                f"{filters or 'the whole set'}, found {len(found)}"
            )
        return found.artifacts[0]

    def results(self) -> list[Any]:
        """Every artifact's result payload, in producing-grid order."""
        return [a.result for a in self.artifacts]
