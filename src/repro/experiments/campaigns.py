"""Campaign definitions: chaos, profiling, and managed-service chaos.

Everything here used to live inside ``sim/scenarios.py``; it is now a
layer of the experiment framework so every campaign family shares one
runner, one seeding rule, and one artifact cache:

* :class:`ChaosConfig` / :class:`ChaosReport` / :func:`run_chaos` — one
  fault-injection campaign over the full VC + transfer stack, against
  its fault-free twin (extension Ext-O);
* :func:`chaos_sweep` — the rejection x timeout x flap-rate grid,
  expressed as an :class:`~repro.experiments.spec.ExperimentSpec` and
  expanded through the shared :class:`~repro.experiments.runner.Runner`
  (``seed_mode="shared"``: every grid point replays the same seed, the
  historical contract that isolates the swept knob);
* :class:`ManagedChaosConfig` / :func:`run_managed_chaos` — the
  Globus-Online-style managed service under the *same*
  :class:`~repro.faults.injector.FaultInjector` schedules the fluid
  simulator uses (extension Ext-L);
* :class:`ProfileReport` / :func:`profile_campaign` — the instrumented
  allocator campaign behind ``repro-gridftp profile``;
* :func:`pareto_front_points` / :func:`cross_spec_pareto` — the
  cross-spec analysis layer: an availability-vs-goodput Pareto front
  computed over *other* campaigns' cached artifacts (chaos grids,
  managed-service grids) resolved through the pipeline machinery, and
  :func:`managed_campaign_from_workload`, which sizes a managed-service
  campaign from upstream synthesized workloads (measurement -> model ->
  decision).

Reports serialize losslessly to JSON (:func:`report_to_dict` /
:func:`report_from_dict`), which is what lets chaos cells cross process
boundaries under ``--jobs N`` and live in the artifact cache without
changing a single reported bit.
"""

from __future__ import annotations

import dataclasses
import math
import os
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.rng import ensure_rng
from ..faults.injector import FaultInjector, merge_intervals
from ..faults.recovery import BackoffPolicy, RecoveryStats
from ..faults.spec import FaultKind, FaultSpec
from ..gridftp.client import TransferJob
from ..gridftp.reliability import RestartPolicy
from ..gridftp.transfer_service import ManagedTransferService, TaskState
from ..net.topology import esnet_like
from ..sim.experiment import FluidSimulator, default_dtns
from ..sim.probe import SimProbe
from ..vc.oscars import OscarsIDC, ReservationRejected, ReservationRequest
from ..vc.policy import FallbackMode, FallbackPolicy
from .runner import Runner
from .spec import ExperimentSpec, PipelineSpec, StageSpec

if TYPE_CHECKING:
    from ..sched.base import TransferScheduler

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "run_chaos",
    "chaos_sweep",
    "chaos_params_from_config",
    "chaos_config_from_params",
    "report_to_dict",
    "report_from_dict",
    "encode_nonfinite",
    "decode_nonfinite",
    "ManagedChaosConfig",
    "ManagedChaosReport",
    "run_managed_chaos",
    "managed_config_from_params",
    "ProfileReport",
    "profile_campaign",
    "pareto_front_points",
    "managed_campaign_from_workload",
    "cross_spec_pareto",
]


# -- chaos: fault-injection campaigns over the full VC + transfer stack ------


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """One chaos campaign: a VC-backed session under injected faults.

    ``n_jobs`` transfers between ``src`` and ``dst`` each request a
    ``vc_rate_bps`` circuit; the fault knobs inject IDC rejections
    (retried with ``backoff``), signalling timeouts of
    ``setup_extra_delay_s`` (long enough to trip ``fallback``'s
    deadline), mid-transfer circuit flaps (recovered through ``restart``
    markers), and optional endpoint outages at the destination site.
    """

    n_jobs: int = 10
    job_bytes: float = 10e9
    job_spacing_s: float = 600.0
    first_submit_s: float = 200.0
    src: str = "NERSC"
    dst: str = "ORNL"
    vc_rate_bps: float = 3e9
    streams: int = 8
    #: per-request fault probabilities (Bernoulli per createReservation)
    rejection_prob: float = 0.0
    setup_timeout_prob: float = 0.0
    setup_extra_delay_s: float = 240.0
    #: time-driven faults while a job rides its circuit
    flaps_per_hour: float = 0.0
    flap_duration_s: float = 20.0
    endpoint_outages_per_hour: float = 0.0
    endpoint_outage_s: float = 30.0
    fallback: FallbackPolicy = FallbackPolicy()
    backoff: BackoffPolicy = BackoffPolicy()
    restart: RestartPolicy = RestartPolicy(marker_interval_bytes=64e6, reconnect_s=5.0)

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("need at least one job")
        if self.job_bytes <= 0 or self.vc_rate_bps <= 0:
            raise ValueError("job size and circuit rate must be positive")

    def job_size(self, i: int) -> float:
        """Per-job size, slightly perturbed so jobs are distinguishable."""
        return self.job_bytes * (1.0 + 1e-3 * i)

    def submit_time(self, i: int) -> float:
        return self.first_submit_s + i * self.job_spacing_s

    def est_duration_s(self, i: int) -> float:
        """Fault-free transfer time at the circuit rate."""
        return self.job_size(i) * 8.0 / self.vc_rate_bps

    def build_injector(self, seed: int) -> FaultInjector:
        """The injector this config describes (deterministic under seed)."""
        specs = []
        if self.rejection_prob > 0:
            specs.append(
                FaultSpec(FaultKind.IDC_REJECTION, probability=self.rejection_prob)
            )
        if self.setup_timeout_prob > 0:
            specs.append(
                FaultSpec(
                    FaultKind.VC_SETUP_TIMEOUT,
                    probability=self.setup_timeout_prob,
                    extra_delay_s=self.setup_extra_delay_s,
                )
            )
        if self.flaps_per_hour > 0:
            specs.append(
                FaultSpec(
                    FaultKind.CIRCUIT_FLAP,
                    rate_per_hour=self.flaps_per_hour,
                    duration_s=self.flap_duration_s,
                )
            )
        if self.endpoint_outages_per_hour > 0:
            specs.append(
                FaultSpec(
                    FaultKind.ENDPOINT_OUTAGE,
                    rate_per_hour=self.endpoint_outages_per_hour,
                    duration_s=self.endpoint_outage_s,
                    target=self.dst,
                )
            )
        return FaultInjector(specs, seed=seed)


@dataclasses.dataclass(frozen=True)
class ChaosReport:
    """What one chaos campaign did to the session, vs its clean twin."""

    n_jobs: int
    n_completed: int
    #: per-job service mode: "vc", "migrate", or "ip"
    modes: tuple[str, ...]
    #: per-job injected flap counts (0 for jobs that never rode a circuit)
    flaps_per_job: tuple[int, ...]
    #: fraction of jobs that rode their circuit end to end, flap-free
    availability: float
    goodput_clean_bps: float
    goodput_chaos_bps: float
    #: 1 - chaos/clean goodput (0 = unharmed)
    goodput_degradation: float
    #: completion-time inflation quantiles (chaos wall / clean wall)
    p50_inflation: float
    p99_inflation: float
    #: end-to-end walls per job, submit -> last byte, seconds
    wall_clean_s: tuple[float, ...]
    wall_chaos_s: tuple[float, ...]
    stats: RecoveryStats
    n_flaps_injected: int
    n_circuit_flaps_seen: int
    marker_rollback_bytes: float
    n_idc_rejections: int
    n_setup_timeouts: int
    flaps_per_hour: float
    #: the control-plane fault knobs this campaign ran under (sweep axes)
    rejection_prob: float = 0.0
    setup_timeout_prob: float = 0.0
    #: engine instrumentation from the chaos run (defaults: pre-probe reports)
    n_events: int = 0
    n_alloc_passes: int = 0
    mean_flows_per_pass: float = 0.0
    max_flows_touched: int = 0


def _campaign_scheduler(
    vc_rate_bps: float,
    fallback: FallbackPolicy,
    scheduler: str | None,
) -> "TransferScheduler":
    """Resolve a campaign's ``scheduler`` name to a fresh policy object.

    Campaigns take the scheduler *by name* (never by instance) so each
    run — chaos and its clean twin alike — starts from a cold policy:
    a learning scheduler must not carry one campaign's transfer log
    into the next and silently break seed-determinism.
    """
    from ..sched.base import SchedulerConfig, make_scheduler

    return make_scheduler(
        scheduler or "fcfs",
        SchedulerConfig(vc_rate_bps=vc_rate_bps),
        fallback=fallback,
    )


def _run_campaign(
    config: ChaosConfig,
    injector: FaultInjector | None,
    seed: int,
    scheduler: "TransferScheduler | None" = None,
) -> tuple[dict[int, float], list[str], list[int], RecoveryStats, FluidSimulator]:
    """One full session: reserve (with retry), fall back, flap, transfer.

    Every per-transfer decision — requested circuit bandwidth,
    reservation window, VC-vs-IP fallback — routes through
    ``scheduler`` (default: the first-come baseline, which reproduces
    the historical campaign bit for bit).  Returns per-job end-to-end
    wall seconds (submit to last byte), the per-job service modes,
    per-job injected flap counts, the recovery counters, and the
    simulator (for its flap/rollback bookkeeping).
    """
    if scheduler is None:
        scheduler = _campaign_scheduler(config.vc_rate_bps, config.fallback, None)
    topology = esnet_like()
    dtns = default_dtns(topology)
    sim = FluidSimulator(topology, dtns, restart_policy=config.restart)
    idc = OscarsIDC(topology, fault_injector=injector)
    rng = np.random.default_rng(seed + 1)  # backoff jitter draws
    stats = RecoveryStats()
    modes: list[str] = []
    flap_counts: list[int] = []
    horizon = config.submit_time(config.n_jobs - 1) + config.job_spacing_s

    job_fids: dict[int, int] = {}  # flow id -> job index
    for i in range(config.n_jobs):
        submit = config.submit_time(i)
        size = config.job_size(i)
        est = config.est_duration_s(i)
        job = TransferJob(
            submit_time=submit,
            src=config.src,
            dst=config.dst,
            size_bytes=size,
            streams=config.streams,
        )
        window_start, window_end = scheduler.reservation_window(
            submit, est, horizon_factor=2.0
        )
        request = ReservationRequest(
            src=config.src,
            dst=config.dst,
            bandwidth_bps=scheduler.rate_advice(size),
            start_time=window_start,
            end_time=window_end,
        )
        try:
            vc, _waited = idc.create_reservation_with_retry(
                request,
                request_time=submit,
                backoff=config.backoff,
                rng=rng,
                stats=stats,
            )
        except ReservationRejected:
            vc = None
        if vc is None:
            # retry budget exhausted: the transfer still runs, routed IP
            stats.n_fallbacks += 1
            job_fids[sim.submit(job)] = i
            modes.append("ip")
            flap_counts.append(0)
            continue
        decision = scheduler.decide_fallback(submit, vc.start_time)
        if decision.mode is FallbackMode.VC:
            delayed = dataclasses.replace(job, submit_time=decision.start_time)
            job_fids[sim.submit(delayed, vc=vc)] = i
            modes.append("vc")
            ride_start = decision.start_time
        elif decision.mode is FallbackMode.IP_THEN_MIGRATE:
            fid = sim.submit(job)
            job_fids[fid] = i
            sim.migrate_flow(fid, vc, decision.migrate_at)
            stats.n_fallbacks += 1
            stats.n_migrations += 1
            modes.append("migrate")
            ride_start = decision.migrate_at
        else:
            stats.n_fallbacks += 1
            job_fids[sim.submit(job)] = i
            modes.append("ip")
            flap_counts.append(0)
            continue
        # flap the circuit over the window it may actually carry the job
        n_flaps = 0
        if injector is not None:
            window_end = ride_start + 3.0 * est + 300.0
            flaps = merge_intervals(
                injector.flap_intervals(ride_start, window_end)
            )
            for t_down, t_up in flaps:
                sim.inject_circuit_flap(vc, t_down, t_up)
            n_flaps = len(flaps)
            stats.n_flaps += n_flaps
        flap_counts.append(n_flaps)

    if injector is not None:
        injector.arm(sim, 0.0, horizon)
    sim.run()

    # walls come straight off the simulator's flow-completion map: end
    # to end from the *original* submit, even for delayed/migrated jobs
    walls: dict[int, float] = {}
    for fid, i in job_fids.items():
        completion = sim.flow_completions.get(fid)
        if completion is not None:
            walls[i] = completion[1] - config.submit_time(i)
    # close the loop: the transfer log feeds the scheduler, so a
    # learning policy (predictive) trains on what the session achieved
    for i in sorted(walls):
        scheduler.observe(config.job_size(i), walls[i], modes[i])
    return walls, modes, flap_counts, stats, sim


def run_chaos(
    config: ChaosConfig, seed: int = 0, scheduler: str | None = None
) -> ChaosReport:
    """Run one chaos campaign and its fault-free twin; report the damage.

    Deterministic under ``seed``: the injector's fault schedule, the
    backoff jitter, and the simulator are all seeded, so the same call
    returns the same report — which is what lets tests assert on
    recovery behaviour rather than eyeball it.  ``scheduler`` names the
    :mod:`repro.sched` policy steering rate/window/fallback decisions
    (default ``"fcfs"``, the bit-exact historical baseline); a fresh
    policy object is built for the chaos run and another for its clean
    twin, so learning policies never leak state between the pair.
    """
    injector = config.build_injector(seed)
    chaos_walls, modes, flap_counts, stats, sim = _run_campaign(
        config,
        injector,
        seed,
        scheduler=_campaign_scheduler(config.vc_rate_bps, config.fallback, scheduler),
    )
    clean_walls, _, _, _, _ = _run_campaign(
        config,
        None,
        seed,
        scheduler=_campaign_scheduler(config.vc_rate_bps, config.fallback, scheduler),
    )

    jobs = range(config.n_jobs)
    completed = [i for i in jobs if i in chaos_walls]
    total_bits = sum(config.job_size(i) * 8.0 for i in completed)
    chaos_time = sum(chaos_walls[i] for i in completed)
    clean_done = [i for i in jobs if i in clean_walls]
    clean_bits = sum(config.job_size(i) * 8.0 for i in clean_done)
    clean_time = sum(clean_walls[i] for i in clean_done)
    goodput_chaos = total_bits / chaos_time if chaos_time > 0 else 0.0
    goodput_clean = clean_bits / clean_time if clean_time > 0 else 0.0
    both = [i for i in completed if i in clean_walls]
    inflations = (
        np.array([chaos_walls[i] / clean_walls[i] for i in both])
        if both
        else np.array([np.inf])
    )
    flapless_vc = sum(
        1 for i in jobs if modes[i] == "vc" and flap_counts[i] == 0 and i in chaos_walls
    )
    return ChaosReport(
        n_jobs=config.n_jobs,
        n_completed=len(completed),
        modes=tuple(modes),
        flaps_per_job=tuple(flap_counts),
        availability=flapless_vc / config.n_jobs,
        goodput_clean_bps=goodput_clean,
        goodput_chaos_bps=goodput_chaos,
        goodput_degradation=(
            1.0 - goodput_chaos / goodput_clean if goodput_clean > 0 else 1.0
        ),
        p50_inflation=float(np.percentile(inflations, 50)),
        p99_inflation=float(np.percentile(inflations, 99)),
        wall_clean_s=tuple(clean_walls.get(i, math.inf) for i in jobs),
        wall_chaos_s=tuple(chaos_walls.get(i, math.inf) for i in jobs),
        stats=stats,
        n_flaps_injected=sum(flap_counts),
        n_circuit_flaps_seen=sim.n_circuit_flaps,
        marker_rollback_bytes=sim.marker_rollback_bytes,
        n_idc_rejections=injector.count(FaultKind.IDC_REJECTION),
        n_setup_timeouts=injector.count(FaultKind.VC_SETUP_TIMEOUT),
        flaps_per_hour=config.flaps_per_hour,
        rejection_prob=config.rejection_prob,
        setup_timeout_prob=config.setup_timeout_prob,
        n_events=sim.probe.n_events,
        n_alloc_passes=sim.probe.n_alloc_passes,
        mean_flows_per_pass=sim.probe.mean_flows_per_pass,
        max_flows_touched=sim.probe.max_flows_touched,
    )


# -- chaos <-> spec plumbing -------------------------------------------------

_POLICY_FIELDS: dict[str, type] = {
    "fallback": FallbackPolicy,
    "backoff": BackoffPolicy,
    "restart": RestartPolicy,
}


def chaos_params_from_config(config: ChaosConfig) -> dict[str, Any]:
    """Flatten a :class:`ChaosConfig` into a JSON-safe spec params dict."""
    out: dict[str, Any] = {}
    for f in dataclasses.fields(ChaosConfig):
        value = getattr(config, f.name)
        out[f.name] = (
            dataclasses.asdict(value) if f.name in _POLICY_FIELDS else value
        )
    return out


def chaos_config_from_params(params: Mapping[str, Any]) -> ChaosConfig:
    """Rebuild the exact :class:`ChaosConfig` a params dict describes."""
    kwargs = dict(params)
    for name, cls in _POLICY_FIELDS.items():
        if isinstance(kwargs.get(name), Mapping):
            kwargs[name] = cls(**kwargs[name])
    return ChaosConfig(**kwargs)


_TUPLE_FIELDS = ("modes", "flaps_per_job", "wall_clean_s", "wall_chaos_s")

#: wrapper key for floats RFC 8259 cannot carry; the artifact cache
#: rejects raw NaN/Infinity, and chaos reports legitimately contain
#: ``math.inf`` (a job that never completed has an infinite wall).
#: A tagged one-key object — not a bare string like ``"NaN"`` — so a
#: field that *legitimately* holds such a string survives the round
#: trip unchanged.
_NONFINITE_KEY = "__nonfinite__"
_NONFINITE_SENTINELS = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def encode_nonfinite(obj: Any) -> Any:
    """Recursively wrap non-finite floats as ``{"__nonfinite__": tag}``.

    Keeps campaign results strict-JSON-cacheable while staying lossless
    for every other value — including strings such as ``"NaN"`` —
    :func:`decode_nonfinite` restores the exact float values.  Raises
    ``ValueError`` if the input already uses the reserved wrapper key
    (no real report does; the keys come from dataclass field names).
    """
    if isinstance(obj, float):
        if math.isnan(obj):
            return {_NONFINITE_KEY: "nan"}
        if math.isinf(obj):
            return {_NONFINITE_KEY: "inf" if obj > 0 else "-inf"}
        return obj
    if isinstance(obj, dict):
        if _NONFINITE_KEY in obj:
            raise ValueError(
                f"cannot encode a mapping that already uses the reserved "
                f"{_NONFINITE_KEY!r} key"
            )
        return {k: encode_nonfinite(v) for k, v in obj.items()}
    if isinstance(obj, tuple):
        return tuple(encode_nonfinite(v) for v in obj)
    if isinstance(obj, list):
        return [encode_nonfinite(v) for v in obj]
    return obj


def decode_nonfinite(obj: Any) -> Any:
    """Inverse of :func:`encode_nonfinite`."""
    if isinstance(obj, dict):
        tag = obj.get(_NONFINITE_KEY)
        if set(obj) == {_NONFINITE_KEY} and isinstance(tag, str):
            if tag in _NONFINITE_SENTINELS:
                return _NONFINITE_SENTINELS[tag]
        return {k: decode_nonfinite(v) for k, v in obj.items()}
    if isinstance(obj, tuple):
        return tuple(decode_nonfinite(v) for v in obj)
    if isinstance(obj, list):
        return [decode_nonfinite(v) for v in obj]
    return obj


def report_to_dict(report: ChaosReport) -> dict[str, Any]:
    """Lossless JSON-safe encoding of a :class:`ChaosReport`.

    Tuple fields are emitted as lists and non-finite walls as string
    sentinels, so the encoding is already in JSON's strict value model —
    a fresh in-process result and one read back from the artifact cache
    compare equal.
    """
    out = dataclasses.asdict(report)
    for name in _TUPLE_FIELDS:
        out[name] = list(out[name])
    return encode_nonfinite(out)


def report_from_dict(data: Mapping[str, Any]) -> ChaosReport:
    """Inverse of :func:`report_to_dict` (tuples, stats, infinities)."""
    kwargs = decode_nonfinite(dict(data))
    kwargs["stats"] = RecoveryStats(**kwargs["stats"])
    for name in _TUPLE_FIELDS:
        kwargs[name] = tuple(kwargs[name])
    return ChaosReport(**kwargs)


def chaos_sweep(
    flap_rates_per_hour: Sequence[float],
    config: ChaosConfig | None = None,
    seed: int = 0,
    rejection_probs: Sequence[float] | None = None,
    timeout_probs: Sequence[float] | None = None,
    runner: Runner | None = None,
) -> list[ChaosReport]:
    """Sweep fault knobs; one deterministic campaign per grid point.

    ``flap_rates_per_hour`` is always swept.  ``rejection_probs`` and
    ``timeout_probs`` optionally add IDC control-plane axes; omitted axes
    stay pinned at ``config``'s value (default: a moderately hostile IDC —
    30% rejections, 20% setup timeouts), so the single-axis call isolates
    how goodput and completion-time inflation scale with data-plane
    instability while the control-plane noise stays fixed.

    Reports come back in ``itertools.product`` order — rejection outermost,
    then timeout, then flap rate — so a pure flap sweep keeps its
    historical ordering and a full grid reshapes to
    ``(len(rejection_probs), len(timeout_probs), len(flap_rates))``.

    The grid is expanded through the shared experiment Runner (pass your
    own ``runner`` for parallel execution or an artifact cache); every
    grid point replays the same ``seed`` — the historical contract that
    makes points differ only by the swept knob.
    """
    base = config or ChaosConfig(rejection_prob=0.3, setup_timeout_prob=0.2)
    rejections = (
        [base.rejection_prob] if rejection_probs is None else list(rejection_probs)
    )
    timeouts = (
        [base.setup_timeout_prob] if timeout_probs is None else list(timeout_probs)
    )
    params = chaos_params_from_config(base)
    axes = {
        "rejection_prob": [float(r) for r in rejections],
        "setup_timeout_prob": [float(t) for t in timeouts],
        "flaps_per_hour": [float(r) for r in flap_rates_per_hour],
    }
    for axis in axes:
        params.pop(axis, None)
    spec = ExperimentSpec(
        name="chaos-sweep",
        scenario="chaos",
        params=params,
        axes=axes,
        seed=seed,
        seed_mode="shared",
    )
    campaign = (runner or Runner()).run(spec)
    return [report_from_dict(cell) for cell in campaign.results()]


# -- managed service under chaos (extension Ext-L) ---------------------------


@dataclasses.dataclass(frozen=True)
class ManagedChaosConfig:
    """A Globus-Online-style session under injected circuit flaps.

    ``n_tasks`` tasks of ``files_per_task`` x ``file_bytes`` move at the
    endpoint pair's ``rate_bps`` with bounded ``concurrency``; a
    :class:`~repro.faults.injector.FaultInjector` draws CIRCUIT_FLAP
    schedules per task (the same spec family the fluid simulator's chaos
    campaigns use), and each flap interrupts the in-flight file, which
    resumes from its last restart marker.
    """

    n_tasks: int = 15
    files_per_task: int = 10
    file_bytes: float = 32e9
    rate_bps: float = 1.6e9
    concurrency: int = 3
    submit_spacing_s: float = 240.0
    flaps_per_hour: float = 0.0
    flap_duration_s: float = 25.0
    marker_interval_bytes: float = 64e6
    reconnect_s: float = 4.0
    max_attempts_per_file: int = 200
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_tasks < 1 or self.files_per_task < 1:
            raise ValueError("need at least one task and one file")
        if self.file_bytes <= 0 or self.rate_bps <= 0:
            raise ValueError("file size and rate must be positive")

    def clean_task_wall_s(self) -> float:
        """Fault-free wall clock of one task's file batch."""
        return self.files_per_task * self.file_bytes * 8.0 / self.rate_bps

    def build_injector(self, seed: int) -> FaultInjector | None:
        if self.flaps_per_hour <= 0:
            return None
        return FaultInjector(
            [
                FaultSpec(
                    FaultKind.CIRCUIT_FLAP,
                    rate_per_hour=self.flaps_per_hour,
                    duration_s=self.flap_duration_s,
                )
            ],
            seed=seed,
        )


@dataclasses.dataclass(frozen=True)
class ManagedChaosReport:
    """Dashboard numbers for one managed-service chaos campaign."""

    n_tasks: int
    n_succeeded: int
    n_failed: int
    n_expired: int
    n_files_moved: int
    n_flaps_injected: int
    n_flaps_recovered: int
    #: total wall over total clean wall for the files actually moved
    inflation: float
    flaps_per_hour: float
    n_events: int

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def managed_config_from_params(params: Mapping[str, Any]) -> ManagedChaosConfig:
    return ManagedChaosConfig(**dict(params))


def run_managed_chaos(
    config: ManagedChaosConfig, seed: int = 0, scheduler: str | None = None
) -> ManagedChaosReport:
    """Run the managed service under ``config``'s injected flap schedules.

    Deterministic under ``seed``: the injector draws each task's flap
    intervals over its possible ride window before the service runs, and
    the schedules are bound to the tasks exactly the way the fluid
    simulator's chaos campaigns flap their circuits.  ``scheduler``
    names the :mod:`repro.sched` policy whose rate advice sizes the
    endpoint-pair rate (default ``"fcfs"``: the nominal ``rate_bps``,
    bit-exact with the historical campaign).
    """
    injector = config.build_injector(seed)
    sched = _campaign_scheduler(config.rate_bps, FallbackPolicy(), scheduler)
    service = ManagedTransferService(
        rate_for=lambda _s, _d: sched.rate_advice(config.file_bytes),
        concurrency=config.concurrency,
        restart_policy=RestartPolicy(
            marker_interval_bytes=config.marker_interval_bytes,
            reconnect_s=config.reconnect_s,
        ),
        max_attempts_per_file=config.max_attempts_per_file,
    )
    clean_wall = config.clean_task_wall_s()
    n_flaps = 0
    for k in range(config.n_tasks):
        submitted = k * config.submit_spacing_s
        tid = service.submit(
            src_host=0,
            dst_host=1,
            file_sizes=[config.file_bytes] * config.files_per_task,
            submitted_at=submitted,
            deadline_s=config.deadline_s,
        )
        if injector is not None:
            # the window the task could plausibly occupy, chaos included
            window_end = submitted + 3.0 * clean_wall + 600.0
            intervals = merge_intervals(
                injector.flap_intervals(submitted, window_end)
            )
            if intervals:
                service.bind_outages(tid, intervals)
                n_flaps += len(intervals)
    probe = SimProbe()
    log = service.run(rng=ensure_rng(seed), probe=probe)
    states = service.states()
    clean_file_wall = config.file_bytes * 8.0 / config.rate_bps
    inflation = (
        float(log.duration.sum()) / (len(log) * clean_file_wall)
        if len(log)
        else math.inf
    )
    return ManagedChaosReport(
        n_tasks=config.n_tasks,
        n_succeeded=states[TaskState.SUCCEEDED],
        n_failed=states[TaskState.FAILED],
        n_expired=states[TaskState.EXPIRED],
        n_files_moved=len(log),
        n_flaps_injected=n_flaps,
        n_flaps_recovered=service.n_flaps_recovered,
        inflation=inflation,
        flaps_per_hour=config.flaps_per_hour,
        n_events=probe.n_events,
    )


# -- profiling: observe what the incremental engine actually does ------------


@dataclasses.dataclass(frozen=True)
class ProfileReport:
    """Instrumented campaign run, optionally raced against the oracle."""

    n_jobs: int
    n_completed: int
    allocator: str
    wall_s: float
    probe: SimProbe
    #: wall-clock of the identical campaign on the oracle path (if raced)
    oracle_wall_s: float | None = None

    @property
    def speedup(self) -> float | None:
        if self.oracle_wall_s is None or self.wall_s <= 0:
            return None
        return self.oracle_wall_s / self.wall_s

    def format(self) -> str:
        lines = [
            f"profile: {self.n_jobs} jobs, {self.n_completed} completed"
            f" ({self.allocator} allocator)",
            f"  wall clock          {self.wall_s:>12.3f} s",
            self.probe.format_table(),
        ]
        if self.oracle_wall_s is not None:
            lines.append(f"  oracle wall         {self.oracle_wall_s:>12.3f} s")
            lines.append(f"  speedup             {self.speedup:>12.2f}x")
        return "\n".join(lines)


def _profile_jobs(n_jobs: int, seed: int) -> list[TransferJob]:
    """A heavily concurrent all-to-all campaign for profiling runs."""
    rng = np.random.default_rng(seed)
    sites = ["NERSC", "ANL", "ORNL", "SLAC", "BNL", "LANL", "NICS"]
    jobs = []
    for _ in range(n_jobs):
        src, dst = rng.choice(len(sites), size=2, replace=False)
        jobs.append(
            TransferJob(
                submit_time=float(rng.uniform(0.0, n_jobs * 2.0)),
                src=sites[int(src)],
                dst=sites[int(dst)],
                size_bytes=float(rng.uniform(2e9, 20e9)),
                streams=int(rng.choice([1, 2, 4, 8])),
            )
        )
    jobs.sort(key=lambda j: j.submit_time)
    return jobs


def profile_campaign(
    n_jobs: int = 300,
    seed: int = 0,
    allocator: str = "incremental",
    compare_oracle: bool = False,
) -> ProfileReport:
    """Run an instrumented synthetic campaign; report counters and wall time.

    The workload is an all-to-all mix of best-effort science transfers with
    heavy overlap, so the dirty-set machinery has real components to chew
    on.  ``compare_oracle=True`` re-runs the identical campaign through the
    full-recompute oracle and reports the speedup.
    """
    import time as _time

    def _run(mode: str) -> tuple[float, SimProbe, int]:
        topology = esnet_like()
        dtns = default_dtns(topology)
        sim = FluidSimulator(topology, dtns, allocator=mode)
        for job in _profile_jobs(n_jobs, seed):
            sim.submit(job)
        t0 = _time.perf_counter()
        result = sim.run()
        return _time.perf_counter() - t0, result.probe, len(result.log)

    wall, probe, n_done = _run(allocator)
    oracle_wall = None
    if compare_oracle:
        oracle_wall, _, _ = _run("oracle")
    return ProfileReport(
        n_jobs=n_jobs,
        n_completed=n_done,
        allocator=allocator,
        wall_s=wall,
        probe=probe,
        oracle_wall_s=oracle_wall,
    )


# -- cross-spec analysis: Pareto fronts over cached campaign grids -----------


def _availability_goodput(artifact: Any) -> tuple[float, float] | None:
    """Extract an (availability, goodput_bps) point from one upstream cell.

    Understands the three grid families that expose the trade-off:
    ``chaos`` reports (availability + chaos goodput), ``managed_service``
    reports (task success rate + rate deflated by inflation), and
    ``managed_from_workload`` aggregates (which report the pair
    directly).  Anything else — a synth workload, a profile run —
    yields no point and is skipped.
    """
    result = decode_nonfinite(artifact.result)
    if not isinstance(result, Mapping):
        return None
    if "availability" in result and "goodput_chaos_bps" in result:
        availability = float(result["availability"])
        goodput = float(result["goodput_chaos_bps"])
    elif "availability" in result and "goodput_bps" in result:
        availability = float(result["availability"])
        goodput = float(result["goodput_bps"])
    elif "n_succeeded" in result and "inflation" in result:
        n_tasks = int(result.get("n_tasks", 0))
        if n_tasks < 1:
            return None
        availability = float(result["n_succeeded"]) / n_tasks
        # params only carry overrides; an omitted rate means the
        # ManagedChaosConfig default, not a zero-rate endpoint pair
        rate = float(
            artifact.params.get("rate_bps", ManagedChaosConfig.rate_bps)
        )
        inflation = float(result["inflation"])
        goodput = (
            rate / inflation
            if math.isfinite(inflation) and inflation > 0
            else 0.0
        )
    else:
        return None
    if not math.isfinite(availability):
        return None
    if not math.isfinite(goodput):
        goodput = 0.0
    return availability, goodput


def pareto_front_points(artifacts: Mapping[str, Any]) -> dict[str, Any]:
    """Availability-vs-goodput Pareto front over upstream artifact sets.

    ``artifacts`` maps dependency names to
    :class:`~repro.experiments.artifacts.ArtifactSet` objects — exactly
    what the Runner hands the ``pareto_front`` analysis scenario.  Every
    upstream cell that exposes the trade-off contributes one point
    (tagged with its source, cell index, and coords); the front is the
    non-dominated subset maximizing both axes, sorted by availability.
    The points are *read* from the upstream sets, never recomputed.
    """
    points: list[dict[str, Any]] = []
    for dep in sorted(artifacts):
        for artifact in artifacts[dep]:
            pair = _availability_goodput(artifact)
            if pair is None:
                continue
            availability, goodput = pair
            points.append(
                {
                    "source": dep,
                    "scenario": artifact.scenario,
                    "index": artifact.index,
                    "coords": dict(artifact.coords),
                    "availability": availability,
                    "goodput_bps": goodput,
                }
            )
    if not points:
        raise ValueError(
            "no upstream cell exposes an availability/goodput trade-off; "
            f"needs resolved: {sorted(artifacts)} — point them at chaos "
            "or managed-service grids"
        )
    front = [
        p
        for p in points
        if not any(
            (q["availability"] >= p["availability"])
            and (q["goodput_bps"] >= p["goodput_bps"])
            and (
                q["availability"] > p["availability"]
                or q["goodput_bps"] > p["goodput_bps"]
            )
            for q in points
        )
    ]
    front.sort(key=lambda p: (p["availability"], p["goodput_bps"]))
    return {
        "n_points": len(points),
        "n_front": len(front),
        "front": front,
        "points": points,
    }


def managed_campaign_from_workload(
    params: Mapping[str, Any], seed: int, artifacts: Mapping[str, Any]
) -> dict[str, Any]:
    """Run managed-service chaos campaigns sized from measured workloads.

    Each upstream ``synth`` cell is treated as a measured workload: its
    mean file size (``total_gbytes / n_transfers``) and median achieved
    throughput (``p50_tput_mbps``) parameterize one
    :class:`ManagedChaosConfig`, which runs under this cell's fault
    knobs (``flaps_per_hour`` and friends from ``params``).  The result
    aggregates availability (tasks succeeded over tasks submitted) and
    goodput (mean per-source rate deflated by completion-time
    inflation) so a downstream ``pareto_front`` stage can consume it
    directly.
    """
    sources: list[dict[str, Any]] = []
    total_tasks = 0
    total_succeeded = 0
    for dep in sorted(artifacts):
        for artifact in artifacts[dep]:
            result = artifact.result
            if (
                not isinstance(result, Mapping)
                or "n_transfers" not in result
                or "total_gbytes" not in result
            ):
                continue  # not a workload cell (skip, don't fail the mix)
            n_transfers = max(int(result["n_transfers"]), 1)
            file_bytes = max(
                float(result["total_gbytes"]) * 1e9 / n_transfers, 1e6
            )
            rate_bps = max(
                float(result.get("p50_tput_mbps", 100.0)) * 1e6, 1e6
            )
            config = ManagedChaosConfig(
                n_tasks=int(params.get("n_tasks", 4)),
                files_per_task=int(params.get("files_per_task", 3)),
                file_bytes=file_bytes,
                rate_bps=rate_bps,
                concurrency=int(params.get("concurrency", 2)),
                submit_spacing_s=float(params.get("submit_spacing_s", 240.0)),
                flaps_per_hour=float(params.get("flaps_per_hour", 0.0)),
                flap_duration_s=float(params.get("flap_duration_s", 25.0)),
            )
            report = run_managed_chaos(config, seed=seed)
            goodput = (
                rate_bps / report.inflation
                if math.isfinite(report.inflation) and report.inflation > 0
                else 0.0
            )
            total_tasks += report.n_tasks
            total_succeeded += report.n_succeeded
            sources.append(
                {
                    "source": dep,
                    "index": artifact.index,
                    "coords": dict(artifact.coords),
                    "dataset": result.get("dataset"),
                    "file_bytes": file_bytes,
                    "rate_bps": rate_bps,
                    "availability": report.n_succeeded / report.n_tasks,
                    "goodput_bps": goodput,
                    "inflation": report.inflation,
                    "n_files_moved": report.n_files_moved,
                    "n_flaps_injected": report.n_flaps_injected,
                }
            )
    if not sources:
        raise ValueError(
            "no upstream workload cells (need synth results with "
            f"n_transfers/total_gbytes); needs resolved: {sorted(artifacts)}"
        )
    return encode_nonfinite(
        {
            "availability": total_succeeded / total_tasks,
            "goodput_bps": float(
                np.mean([s["goodput_bps"] for s in sources])
            ),
            "flaps_per_hour": float(params.get("flaps_per_hour", 0.0)),
            "n_sources": len(sources),
            "sources": sources,
        }
    )


def cross_spec_pareto(
    spec_paths: Sequence[str | os.PathLike],
    name: str = "cross-spec-pareto",
    seed: int = 0,
    runner: Runner | None = None,
) -> dict[str, Any]:
    """The availability-vs-goodput front across *other* specs' grids.

    Builds a one-stage pipeline whose ``pareto_front`` stage ``needs``
    the given external spec files (chaos grids, managed-service grids)
    and runs it through ``runner``.  With a shared cache, grids those
    specs already computed resolve as pure cache reads — the campaign
    the paper-style comparison wants ("which operating points dominate
    across the chaos and managed-service studies?") without recomputing
    either study.
    """
    paths = [os.fspath(p) for p in spec_paths]
    if not paths:
        raise ValueError("cross_spec_pareto needs at least one spec path")
    stage = StageSpec(
        name="pareto",
        spec=ExperimentSpec(
            name=f"{name}/pareto", scenario="pareto_front", seed=seed
        ),
        needs=tuple(paths),
    )
    pipeline = PipelineSpec(name=name, stages=(stage,), seed=seed)
    result = (runner or Runner()).run_pipeline(pipeline)
    return result.stage("pareto").results()[0]
