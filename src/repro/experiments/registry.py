"""The scenario registry: names the computations a spec can declare.

A *scenario* is a plain callable ``(params: Mapping, seed: int) -> result``
where ``result`` must be JSON-serializable (it is what the artifact
cache stores and what crosses the process boundary under ``--jobs N``).
Register one with::

    @register_scenario("my-study")
    def my_study(params, seed):
        ...
        return {"metric": value}

An **analysis scenario** consumes upstream artifacts instead of (only)
computing from scratch: register it with ``needs_artifacts=True`` and a
three-argument signature — the Runner resolves the stage's ``needs``
into :class:`~repro.experiments.artifacts.ArtifactSet` objects and
passes them as the third argument::

    @register_scenario("my-analysis", needs_artifacts=True)
    def my_analysis(params, seed, artifacts):
        upstream = artifacts["workload"]          # an ArtifactSet
        sizes = [a.result["total_gbytes"] for a in upstream]
        ...

The built-in scenarios cover every campaign family the repo runs — the
chaos stack, the allocator profiler, the two mechanistic paper setups,
the managed-service (Globus-Online-style) chaos campaign, synthetic
workload generation, and the cross-grid analyses (``pareto_front``,
``managed_from_workload``) — so all of them ride the same Runner,
cache, and seeding machinery.  Their bodies import lazily: the registry
stays cheap to import and free of circular dependencies on the
simulation layers.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

import numpy as np

__all__ = [
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "scenario_needs_artifacts",
]

ScenarioFn = Callable[..., Any]

_SCENARIOS: dict[str, ScenarioFn] = {}
#: names registered with needs_artifacts=True (analysis scenarios)
_ARTIFACT_SCENARIOS: set[str] = set()


def register_scenario(
    name: str, needs_artifacts: bool = False
) -> Callable[[ScenarioFn], ScenarioFn]:
    """Decorator: expose ``fn`` to specs under ``scenario = name``.

    ``needs_artifacts=True`` marks an analysis scenario: its signature
    is ``(params, seed, artifacts)`` and the Runner only accepts it as
    a pipeline stage with resolved ``needs``.
    """

    def deco(fn: ScenarioFn) -> ScenarioFn:
        existing = _SCENARIOS.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = fn
        if needs_artifacts:
            _ARTIFACT_SCENARIOS.add(name)
        elif name in _ARTIFACT_SCENARIOS:
            raise ValueError(
                f"scenario {name!r} was registered with needs_artifacts=True"
            )
        return fn

    return deco


def get_scenario(name: str) -> ScenarioFn:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_needs_artifacts(name: str) -> bool:
    """True when ``name`` is an analysis scenario (3-arg signature)."""
    return name in _ARTIFACT_SCENARIOS


def scenario_names() -> list[str]:
    return sorted(_SCENARIOS)


# -- built-in scenarios ------------------------------------------------------


@register_scenario("chaos")
def _scenario_chaos(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """One fault-injection campaign over the VC stack (Ext-O cell).

    ``scheduler`` is a spec axis, not a :class:`ChaosConfig` field: it
    names the :mod:`repro.sched` policy steering the campaign (default
    ``"fcfs"``).  Specs without it keep their historical cache keys.
    """
    from .campaigns import chaos_config_from_params, report_to_dict, run_chaos

    kwargs = dict(params)
    scheduler = kwargs.pop("scheduler", None)
    config = chaos_config_from_params(kwargs)
    return report_to_dict(run_chaos(config, seed=seed, scheduler=scheduler))


@register_scenario("profile")
def _scenario_profile(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Instrumented allocator campaign; probe counters in the result."""
    from .campaigns import profile_campaign

    report = profile_campaign(
        n_jobs=int(params.get("n_jobs", 300)),
        seed=seed,
        allocator=str(params.get("allocator", "incremental")),
        compare_oracle=bool(params.get("compare_oracle", False)),
    )
    return {
        "n_jobs": report.n_jobs,
        "n_completed": report.n_completed,
        "allocator": report.allocator,
        "wall_s": report.wall_s,
        "probe": report.probe.as_dict(),
        "oracle_wall_s": report.oracle_wall_s,
        "speedup": report.speedup,
    }


@register_scenario("mechanistic")
def _scenario_mechanistic(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """The Section VII-D ANL->NERSC four-category setup, summarized."""
    from ..sim.scenarios import anl_nersc_mechanistic

    mech = anl_nersc_mechanistic(
        seed=seed, n_batches=int(params.get("n_batches", 110))
    )
    categories = {}
    for name in sorted(mech.masks):
        cat = mech.category(name)
        tput = cat.throughput_bps
        categories[name] = {
            "n": len(cat),
            "median_tput_bps": float(np.median(tput)) if len(cat) else 0.0,
            "mean_duration_s": float(cat.duration.mean()) if len(cat) else 0.0,
        }
    return {"n_transfers": len(mech.log), "categories": categories}


@register_scenario("snmp")
def _scenario_snmp(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """The Section VII-C NERSC--ORNL SNMP campaign, summarized."""
    from ..sim.scenarios import nersc_ornl_snmp_experiment

    exp = nersc_ornl_snmp_experiment(
        seed=seed,
        n_tests=int(params.get("n_tests", 145)),
        days=int(params.get("days", 30)),
        cross_traffic=bool(params.get("cross_traffic", True)),
    )
    link_gbytes = {
        name: float(counts.sum()) / 1e9 for name, (_, counts) in exp.links.items()
    }
    return {
        "n_tests": len(exp.test_log),
        "n_transfers": len(exp.full_log),
        "median_test_tput_bps": float(np.median(exp.test_log.throughput_bps)),
        "link_gbytes": link_gbytes,
        "probe": exp.probe.as_dict() if exp.probe is not None else None,
    }


@register_scenario("managed_service")
def _scenario_managed(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Globus-Online-style managed transfers under injected circuit chaos."""
    from .campaigns import (
        encode_nonfinite,
        managed_config_from_params,
        run_managed_chaos,
    )

    kwargs = dict(params)
    scheduler = kwargs.pop("scheduler", None)
    config = managed_config_from_params(kwargs)
    # inflation is math.inf when no file moved; sentinel-encode so the
    # result stays strict-JSON cacheable
    return encode_nonfinite(
        run_managed_chaos(config, seed=seed, scheduler=scheduler).as_dict()
    )


@register_scenario("sleep")
def _scenario_sleep(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Sleep for ``sleep_s`` seconds and echo the cell identity.

    A deliberately trivial scenario for harness smoke tests — timeout
    budgets, kill/resume drills, scheduler latency — where the cell's
    *duration* is the experiment and any real computation would be
    noise.  The result is deterministic, so resumed runs compare equal.
    """
    import time as _time

    _time.sleep(float(params.get("sleep_s", 0.0)))
    return {
        "slept_s": float(params.get("sleep_s", 0.0)),
        "tag": params.get("tag"),
        "seed": int(seed),
    }


@register_scenario("pareto_front", needs_artifacts=True)
def _scenario_pareto_front(
    params: Mapping[str, Any], seed: int, artifacts: Mapping[str, Any]
) -> dict[str, Any]:
    """Availability-vs-goodput Pareto front over upstream campaign grids.

    Reads every resolved dependency (chaos grids, managed-service
    grids, ``managed_from_workload`` stages — anything whose cells
    expose an availability and a goodput), extracts one point per
    upstream cell, and reports the non-dominated set.  This is the
    cross-spec analysis ROADMAP asked for: the upstream grids are
    *read* from the artifact cache, never recomputed here.
    """
    from .campaigns import pareto_front_points

    return pareto_front_points(artifacts)


@register_scenario("managed_from_workload", needs_artifacts=True)
def _scenario_managed_from_workload(
    params: Mapping[str, Any], seed: int, artifacts: Mapping[str, Any]
) -> dict[str, Any]:
    """Size a managed-service chaos campaign from synthesized workloads.

    The measurement -> model -> decision shape from the grid-scheduling
    literature: each upstream ``synth`` cell is a measured workload;
    its mean file size and median achieved throughput parameterize a
    :class:`~repro.experiments.campaigns.ManagedChaosConfig`, which
    then runs under this cell's fault knobs (``flaps_per_hour`` etc.).
    """
    from .campaigns import managed_campaign_from_workload

    return managed_campaign_from_workload(params, seed, artifacts)


@register_scenario("service_soak")
def _scenario_service_soak(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Fault-storm soak of the long-lived transfer daemon.

    Boots a real :class:`~repro.service.daemon.TransferDaemon` (asyncio
    loops, Unix control socket) in-process, drives a Poisson arrival
    storm with injected reservation rejections, signalling timeouts,
    circuit flaps, and deliberate work-loop panics, then drains and
    pins the service contracts (every accepted request settled,
    overload shed explicitly, crashed loops restarted).
    """
    from ..service.soak import run_service_soak

    return run_service_soak(dict(params), seed)


@register_scenario("service_loadtest")
def _scenario_service_loadtest(
    params: Mapping[str, Any], seed: int
) -> dict[str, Any]:
    """Open-loop load test of the transfer daemon, with latency SLOs.

    Submissions fire on a seeded arrival schedule (Poisson, bursty
    on/off, or the paper's Fig. 6 diurnal shape) *regardless of response
    latency*, so overload shows up as shed fraction and latency-tail
    growth instead of silently slowing the arrivals the way a
    closed-loop storm does.  ``mode="live"`` (default) boots a real
    in-process daemon and measures wall-clock latency; ``mode="sim"``
    runs the deterministic discrete-event twin, whose censuses and
    latency quantiles are bit-identical across same-seed runs.  The
    report validates its own service contracts before being returned
    (submission ledger, settle census, admission bound, monotone
    quantiles).
    """
    from ..service.loadtest import run_loadtest, run_loadtest_sim

    mode = str(params.get("mode", "live"))
    if mode == "sim":
        report = run_loadtest_sim(params, seed)
    elif mode == "live":
        report = run_loadtest(params, seed)
    else:
        raise ValueError(f"unknown loadtest mode {mode!r}")
    report.validate()
    return report.as_dict()


@register_scenario("sched_compare")
def _scenario_sched_compare(
    params: Mapping[str, Any], seed: int
) -> dict[str, Any]:
    """One seeded workload replayed through every scheduling policy.

    A cell of the scheduler-comparison campaign: the deterministic
    load-test twin runs once per policy in ``params["schedulers"]``
    (default: fcfs, predictive, global) on the *same* arrival schedule
    and request mix, so blocking-rate / goodput / makespan / fairness
    deltas are attributable to the policy alone.  Each per-scheduler
    entry carries ``availability`` + ``goodput_bps``, the pair the
    ``pareto_front`` analysis scenario consumes.
    """
    from ..sched import run_sched_comparison
    from .campaigns import encode_nonfinite

    return encode_nonfinite(run_sched_comparison(dict(params), seed))


@register_scenario("sched_cost_curve")
def _scenario_sched_cost_curve(
    params: Mapping[str, Any], seed: int
) -> dict[str, Any]:
    """Prediction-error cost curve for the predictive scheduler.

    Sweeps a fixed multiplicative bias around the oracle predictor
    (bias 1.0) over the deterministic load-test twin and reports what
    each level of prediction error costs in blocking rate, goodput, and
    deadline expiry — the DESIGN.md §16 methodology.
    """
    from ..sched.predictive import prediction_error_cost_curve
    from .campaigns import encode_nonfinite

    kwargs = dict(params)
    biases = kwargs.pop("biases", None)
    if biases is not None:
        return encode_nonfinite(
            prediction_error_cost_curve(
                kwargs, seed, biases=tuple(float(b) for b in biases)
            )
        )
    return encode_nonfinite(prediction_error_cost_curve(kwargs, seed))


@register_scenario("latency_sweep", needs_artifacts=True)
def _scenario_latency_sweep(
    params: Mapping[str, Any], seed: int, artifacts: Mapping[str, Any]
) -> dict[str, Any]:
    """Per-offered-rate latency quantile table over load-test grids.

    Reads every resolved ``service_loadtest`` cell and tabulates its
    p50/p95/p99 latency against the cell's ``rate_per_s`` axis value
    (grouped by scheduler), so scheduler comparisons get their
    latency-vs-offered-rate curves straight from the report JSON.
    """
    from ..service.loadtest import latency_sweep_table

    return latency_sweep_table(artifacts)


@register_scenario("stream_analyze")
def _scenario_stream_analyze(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Chunked generate -> sessionize -> summarize in bounded memory.

    The scale-out twin of ``synth``: the workload is produced as
    time-ordered chunks (:func:`~repro.workload.synth.generate_stream`)
    and folded through :class:`~repro.core.streaming.StreamAnalysis`, so
    the cell's working set stays O(chunk), independent of
    ``n_transfers``.  The result carries the full session census, the
    streamed six-number summaries, the peak accumulator footprint, and
    the pipeline's transfers/s.
    """
    import time as _time

    from ..core.streaming import StreamAnalysis
    from ..workload.synth import STREAM_BLOCK_TRANSFERS, generate_stream

    n = int(params.get("n_transfers", 100_000))
    chunk_size = int(params.get("chunk_size", 50_000))
    t0 = _time.perf_counter()
    analysis = StreamAnalysis(g=float(params.get("g", 60.0)))
    for chunk in generate_stream(
        str(params.get("dataset", "slac-bnl")),
        n,
        chunk_size,
        seed=seed,
        block_transfers=int(params.get("block_transfers", STREAM_BLOCK_TRANSFERS)),
    ):
        analysis.update(chunk)
    report = analysis.finalize()
    wall = _time.perf_counter() - t0
    return {
        **report.as_dict(),
        "chunk_size": chunk_size,
        "wall_s": wall,
        "transfers_per_s": n / wall if wall > 0 else 0.0,
    }


@register_scenario("synth")
def _scenario_synth(params: Mapping[str, Any], seed: int) -> dict[str, Any]:
    """Generate a calibrated synthetic workload; report its shape."""
    from ..workload.synth import generate

    kwargs = {k: v for k, v in params.items() if k != "dataset"}
    log = generate(str(params["dataset"]), seed=seed, **kwargs)
    tput = log.throughput_bps
    return {
        "dataset": str(params["dataset"]),
        "n_transfers": len(log),
        "total_gbytes": float(log.size.sum()) / 1e9,
        "mean_duration_s": float(log.duration.mean()),
        "p50_tput_mbps": float(np.percentile(tput, 50)) / 1e6,
        "p95_tput_mbps": float(np.percentile(tput, 95)) / 1e6,
    }
