"""Command-line interface: generate datasets and run paper analyses.

Examples::

    repro-gridftp datasets
    repro-gridftp generate NCAR-NICS --seed 7 --out ncar.log
    repro-gridftp sessions ncar.log --g 60
    repro-gridftp suitability ncar.log
    repro-gridftp summary ncar.log
    repro-gridftp analyze slac-bnl --n 10000000 --chunk-size 250000
    repro-gridftp factors ncar.log
    repro-gridftp advise ncar.log --bytes 2e11 --stripes 2
    repro-gridftp collect ncar.log --loss 0.05 --out collected.log
    repro-gridftp hntes yesterday.log today.log
    repro-gridftp arrivals ncar.log
    repro-gridftp profile --jobs 500 --compare-oracle
    repro-gridftp run campaign.toml --jobs 4
    repro-gridftp run pipeline.toml --dry-run
    repro-gridftp cache stats --json
    repro-gridftp cache gc --older-than 7d
    repro-gridftp cache verify --delete
    repro-gridftp cache prune-tmp
    repro-gridftp serve --socket /tmp/svc.sock --flaps-per-hour 12
    repro-gridftp request --socket /tmp/svc.sock submit --sizes 4e9 --wait
    repro-gridftp request --socket /tmp/svc.sock status
    repro-gridftp loadtest --arrivals poisson --n 100 --rate 0.1
    repro-gridftp loadtest --socket /tmp/svc.sock --n 50 --max-p99 2.0
    repro-gridftp loadtest --mode sim --arrivals diurnal --n 2000

A `run` campaign killed by SIGINT/SIGTERM drains in-flight cells,
flushes its checkpoint journal, and exits with code 75 (EX_TEMPFAIL);
re-running the same spec against the same cache resumes mid-batch and
executes only cells that never finished.
"""

from __future__ import annotations

import argparse
import sys

from .core.report import (
    format_gap_report,
    format_suitability_grid,
    format_summary_block,
)
from .core.sessions import group_sessions, session_gap_report
from .core.throughput import path_report
from .core.vc_suitability import suitability_table
from .core.rate_advisor import RateAdvisor
from .core.variance import decompose_throughput_variance
from .gridftp.logfmt import read_usage_log, write_usage_log
from .gridftp.usagestats import simulate_collection
from .workload.datasets import DATASETS, load
from .workload.synth import STREAM_BLOCK_TRANSFERS, STREAMABLE_DATASETS

__all__ = ["main"]


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for spec in DATASETS.values():
        print(f"{spec.name:18} {spec.n_transfers:>9,} transfers  {spec.period:24} "
              f"{'anonymized' if spec.anonymized else 'identified'}")
        print(f"{'':18} {spec.description}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    log = load(args.dataset, seed=args.seed)
    write_usage_log(log, args.out)
    print(f"wrote {len(log):,} transfers to {args.out}")
    return 0


def _cmd_sessions(args: argparse.Namespace) -> int:
    log = read_usage_log(args.log)
    rows = session_gap_report(log, [0.0, args.g, 2 * args.g] if args.g else [0.0, 60.0, 120.0])
    print(format_gap_report(f"Session structure of {args.log}", rows))
    s = group_sessions(log, args.g or 60.0)
    print(f"\nat g={args.g or 60.0:.0f}s: {len(s):,} sessions, "
          f"{int(s.n_transfers.sum()):,} transfers")
    return 0


def _cmd_suitability(args: argparse.Namespace) -> int:
    log = read_usage_log(args.log)
    grid = suitability_table(log)
    print(format_suitability_grid(f"VC suitability of {args.log}", grid))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    log = read_usage_log(args.log)
    rep = path_report(log)
    print(
        format_summary_block(
            f"{args.log}: {rep.n_transfers:,} transfers",
            [
                ("size MB", rep.size, 1e-6),
                ("dur s", rep.duration, 1.0),
                ("tput Mbps", rep.throughput, 1e-6),
            ],
        )
    )
    return 0


def _cmd_factors(args: argparse.Namespace) -> int:
    log = read_usage_log(args.log)
    effects = decompose_throughput_variance(
        log, include_concurrency=not args.no_concurrency
    )
    print(f"throughput-variance decomposition of {args.log} (one-way eta^2)")
    for e in effects:
        print(f"  {e.factor:>12}: {e.eta_squared:6.3f}  "
              f"({e.n_groups} levels, n={e.n:,})")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    log = read_usage_log(args.log)
    advisor = RateAdvisor(log)
    advice = advisor.advise(
        args.bytes,
        stripes=args.stripes,
        streams=args.streams,
        rate_quantile=args.quantile,
    )
    print(f"createReservation advice for a {args.bytes / 1e9:.1f} GB session:")
    print(f"  bandwidth = {advice.rate_bps / 1e6:,.0f} Mbps "
          f"(q{args.quantile:.2f} of {advice.support:,} similar transfers)")
    print(f"  duration  = {advice.duration_s:,.0f} s")
    return 0


def _cmd_hntes(args: argparse.Namespace) -> int:
    from .core.alpha_flows import AlphaFlowCriteria
    from .vc.hntes import HntesController

    learn = read_usage_log(args.learn_log)
    apply_to = read_usage_log(args.apply_log)
    ctl = HntesController(
        criteria=AlphaFlowCriteria(
            min_rate_bps=args.min_rate_gbps * 1e9, min_size_bytes=1e9
        )
    )
    ctl.analyze(learn, cycle=0)
    report = ctl.apply_filters(apply_to, cycle=1)
    print(f"learned from {len(learn):,} transfers; "
          f"{len(ctl.active_filters())} filters installed")
    print(f"next cycle: {report.n_redirected:,}/{report.n_transfers:,} "
          f"transfers redirected ({100 * report.byte_coverage:.1f}% of bytes)")
    if not args.no_config:
        print()
        print(ctl.render_config())
    return 0


def _cmd_arrivals(args: argparse.Namespace) -> int:
    from .core.interarrival import arrival_report

    log = read_usage_log(args.log)
    r = arrival_report(log, g_seconds=args.g)
    print(f"arrival process of {args.log}")
    print(f"  transfers: {r.n_transfers:,} (interarrival CV {r.transfer_cv:.2f}, "
          f"burstiness {r.transfer_burstiness:+.2f})")
    print(f"  sessions:  {r.n_sessions:,} (interarrival CV {r.session_cv:.2f}, "
          f"burstiness {r.session_burstiness:+.2f})")
    print(f"  peak hour holds {100 * r.peak_hour_share:.1f}% of arrivals")
    print(f"  batch structure visible: {r.batching_visible}")
    return 0


#: exit code for an interrupted-but-resumable campaign (EX_TEMPFAIL)
EXIT_RESUMABLE = 75


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments import (
        CampaignInterrupted,
        ExperimentSpec,
        ResultCache,
        Runner,
        load_spec,
    )
    from .experiments.checkpoint import CHECKPOINT_SUBDIR

    spec = load_spec(args.spec)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    checkpoint_dir = None
    if cache is not None and not args.no_checkpoint:
        checkpoint_dir = cache.root / CHECKPOINT_SUBDIR
    runner = Runner(
        jobs=args.jobs,
        cache=cache,
        cell_timeout_s=args.timeout,
        checkpoint_dir=checkpoint_dir,
    )
    if args.dry_run:
        from .experiments.runner import plan_dag_summary

        plans = runner.dry_run(spec)
        total = sum(p.n_cells for p in plans)
        hits = sum(p.n_hits for p in plans)
        print(f"dry run of '{spec.name}': {len(plans)} stage(s), "
              f"{total} cell(s), nothing executed")
        for plan in plans:
            origin = "external spec" if plan.external else "stage"
            print(f"  {origin} '{plan.name}' [{plan.scenario}]: "
                  f"{plan.n_cells} cell(s), {plan.n_hits} cached, "
                  f"{plan.n_cells - plan.n_hits} to execute  "
                  f"(fingerprint {plan.fingerprint[:12]})")
        print(f"plan: {total} cell(s) total, {hits} cached, "
              f"{total - hits} to execute")
        print(plan_dag_summary(plans, jobs=args.jobs).format())
        return 0
    try:
        if isinstance(spec, ExperimentSpec):
            campaign = runner.run(spec, force=args.force)
        else:
            campaign = runner.run_pipeline(spec, force=args.force)
    except CampaignInterrupted as exc:
        print(exc)
        return EXIT_RESUMABLE
    except RuntimeError as exc:
        # e.g. a pipeline stage quarantined cells a downstream stage needs
        print(exc)
        return 1
    print(campaign.format())
    _print_error_summary(campaign)
    return 1 if campaign.n_failed else 0


def _print_error_summary(campaign) -> int:
    """One line per quarantined cell, for flat campaigns and pipelines.

    The grid summary only *counts* failures (and pipeline stages bury
    them entirely); operators triaging a long campaign need the
    scenario, the cell identity, and the exception without replaying
    the run.  A stage every cell of which was *cancelled* (its needed
    upstream quarantined) coalesces to a single line — the culprit is
    upstream, and repeating the same reason per cell would drown it.
    Returns the number of lines printed.
    """
    stages = (
        list(campaign.stages.items())
        if hasattr(campaign, "stages")
        else [(campaign.spec.name, campaign)]
    )
    failed = []
    cancelled_stages = []
    for stage_name, stage in stages:
        bad = [c for c in stage.cells if not c.ok]
        if bad and len(bad) == len(stage.cells) and all(
            c.error is not None and c.error.startswith("cancelled: ")
            for c in bad
        ):
            cancelled_stages.append((stage_name, stage, bad[0].error))
            continue
        failed.extend((stage_name, stage.spec.scenario, c) for c in bad)
    if not failed and not cancelled_stages:
        return 0
    lines = 0
    if failed:
        print(f"\n{len(failed)} quarantined cell(s):")
        for stage_name, scenario, cell in failed:
            coords = (
                " ".join(f"{k}={v}" for k, v in sorted(cell.coords.items()))
                or "-"
            )
            print(f"  {stage_name} [{scenario}] cell {cell.index} ({coords}) "
                  f"seed={cell.seed}: {cell.error}")
            lines += 1
    if cancelled_stages:
        print(f"\n{len(cancelled_stages)} cancelled stage(s):")
        for stage_name, stage, reason in cancelled_stages:
            print(f"  {stage_name} [{stage.spec.scenario}] "
                  f"{stage.n_cells} cell(s) {reason}")
            lines += 1
    return lines


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from .service.daemon import DaemonConfig, run_daemon

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        stream=sys.stderr,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    try:
        config = DaemonConfig(
            socket_path=args.socket,
            workers=args.workers,
            time_scale=args.time_scale,
            queue_limit=args.queue_limit,
            tenant_quota=args.tenant_quota,
            vc_rate_bps=args.vc_rate_bps,
            ip_rate_bps=args.ip_rate_bps,
            default_deadline_s=args.default_deadline,
            reject_prob=args.reject_prob,
            setup_timeout_prob=args.timeout_prob,
            flaps_per_hour=args.flaps_per_hour,
            flap_duration_s=args.flap_duration,
            drain_grace_s=args.drain_grace,
            chaos_ops=args.chaos_ops,
            seed=args.seed,
            scheduler=args.scheduler,
        )
    except ValueError as exc:  # e.g. an unknown --scheduler name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return run_daemon(config)


def _cmd_request(args: argparse.Namespace) -> int:
    import json as _json

    from .service.api import ServiceClient

    with ServiceClient(args.socket, timeout=args.timeout) as client:
        if args.request_command == "submit":
            sizes = [float(s) for s in args.sizes.split(",") if s]
            resp = client.submit(
                sizes,
                tenant=args.tenant,
                deadline_s=args.deadline,
                wait=args.wait,
            )
        elif args.request_command == "wait":
            resp = client.wait(args.request_id)
        elif args.request_command == "status":
            resp = client.status()
        elif args.request_command == "health":
            resp = client.health()
        elif args.request_command == "crash":
            resp = client.crash()
        else:  # pragma: no cover - argparse enforces the choices
            raise SystemExit(f"unknown request {args.request_command!r}")
    print(_json.dumps(resp, indent=2, sort_keys=True))
    if resp.get("ok"):
        return 0
    # an admission rejection is retryable, everything else is an error
    return EXIT_RESUMABLE if resp.get("status") == "rejected" else 1


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json as _json

    from .service.loadtest import run_loadtest, run_loadtest_sim

    params = {
        "arrivals": args.arrivals,
        "n_requests": args.n,
        "rate_per_s": args.rate,
        "n_tenants": args.tenants,
        "invalid_frac": args.invalid_frac,
        "time_scale": args.time_scale,
        "workers": args.workers,
        "queue_limit": args.queue_limit,
        "tenant_quota": args.tenant_quota,
        "reject_prob": args.reject_prob,
        "setup_timeout_prob": args.timeout_prob,
        "flaps_per_hour": args.flaps_per_hour,
        "tight_deadline_frac": args.deadline_frac,
        "scheduler": args.scheduler,
    }
    try:
        if args.mode == "sim":
            report = run_loadtest_sim(params, args.seed)
        else:
            report = run_loadtest(params, args.seed, socket_path=args.socket)
    except ValueError as exc:  # e.g. an unknown --scheduler name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report.validate()
    except AssertionError as exc:
        print(_json.dumps(report.as_dict(), indent=2, sort_keys=True))
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(_json.dumps(report.as_dict(), indent=2, sort_keys=True))
    if args.max_p99 is not None and report.latency_p99_s is not None:
        if report.latency_p99_s > args.max_p99:
            print(
                f"FAIL: p99 latency {report.latency_p99_s:.3f} s exceeds "
                f"the --max-p99 SLO of {args.max_p99:.3f} s",
                file=sys.stderr,
            )
            return 1
    return 0


def _parse_age(text: str) -> float:
    """``'45'``/``'45s'``/``'30m'``/``'12h'``/``'7d'``/``'2w'`` -> seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
    text = text.strip().lower()
    factor = units.get(text[-1:], None)
    number = text[:-1] if factor is not None else text
    try:
        value = float(number)
    except ValueError:
        raise SystemExit(
            f"invalid age {text!r}; use e.g. 45s, 30m, 12h, 7d, 2w"
        ) from None
    return value * (factor if factor is not None else 1.0)


def _fmt_bytes(n: int) -> str:
    for unit in ("B", "kB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover


def _cmd_cache(args: argparse.Namespace) -> int:
    from .experiments import ResultCache, Runner, load_spec
    from .experiments.checkpoint import CHECKPOINT_SUBDIR

    cache = ResultCache(args.cache_dir)

    if args.cache_command == "stats":
        st = cache.stats()
        ck_dir = cache.root / CHECKPOINT_SUBDIR
        # current (.jsonl) and pre-review (.json) journal names alike
        checkpoints = sorted(
            p for pat in ("*.ckpt.jsonl", "*.ckpt.json")
            for p in ck_dir.glob(pat)
        )
        if args.json:
            import json as _json

            print(_json.dumps({
                "root": str(cache.root),
                "n_artifacts": st.n_artifacts,
                "total_bytes": st.total_bytes,
                "by_scenario": st.by_scenario,
                "n_tmp": st.n_tmp,
                "tmp_bytes": st.tmp_bytes,
                "oldest_age_s": st.oldest_age_s,
                "newest_age_s": st.newest_age_s,
                "n_checkpoints": len(checkpoints),
                "checkpoints": [p.name for p in checkpoints],
            }, indent=2, sort_keys=True))
            return 0
        print(f"cache {cache.root}: {st.n_artifacts} artifact(s), "
              f"{_fmt_bytes(st.total_bytes)}")
        for scenario in sorted(st.by_scenario):
            print(f"  {scenario:18} {st.by_scenario[scenario]:>6}")
        if st.n_artifacts:
            print(f"  oldest {st.oldest_age_s:,.0f} s ago, "
                  f"newest {st.newest_age_s:,.0f} s ago")
        print(f"  orphaned tmp files: {st.n_tmp} ({_fmt_bytes(st.tmp_bytes)})")
        print(f"  pending checkpoints: {len(checkpoints)}")
        for path in checkpoints:
            print(f"    {path.name}")
        return 0

    if args.cache_command == "gc":
        if args.older_than is None and args.spec is None:
            print("cache gc refuses to run unfiltered: pass --older-than "
                  "and/or --spec")
            return 2
        keys = None
        if args.spec is not None:
            # the dry-run planner yields every cell key a spec (or
            # pipeline, digests included) owns, without executing
            plans = Runner(cache=cache).dry_run(load_spec(args.spec))
            keys = {k for plan in plans for k in plan.keys}
        older = None if args.older_than is None else _parse_age(args.older_than)
        removed = cache.gc(older_than_s=older, keys=keys)
        if older is not None:
            # tmp files carry no cell key, so a spec-only gc must not
            # touch them: a fresh .tmp may belong to a campaign writing
            # *right now*, and deleting it would crash that run's rename
            removed += cache.prune_tmp(older_than_s=older)
        print(f"gc removed {len(removed)} file(s)")
        return 0

    if args.cache_command == "verify":
        report = cache.verify(delete=args.delete)
        print(f"verified {report.n_ok + len(report.bad)} artifact(s): "
              f"{report.n_ok} ok, {len(report.corrupt)} corrupt, "
              f"{len(report.mismatched)} key-mismatched"
              + (" (bad artifacts deleted)" if args.delete and report.bad else ""))
        for path in report.corrupt:
            print(f"  corrupt:    {path}")
        for path in report.mismatched:
            print(f"  mismatched: {path}")
        return 0 if (report.ok or args.delete) else 1

    if args.cache_command == "prune-tmp":
        older = 0.0 if args.older_than is None else _parse_age(args.older_than)
        removed = cache.prune_tmp(older_than_s=older)
        print(f"pruned {len(removed)} orphaned tmp file(s)")
        for path in removed:
            print(f"  {path}")
        return 0

    raise SystemExit(f"unknown cache command {args.cache_command!r}")


def _cmd_chaos(args: argparse.Namespace) -> int:
    import dataclasses

    from .experiments.campaigns import ChaosConfig, chaos_sweep, run_chaos

    config = ChaosConfig(
        n_jobs=args.jobs,
        rejection_prob=args.reject_prob,
        setup_timeout_prob=args.timeout_prob,
        flaps_per_hour=args.flaps_per_hour,
    )
    if args.sweep:
        rates = [float(r) for r in args.sweep.split(",")]
        reports = chaos_sweep(rates, config=config, seed=args.seed)
    else:
        reports = [run_chaos(config, seed=args.seed)]
    print("flaps/h  done  avail  goodput    degr   p50x   p99x  "
          "retry  fall  migr  flaps  rollback")
    for r in reports:
        print(
            f"{r.flaps_per_hour:7.1f}  {r.n_completed:2d}/{r.n_jobs:<2d}"
            f" {r.availability:5.2f}  {r.goodput_chaos_bps / 1e9:5.2f} Gb/s"
            f"  {r.goodput_degradation:6.1%} {r.p50_inflation:6.2f} {r.p99_inflation:6.2f}"
            f"  {r.stats.n_retries:5d} {r.stats.n_fallbacks:5d} {r.stats.n_migrations:5d}"
            f"  {r.n_flaps_injected:5d}  {r.marker_rollback_bytes / 1e6:6.1f} MB"
        )
    if args.verbose:
        for r in reports:
            print(f"\nflap rate {r.flaps_per_hour:.1f}/h, per-job detail:")
            for i, (mode, flaps, wc, wf) in enumerate(
                zip(r.modes, r.flaps_per_job, r.wall_clean_s, r.wall_chaos_s)
            ):
                print(f"  job {i:2d}: {mode:8s} flaps={flaps}  "
                      f"clean {wc:7.1f} s -> chaos {wf:7.1f} s")
            print(f"  recovery counters: {dataclasses.asdict(r.stats)}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .experiments.campaigns import profile_campaign

    report = profile_campaign(
        n_jobs=args.jobs,
        seed=args.seed,
        allocator=args.allocator,
        compare_oracle=args.compare_oracle,
    )
    print(report.format())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Chunked generate -> sessionize -> summarize in bounded memory."""
    import resource
    import time

    from .core.streaming import StreamAnalysis
    from .workload.synth import generate_stream

    t0 = time.perf_counter()
    analysis = StreamAnalysis(g=args.g)
    for chunk in generate_stream(
        args.dataset,
        args.n,
        args.chunk_size,
        seed=args.seed,
        block_transfers=args.block_transfers,
    ):
        analysis.update(chunk)
    report = analysis.finalize()
    wall = time.perf_counter() - t0

    print(f"streamed {args.dataset}: {report.n_transfers:,} transfers in "
          f"{report.n_chunks} chunks of <= {args.chunk_size:,} "
          f"({report.total_bytes / 1e12:.2f} TB)")
    print(f"sessions at g={report.g:.0f}s: {report.n_sessions:,} "
          f"({report.n_single:,} single, {report.n_multi:,} multi) "
          f"over {report.n_pairs} host pairs")
    print(f"largest session: {report.max_transfers_in_session:,} transfers; "
          f"{report.n_sessions_100_plus:,} sessions with >= 100")
    print(
        format_summary_block(
            "streamed summaries (quartiles sketched)",
            [
                ("ses MB", report.session_size, 1e-6),
                ("ses dur s", report.session_duration, 1.0),
                ("tput Mbps", report.transfer_throughput, 1e-6),
            ],
        )
    )
    tput = report.n_transfers / wall if wall > 0 else 0.0
    print(f"pipeline: {wall:.1f} s wall, {tput:,.0f} transfers/s")
    print(f"peak streaming state: {_fmt_bytes(report.peak_state_nbytes)}")
    # ru_maxrss is KiB on Linux (bytes on macOS; this repo's CI is Linux)
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    print(f"peak RSS: {rss_mb:,.0f} MB")
    if args.max_rss_mb is not None and rss_mb > args.max_rss_mb:
        print(f"FAIL: peak RSS {rss_mb:,.0f} MB exceeds budget "
              f"{args.max_rss_mb:,.0f} MB")
        return 1
    return 0


def _cmd_collect(args: argparse.Namespace) -> int:
    log = read_usage_log(args.log)
    collected, collector = simulate_collection(log, loss_rate=args.loss)
    write_usage_log(collected, args.out)
    print(f"collected {collector.n_records:,} of {len(log):,} transfers "
          f"({args.loss:.0%} UDP loss); remote hosts anonymized")
    print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-gridftp",
        description="GridFTP transfer-log analysis (SC'12 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the registered datasets").set_defaults(
        func=_cmd_datasets
    )

    g = sub.add_parser("generate", help="generate a synthetic dataset")
    g.add_argument("dataset", choices=sorted(DATASETS))
    g.add_argument("--seed", type=int, default=None)
    g.add_argument("--out", required=True)
    g.set_defaults(func=_cmd_generate)

    s = sub.add_parser("sessions", help="session structure of a usage log")
    s.add_argument("log")
    s.add_argument("--g", type=float, default=60.0, help="gap parameter, seconds")
    s.set_defaults(func=_cmd_sessions)

    v = sub.add_parser("suitability", help="Table IV suitability grid")
    v.add_argument("log")
    v.set_defaults(func=_cmd_suitability)

    m = sub.add_parser("summary", help="six-number summaries of a usage log")
    m.add_argument("log")
    m.set_defaults(func=_cmd_summary)

    f = sub.add_parser("factors", help="variance decomposition across factors")
    f.add_argument("log")
    f.add_argument("--no-concurrency", action="store_true",
                   help="skip the O(n^2) concurrency factor")
    f.set_defaults(func=_cmd_factors)

    a = sub.add_parser("advise", help="circuit rate/duration advice")
    a.add_argument("log", help="historical usage log to learn from")
    a.add_argument("--bytes", type=float, required=True,
                   help="upcoming session size in bytes")
    a.add_argument("--stripes", type=int, default=1)
    a.add_argument("--streams", type=int, default=8)
    a.add_argument("--quantile", type=float, default=0.75)
    a.set_defaults(func=_cmd_advise)

    an = sub.add_parser(
        "analyze",
        help="stream-generate a workload and analyze it in bounded memory",
    )
    an.add_argument("dataset", choices=sorted(STREAMABLE_DATASETS))
    an.add_argument("--n", type=int, default=1_000_000,
                    help="total transfers to stream (default 1M)")
    an.add_argument("--chunk-size", type=int, default=100_000,
                    help="transfers per analysis chunk")
    an.add_argument("--g", type=float, default=60.0,
                    help="session gap parameter, seconds")
    an.add_argument("--seed", type=int, default=None)
    an.add_argument("--block-transfers", type=int,
                    default=STREAM_BLOCK_TRANSFERS,
                    help="transfers per generation block (advanced)")
    an.add_argument("--max-rss-mb", type=float, default=None,
                    help="fail (exit 1) if peak RSS exceeds this budget")
    an.set_defaults(func=_cmd_analyze)

    c = sub.add_parser("collect", help="simulate usage-stats UDP collection")
    c.add_argument("log")
    c.add_argument("--loss", type=float, default=0.0)
    c.add_argument("--out", required=True)
    c.set_defaults(func=_cmd_collect)

    h = sub.add_parser("hntes", help="learn alpha filters from one log, apply to another")
    h.add_argument("learn_log")
    h.add_argument("apply_log")
    h.add_argument("--min-rate-gbps", type=float, default=1.0)
    h.add_argument("--no-config", action="store_true")
    h.set_defaults(func=_cmd_hntes)

    r = sub.add_parser("arrivals", help="arrival-process burstiness analysis")
    r.add_argument("log")
    r.add_argument("--g", type=float, default=60.0)
    r.set_defaults(func=_cmd_arrivals)

    x = sub.add_parser("chaos", help="fault-injection campaign over the VC stack")
    x.add_argument("--jobs", type=int, default=10)
    x.add_argument("--seed", type=int, default=0)
    x.add_argument("--reject-prob", type=float, default=0.3,
                   help="per-request IDC rejection probability")
    x.add_argument("--timeout-prob", type=float, default=0.2,
                   help="per-request signalling-timeout probability")
    x.add_argument("--flaps-per-hour", type=float, default=10.0,
                   help="circuit flap rate while a transfer rides its VC")
    x.add_argument("--sweep", default=None, metavar="R1,R2,...",
                   help="comma-separated flap rates to sweep instead")
    x.add_argument("--verbose", action="store_true",
                   help="per-job modes, flap counts and wall times")
    x.set_defaults(func=_cmd_chaos)

    pr = sub.add_parser(
        "profile", help="instrumented simulator campaign with probe counters"
    )
    pr.add_argument("--jobs", type=int, default=300)
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--allocator", choices=["incremental", "oracle"],
                    default="incremental")
    pr.add_argument("--compare-oracle", action="store_true",
                    help="also run the full-recompute oracle and report speedup")
    pr.set_defaults(func=_cmd_profile)

    rn = sub.add_parser(
        "run", help="run a declarative experiment spec or pipeline (TOML/JSON)"
    )
    rn.add_argument("spec", help="path to the campaign spec or pipeline file")
    rn.add_argument("--jobs", type=int, default=1,
                    help="worker processes (1 = serial in-process); for "
                         "pipelines the pool is pipeline-wide — cells from "
                         "every runnable stage share it")
    rn.add_argument("--no-cache", action="store_true",
                    help="disable the content-addressed result cache")
    rn.add_argument("--cache-dir", default=".repro-cache",
                    help="artifact cache root (default: .repro-cache)")
    rn.add_argument("--timeout", type=float, default=None,
                    help="per-cell wall-clock budget in seconds (parallel mode)")
    rn.add_argument("--force", action="store_true",
                    help="recompute every cell even on cache hits")
    rn.add_argument("--no-checkpoint", action="store_true",
                    help="disable the crash-safe campaign checkpoint journal")
    rn.add_argument("--dry-run", action="store_true",
                    help="expand the spec/pipeline, report per-stage cell "
                         "counts, the cache-hit census, and the stage DAG's "
                         "critical path / predicted schedule; execute nothing")
    rn.set_defaults(func=_cmd_run)

    sv = sub.add_parser(
        "serve", help="run the long-lived transfer daemon on a Unix socket"
    )
    sv.add_argument("--socket", required=True,
                    help="control-socket path (JSON lines, one op per line)")
    sv.add_argument("--workers", type=int, default=4)
    sv.add_argument("--time-scale", type=float, default=60.0,
                    help="virtual service seconds per real second")
    sv.add_argument("--queue-limit", type=int, default=64,
                    help="max admitted-but-unsettled requests")
    sv.add_argument("--tenant-quota", type=int, default=8,
                    help="max outstanding requests per tenant")
    sv.add_argument("--vc-rate-bps", type=float, default=1.6e9)
    sv.add_argument("--ip-rate-bps", type=float, default=4e8)
    sv.add_argument("--default-deadline", type=float, default=None,
                    help="budget (virtual s) for submissions naming none")
    sv.add_argument("--reject-prob", type=float, default=0.0,
                    help="per-request IDC rejection probability")
    sv.add_argument("--timeout-prob", type=float, default=0.0,
                    help="per-request signalling-timeout probability")
    sv.add_argument("--flaps-per-hour", type=float, default=0.0,
                    help="circuit flap rate while a request rides its VC")
    sv.add_argument("--flap-duration", type=float, default=25.0,
                    help="mean flap outage duration, virtual seconds")
    sv.add_argument("--drain-grace", type=float, default=5.0,
                    help="real seconds SIGTERM waits before checkpointing")
    sv.add_argument("--chaos-ops", action="store_true",
                    help="honour the 'crash' chaos op (tests/soaks only)")
    sv.add_argument("--scheduler", default="fcfs", metavar="NAME",
                    help="scheduling policy: fcfs | predictive | global "
                         "(unknown names fail fast with the valid set)")
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument("--verbose", action="store_true")
    sv.set_defaults(func=_cmd_serve)

    rq = sub.add_parser(
        "request", help="talk to a running transfer daemon"
    )
    rq.add_argument("--socket", required=True,
                    help="the daemon's control-socket path")
    rq.add_argument("--timeout", type=float, default=30.0,
                    help="socket timeout, real seconds")
    rqsub = rq.add_subparsers(dest="request_command", required=True)
    rqs = rqsub.add_parser("submit", help="submit one transfer request")
    rqs.add_argument("--sizes", required=True, metavar="S1,S2,...",
                     help="comma-separated file sizes in bytes")
    rqs.add_argument("--tenant", default="default")
    rqs.add_argument("--deadline", type=float, default=None,
                     help="deadline budget, virtual seconds")
    rqs.add_argument("--wait", action="store_true",
                     help="block until the request settles")
    rqw = rqsub.add_parser("wait", help="block until a request settles")
    rqw.add_argument("request_id", type=int)
    rqsub.add_parser("status", help="full service dashboard")
    rqsub.add_parser("health", help="liveness verdict")
    rqsub.add_parser("crash", help="chaos op: panic one work loop")
    rq.set_defaults(func=_cmd_request)

    lt = sub.add_parser(
        "loadtest",
        help="open-loop load test of the transfer daemon (latency SLOs)",
    )
    lt.add_argument("--socket", default=None,
                    help="drive an already-running daemon at this socket "
                         "(default: boot one in-process and drain it after)")
    lt.add_argument("--mode", choices=["live", "sim"], default="live",
                    help="live = real daemon; sim = deterministic "
                         "discrete-event twin (bit-identical per seed)")
    lt.add_argument("--arrivals", choices=["poisson", "onoff", "diurnal"],
                    default="poisson")
    lt.add_argument("--n", type=int, default=100,
                    help="number of submissions to offer")
    lt.add_argument("--rate", type=float, default=0.1,
                    help="arrival rate, requests per *virtual* second")
    lt.add_argument("--tenants", type=int, default=3)
    lt.add_argument("--invalid-frac", type=float, default=0.0,
                    help="fraction of submissions made deliberately invalid")
    lt.add_argument("--deadline-frac", type=float, default=0.25,
                    help="fraction of submissions with a tight deadline")
    lt.add_argument("--time-scale", type=float, default=3000.0,
                    help="virtual seconds per real second (embedded daemon "
                         "and schedule pacing; match a --socket daemon's)")
    lt.add_argument("--workers", type=int, default=4)
    lt.add_argument("--queue-limit", type=int, default=16)
    lt.add_argument("--tenant-quota", type=int, default=8)
    lt.add_argument("--reject-prob", type=float, default=0.0)
    lt.add_argument("--timeout-prob", type=float, default=0.0)
    lt.add_argument("--flaps-per-hour", type=float, default=0.0)
    lt.add_argument("--max-p99", type=float, default=None,
                    help="fail (exit 1) if p99 latency exceeds this SLO, "
                         "seconds in the report's latency domain")
    lt.add_argument("--scheduler", default="fcfs", metavar="NAME",
                    help="scheduling policy: fcfs | predictive | global")
    lt.add_argument("--seed", type=int, default=0)
    lt.set_defaults(func=_cmd_loadtest)

    ca = sub.add_parser(
        "cache", help="maintain the content-addressed campaign result cache"
    )
    ca.add_argument("--cache-dir", default=".repro-cache",
                    help="artifact cache root (default: .repro-cache)")
    casub = ca.add_subparsers(dest="cache_command", required=True)
    stp = casub.add_parser(
        "stats", help="artifact counts, sizes, scenarios, orphans, checkpoints"
    )
    stp.add_argument("--json", action="store_true",
                     help="machine-readable JSON instead of the human summary")
    gc = casub.add_parser("gc", help="remove artifacts by age and/or by spec")
    gc.add_argument("--older-than", default=None, metavar="AGE",
                    help="only artifacts older than AGE (45s, 30m, 12h, 7d, 2w)")
    gc.add_argument("--spec", default=None, metavar="SPEC",
                    help="only artifacts belonging to this spec's cells")
    ver = casub.add_parser(
        "verify", help="re-hash every artifact against its filename key"
    )
    ver.add_argument("--delete", action="store_true",
                     help="remove corrupt or key-mismatched artifacts")
    pt = casub.add_parser(
        "prune-tmp", help="remove orphaned in-flight temp files"
    )
    pt.add_argument("--older-than", default=None, metavar="AGE",
                    help="only tmp files older than AGE (default: all)")
    ca.set_defaults(func=_cmd_cache)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
