"""Unit and property tests for the SNMP byte counters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.snmp import SnmpCollector, SnmpCounter


class TestSnmpCounter:
    def test_single_bin_deposit(self):
        c = SnmpCounter(bin_seconds=30.0)
        c.add_bytes(5.0, 25.0, 600.0)
        starts, counts = c.series()
        assert counts[0] == pytest.approx(600.0)
        assert starts[0] == 0.0

    def test_spread_across_bins_proportional(self):
        c = SnmpCounter(bin_seconds=30.0)
        c.add_bytes(15.0, 45.0, 300.0)  # half in bin 0, half in bin 1
        _, counts = c.series()
        assert counts[0] == pytest.approx(150.0)
        assert counts[1] == pytest.approx(150.0)

    def test_conservation_many_bins(self):
        c = SnmpCounter(bin_seconds=30.0)
        c.add_bytes(7.0, 307.0, 12345.0)
        assert c.total_bytes() == pytest.approx(12345.0)

    def test_instantaneous_deposit(self):
        c = SnmpCounter(bin_seconds=30.0)
        c.add_bytes(31.0, 31.0, 99.0)
        _, counts = c.series()
        assert counts[1] == pytest.approx(99.0)

    def test_zero_bytes_noop(self):
        c = SnmpCounter()
        c.add_bytes(0.0, 10.0, 0.0)
        assert c.n_bins == 0

    def test_before_epoch_rejected(self):
        c = SnmpCounter(t0=100.0)
        with pytest.raises(ValueError):
            c.add_bytes(50.0, 60.0, 1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            SnmpCounter().add_bytes(0, 1, -1.0)

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            SnmpCounter().add_bytes(10.0, 5.0, 1.0)

    def test_bad_bin_seconds(self):
        with pytest.raises(ValueError):
            SnmpCounter(bin_seconds=0)

    def test_bin_boundary_exact(self):
        c = SnmpCounter(bin_seconds=30.0)
        c.add_bytes(0.0, 30.0, 30.0)
        _, counts = c.series()
        assert len(counts) == 1
        assert counts[0] == pytest.approx(30.0)

    def test_utilization(self):
        c = SnmpCounter(bin_seconds=30.0)
        c.add_bytes(0.0, 30.0, 30.0 * 1e9 / 8)  # 1 Gbps for one bin
        util = c.utilization(10e9)
        assert util[0] == pytest.approx(0.1)

    def test_accumulation_over_multiple_deposits(self):
        c = SnmpCounter(bin_seconds=30.0)
        c.add_bytes(0.0, 30.0, 100.0)
        c.add_bytes(10.0, 20.0, 50.0)
        _, counts = c.series()
        assert counts[0] == pytest.approx(150.0)

    @given(
        st.floats(min_value=0, max_value=1e4),
        st.floats(min_value=1e-3, max_value=1e4),
        st.floats(min_value=0, max_value=1e9),
    )
    @settings(max_examples=80)
    def test_conservation_property(self, start, length, nbytes):
        c = SnmpCounter(bin_seconds=30.0)
        c.add_bytes(start, start + length, nbytes)
        assert c.total_bytes() == pytest.approx(nbytes, rel=1e-9, abs=1e-6)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=5e3),
                st.floats(min_value=0, max_value=1e3),
                st.floats(min_value=0, max_value=1e8),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_multi_deposit_conservation(self, deposits):
        c = SnmpCounter(bin_seconds=30.0)
        total = 0.0
        for start, length, nbytes in deposits:
            c.add_bytes(start, start + length, nbytes)
            total += nbytes
        assert c.total_bytes() == pytest.approx(total, rel=1e-9, abs=1e-6)


class TestSnmpCollector:
    def test_counter_created_on_touch(self):
        col = SnmpCollector()
        col.counter(("a", "b")).add_bytes(0, 10, 5.0)
        assert ("a", "b") in col.keys()

    def test_path_deposit(self):
        col = SnmpCollector()
        links = [("a", "b"), ("b", "c")]
        col.add_bytes(links, 0.0, 10.0, 99.0)
        for key in links:
            assert col.counter(key).total_bytes() == pytest.approx(99.0)

    def test_export_naming(self):
        col = SnmpCollector()
        col.add_bytes([("rt-x", "rt-y")], 0, 30, 10.0)
        exported = col.export()
        assert "rt-x--rt-y" in exported
        starts, counts = exported["rt-x--rt-y"]
        assert counts.sum() == pytest.approx(10.0)

    def test_export_subset(self):
        col = SnmpCollector()
        col.add_bytes([("a", "b"), ("c", "d")], 0, 10, 1.0)
        exported = col.export(keys=[("a", "b")])
        assert list(exported) == ["a--b"]
