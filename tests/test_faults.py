"""Tests for the fault-injection subsystem: specs, injector, recovery."""

import math

import numpy as np
import pytest

from repro.faults import (
    BackoffPolicy,
    FaultInjector,
    FaultKind,
    FaultSpec,
    RecoveryStats,
    reserve_with_retry,
)
from repro.gridftp.reliability import CircuitOutageTracker
from repro.net.topology import esnet_like
from repro.vc.circuits import CircuitState, VirtualCircuit
from repro.vc.oscars import OscarsIDC, ReservationRejected, ReservationRequest
from repro.vc.policy import FallbackMode, FallbackPolicy


def _vc(**kw):
    defaults = dict(
        circuit_id=1, path=("A", "B"), rate_bps=1e9,
        start_time=0.0, end_time=100.0,
    )
    defaults.update(kw)
    return VirtualCircuit(**defaults)


class TestFaultSpec:
    def test_per_request_needs_valid_probability(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.IDC_REJECTION, probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.VC_SETUP_TIMEOUT, probability=-0.1)

    def test_time_driven_needs_valid_rate_and_duration(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.CIRCUIT_FLAP, rate_per_hour=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.LINK_OUTAGE, rate_per_hour=1.0, duration_s=0.0)

    def test_window_bounds_liveness(self):
        spec = FaultSpec(
            FaultKind.IDC_REJECTION, probability=0.5, window=(100.0, 200.0)
        )
        assert not spec.active_at(99.9)
        assert spec.active_at(100.0)
        assert not spec.active_at(200.0)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.IDC_REJECTION, window=(5.0, 5.0))

    def test_target_matching(self):
        anywhere = FaultSpec(FaultKind.CIRCUIT_FLAP, rate_per_hour=1.0)
        scoped = FaultSpec(
            FaultKind.ENDPOINT_OUTAGE, rate_per_hour=1.0, target="NERSC"
        )
        assert anywhere.matches("anything")
        assert scoped.matches("NERSC")
        assert not scoped.matches("ORNL")


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        specs = [
            FaultSpec(FaultKind.IDC_REJECTION, probability=0.5),
            FaultSpec(FaultKind.CIRCUIT_FLAP, rate_per_hour=20.0, duration_s=10.0),
        ]
        a = FaultInjector(specs, seed=9)
        b = FaultInjector(specs, seed=9)
        assert [a.reservation_fault(t) for t in range(50)] == [
            b.reservation_fault(t) for t in range(50)
        ]
        assert a.flap_intervals(0.0, 7200.0) == b.flap_intervals(0.0, 7200.0)

    def test_adding_a_spec_does_not_reshuffle_others(self):
        """Per-spec child generators: fault families are independent."""
        flap = FaultSpec(FaultKind.CIRCUIT_FLAP, rate_per_hour=20.0)
        alone = FaultInjector([flap], seed=4).flap_intervals(0.0, 3600.0)
        with_rejections = FaultInjector(
            [flap, FaultSpec(FaultKind.IDC_REJECTION, probability=0.9)], seed=4
        )
        for t in range(10):
            with_rejections.reservation_fault(float(t))
        assert with_rejections.flap_intervals(0.0, 3600.0) == alone

    def test_probability_extremes(self):
        always = FaultInjector(
            [FaultSpec(FaultKind.IDC_REJECTION, probability=1.0)], seed=0
        )
        never = FaultInjector(
            [FaultSpec(FaultKind.IDC_REJECTION, probability=0.0)], seed=0
        )
        assert all(always.reservation_fault(t) for t in range(20))
        assert not any(never.reservation_fault(t) for t in range(20))

    def test_flap_rate_scales_hit_count(self):
        def n_flaps(rate):
            inj = FaultInjector(
                [FaultSpec(FaultKind.CIRCUIT_FLAP, rate_per_hour=rate,
                           duration_s=1.0)],
                seed=2,
            )
            return len(inj.flap_intervals(0.0, 100 * 3600.0))

        assert n_flaps(10.0) == pytest.approx(1000, rel=0.2)
        assert n_flaps(1.0) == pytest.approx(100, rel=0.3)

    def test_setup_fault_returns_firing_spec(self):
        inj = FaultInjector(
            [FaultSpec(FaultKind.VC_SETUP_TIMEOUT, probability=1.0,
                       extra_delay_s=300.0)],
            seed=0,
        )
        spec = inj.setup_fault(10.0)
        assert spec is not None
        assert spec.kind is FaultKind.VC_SETUP_TIMEOUT
        assert spec.extra_delay_s == 300.0

    def test_events_audit_log_and_count(self):
        inj = FaultInjector(
            [FaultSpec(FaultKind.IDC_REJECTION, probability=1.0)], seed=0
        )
        inj.reservation_fault(1.0)
        inj.reservation_fault(2.0)
        assert inj.count(FaultKind.IDC_REJECTION) == 2
        assert inj.count(FaultKind.CIRCUIT_FLAP) == 0
        assert [f.time for f in inj.events] == [1.0, 2.0]

    def test_window_gates_time_driven_faults(self):
        inj = FaultInjector(
            [FaultSpec(FaultKind.CIRCUIT_FLAP, rate_per_hour=3600.0,
                       duration_s=0.5, window=(100.0, 200.0))],
            seed=1,
        )
        hits = inj.flap_intervals(0.0, 1000.0)
        assert hits  # ~1/s over a 100 s window
        assert all(100.0 <= a and b <= 200.0 for a, b in hits)


class TestBackoffPolicy:
    def test_exponential_growth_and_cap(self):
        p = BackoffPolicy(base_s=2.0, multiplier=2.0, max_backoff_s=30.0,
                          jitter=0.0)
        assert [p.delay_s(k) for k in range(6)] == [2.0, 4.0, 8.0, 16.0, 30.0, 30.0]

    def test_jitter_brackets_the_delay(self):
        p = BackoffPolicy(base_s=10.0, jitter=0.25)
        rng = np.random.default_rng(0)
        draws = [p.delay_s(0, rng) for _ in range(200)]
        assert all(7.5 <= d <= 12.5 for d in draws)
        assert max(draws) > 11.0 and min(draws) < 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_backoff_s=1.0, base_s=2.0)
        with pytest.raises(ValueError):
            BackoffPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy().delay_s(-1)


class TestRecoveryStats:
    def test_merge_sums_elementwise(self):
        a = RecoveryStats(n_retries=1, n_fallbacks=2, n_flaps=3)
        b = RecoveryStats(n_retries=10, n_failures=4, n_migrations=5)
        m = a.merge(b)
        assert m == RecoveryStats(
            n_retries=11, n_fallbacks=2, n_failures=4, n_flaps=3, n_migrations=5
        )

    def test_as_dict_round_trip(self):
        s = RecoveryStats(n_retries=7)
        assert s.as_dict()["n_retries"] == 7
        assert set(s.as_dict()) == {
            "n_retries", "n_fallbacks", "n_failures", "n_flaps", "n_migrations",
            "n_gave_up", "n_torn_down",
        }


class TestReserveWithRetry:
    def _request(self, start=100.0):
        return ReservationRequest(
            src="NERSC", dst="ORNL", bandwidth_bps=1e9,
            start_time=start, end_time=start + 3600.0,
        )

    def test_succeeds_after_injected_rejections(self):
        # seed 8 rejects the first three attempts at probability 0.6
        inj = FaultInjector(
            [FaultSpec(FaultKind.IDC_REJECTION, probability=0.6)], seed=8
        )
        idc = OscarsIDC(esnet_like(), fault_injector=inj)
        stats = RecoveryStats()
        vc, waited = reserve_with_retry(
            idc, self._request(), backoff=BackoffPolicy(max_retries=8, jitter=0.0),
            rng=1, request_time=100.0, stats=stats,
        )
        assert inj.count(FaultKind.IDC_REJECTION) >= 1
        assert stats.n_retries == inj.count(FaultKind.IDC_REJECTION)
        assert waited > 0.0
        assert vc.state is CircuitState.RESERVED
        # the accepted attempt was re-stamped: no reservation in the past
        assert vc.start_time >= 100.0 + waited

    def test_exhaustion_reraises_and_counts_failure(self):
        inj = FaultInjector(
            [FaultSpec(FaultKind.IDC_REJECTION, probability=1.0)], seed=0
        )
        idc = OscarsIDC(esnet_like(), fault_injector=inj)
        stats = RecoveryStats()
        backoff = BackoffPolicy(base_s=1.0, max_backoff_s=2.0, max_retries=3,
                                jitter=0.0)
        with pytest.raises(ReservationRejected):
            reserve_with_retry(
                idc, self._request(), backoff=backoff, rng=1,
                request_time=100.0, stats=stats,
            )
        assert stats.n_failures == 1
        assert stats.n_retries == 3

    def test_clean_idc_is_single_attempt(self):
        idc = OscarsIDC(esnet_like())
        vc, waited = reserve_with_retry(idc, self._request(), rng=1,
                                        request_time=100.0)
        assert waited == 0.0
        assert vc.rate_bps == 1e9

    def test_setup_timeout_inflates_ready_time(self):
        inj = FaultInjector(
            [FaultSpec(FaultKind.VC_SETUP_TIMEOUT, probability=1.0,
                       extra_delay_s=500.0)],
            seed=0,
        )
        idc = OscarsIDC(esnet_like(), fault_injector=inj)
        clean = OscarsIDC(esnet_like())
        slow = idc.create_reservation(self._request(), request_time=100.0)
        fast = clean.create_reservation(self._request(), request_time=100.0)
        assert slow.start_time == pytest.approx(fast.start_time + 500.0)

    def test_setup_failure_is_retryable_rejection(self):
        inj = FaultInjector(
            [FaultSpec(FaultKind.VC_SETUP_FAILURE, probability=1.0)], seed=0
        )
        idc = OscarsIDC(esnet_like(), fault_injector=inj)
        with pytest.raises(ReservationRejected):
            idc.create_reservation(self._request(), request_time=100.0)


class TestCircuitFailureLifecycle:
    def test_fail_and_restore(self):
        vc = _vc()
        vc.activate()
        vc.fail()
        assert vc.state is CircuitState.FAILED
        vc.restore()
        assert vc.state is CircuitState.ACTIVE

    def test_listeners_see_transitions_in_order(self):
        vc = _vc()
        seen = []
        vc.subscribe(lambda c, old, new: seen.append((old, new)))
        vc.activate()
        vc.fail()
        vc.restore()
        vc.release()
        assert seen == [
            (CircuitState.RESERVED, CircuitState.ACTIVE),
            (CircuitState.ACTIVE, CircuitState.FAILED),
            (CircuitState.FAILED, CircuitState.ACTIVE),
            (CircuitState.ACTIVE, CircuitState.RELEASED),
        ]

    def test_invalid_transitions(self):
        vc = _vc()
        with pytest.raises(RuntimeError):
            vc.restore()  # not failed
        vc.activate()
        vc.release()
        with pytest.raises(RuntimeError):
            vc.fail()  # released circuits stay dead


class TestCircuitOutageTracker:
    def test_records_failed_episodes(self):
        t = [0.0]
        tracker = CircuitOutageTracker(lambda: t[0])
        vc = _vc()
        tracker.watch(vc)
        vc.activate()
        t[0] = 10.0
        vc.fail()
        t[0] = 14.0
        vc.restore()
        assert tracker.intervals == [(10.0, 14.0)]
        assert tracker.n_flaps == 1

    def test_open_episode_and_clipping(self):
        t = [0.0]
        tracker = CircuitOutageTracker(lambda: t[0])
        vc = _vc()
        tracker.watch(vc)
        t[0] = 5.0
        vc.fail()  # still down
        assert tracker.n_flaps == 1
        out = tracker.outages_after(2.0, horizon=20.0)
        assert out == [(3.0, 18.0)]
        assert tracker.outages_after(50.0) == [(0.0, math.inf)]


class TestFallbackPolicy:
    def test_within_deadline_waits_for_circuit(self):
        d = FallbackPolicy(setup_deadline_s=120.0).decide(100.0, 161.0)
        assert d.mode is FallbackMode.VC
        assert d.start_time == 161.0
        assert d.wait_s == 61.0
        assert not d.fell_back

    def test_past_deadline_migrates(self):
        d = FallbackPolicy(setup_deadline_s=120.0).decide(100.0, 400.0)
        assert d.mode is FallbackMode.IP_THEN_MIGRATE
        assert d.start_time == 100.0
        assert d.migrate_at == 400.0
        assert d.fell_back

    def test_past_deadline_without_migration_stays_ip(self):
        policy = FallbackPolicy(setup_deadline_s=120.0, migrate_on_activation=False)
        d = policy.decide(100.0, 400.0)
        assert d.mode is FallbackMode.IP
        assert d.migrate_at is None

    def test_ready_in_the_past_starts_now(self):
        d = FallbackPolicy().decide(100.0, 50.0)
        assert d.mode is FallbackMode.VC
        assert d.start_time == 100.0
        assert d.wait_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FallbackPolicy(setup_deadline_s=-1.0)


class TestInjectorArm:
    def test_endpoint_outage_downs_incident_links(self):
        from repro.sim.experiment import FluidSimulator
        from repro.sim.scenarios import default_dtns

        topo = esnet_like()
        sim = FluidSimulator(topo, default_dtns(topo))
        inj = FaultInjector(
            [FaultSpec(FaultKind.ENDPOINT_OUTAGE, rate_per_hour=30.0,
                       duration_s=20.0, target="ORNL")],
            seed=3,
        )
        installed = inj.arm(sim, 0.0, 3600.0)
        assert installed
        assert all(f.kind is FaultKind.ENDPOINT_OUTAGE for f in installed)
        ornl_links = [k for k in sim._outages if "ORNL" in k]
        assert ornl_links
        assert all("ORNL" in k for k in sim._outages)


class TestScenarioHelpers:
    def test_merge_intervals(self):
        from repro.faults.injector import merge_intervals

        assert merge_intervals([(5.0, 9.0), (1.0, 3.0), (2.0, 4.0)]) == [
            (1.0, 4.0), (5.0, 9.0)
        ]
        assert merge_intervals([]) == []

    def test_scheduler_admission_counters(self):
        from repro.vc.scheduler import AdmissionError, BandwidthScheduler

        topo = esnet_like()
        sched = BandwidthScheduler(topo, reservable_fraction=0.5)
        path = topo.path("NERSC", "ORNL")
        sched.reserve(path, 4e9, 0.0, 100.0)
        with pytest.raises(AdmissionError):
            sched.reserve(path, 4e9, 0.0, 100.0)
        assert sched.n_admitted == 1
        assert sched.n_rejected == 1
