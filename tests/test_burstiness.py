"""Unit tests for burstiness analysis."""

import numpy as np
import pytest

from repro.core.burstiness import (
    burstiness_with_without,
    link_burstiness,
    porcupine_elephant_overlap,
    transfer_burstiness,
)
from repro.gridftp.records import TransferLog
from repro.net.snmp import SnmpCounter


class TestLinkBurstiness:
    def test_constant_series_zero_cv(self):
        b = link_burstiness(np.full(10, 100.0))
        assert b.cv == 0.0
        assert b.peak_to_mean == pytest.approx(1.0)

    def test_bursty_series(self):
        counts = np.zeros(100)
        counts[::10] = 1000.0
        b = link_burstiness(counts)
        assert b.cv == pytest.approx(3.0)
        assert b.peak_to_mean == pytest.approx(10.0)

    def test_exclude_idle(self):
        counts = np.array([0.0, 0.0, 100.0, 100.0])
        full = link_burstiness(counts)
        busy = link_burstiness(counts, include_idle=False)
        assert full.cv > busy.cv
        assert busy.n_bins == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            link_burstiness(np.zeros(0))

    def test_all_zero_series(self):
        b = link_burstiness(np.zeros(5))
        assert b.cv == 0.0 and b.mean_bytes == 0.0


class TestWithWithout:
    def test_removing_alpha_flow_reduces_burstiness(self):
        """A Sarvotham-style check against real SNMP counters."""
        total = SnmpCounter(bin_seconds=30.0)
        alpha = SnmpCounter(bin_seconds=30.0)
        # steady background over an hour
        total.add_bytes(0.0, 3600.0, 3600.0 * 50e6 / 8)
        # one 2.5 Gbps alpha transfer for 2 minutes
        total.add_bytes(1000.0, 1120.0, 120.0 * 2.5e9 / 8)
        alpha.add_bytes(1000.0, 1120.0, 120.0 * 2.5e9 / 8)
        _, t_counts = total.series()
        a_counts = np.zeros_like(t_counts)
        _, a_series = alpha.series()
        a_counts[: a_series.size] = a_series
        with_alpha, without = burstiness_with_without(t_counts, a_counts)
        assert with_alpha.peak_to_mean > 3 * without.peak_to_mean
        assert with_alpha.cv > without.cv

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            burstiness_with_without(np.zeros(3), np.zeros(4))


def make_log(rates_gbps, sizes=None, durations=None):
    n = len(rates_gbps)
    sizes = np.asarray(sizes if sizes is not None else [10e9] * n, dtype=float)
    tput = np.asarray(rates_gbps) * 1e9
    durations = (
        np.asarray(durations, dtype=float)
        if durations is not None
        else sizes * 8 / tput
    )
    return TransferLog(
        {
            "start": np.arange(n) * 1e4,
            "duration": durations,
            "size": sizes,
            "remote_host": [1] * n,
        }
    )


class TestTransferBurstiness:
    def test_fast_flow_scores_high(self):
        log = make_log([0.2, 0.2, 0.2, 2.5])
        scores = transfer_burstiness(log)
        assert scores[3] > 5 * scores[0]

    def test_short_transfers_discounted(self):
        # same rate, but one transfer lasts 3 s < the 30 s bin
        log = make_log([1.0, 1.0], sizes=[30e9, 0.375e9])
        scores = transfer_burstiness(log)
        assert scores[1] < scores[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            transfer_burstiness(make_log([1.0]), timescale_s=0.0)

    def test_empty_log(self):
        assert transfer_burstiness(TransferLog()).size == 0


class TestPorcupineElephant:
    def test_overlap_high_when_big_is_fast(self):
        rng = np.random.default_rng(0)
        n = 400
        sizes = rng.lognormal(21, 1.5, n)
        tput = 50e6 * (sizes / sizes.min()) ** 0.5  # bigger -> faster
        log = TransferLog(
            {
                "start": np.arange(n) * 1e4,
                "duration": sizes * 8 / tput,
                "size": sizes,
                "remote_host": [1] * n,
            }
        )
        overlap = porcupine_elephant_overlap(log)
        assert overlap > 0.6  # Lan-Heidemann reported 68%

    def test_small_log_nan(self):
        assert np.isnan(porcupine_elephant_overlap(make_log([1.0, 2.0])))
