"""Unit tests for the packet-level queueing / jitter model."""

import numpy as np
import pytest

from repro.net.queueing import (
    alpha_burst_arrivals,
    fifo_waits,
    isolated_gp_waits,
    jitter_comparison,
    poisson_arrivals,
)


class TestArrivalProcesses:
    def test_poisson_count(self):
        rng = np.random.default_rng(0)
        arrivals = poisson_arrivals(1e9, 10.0, rng)
        expected = 1e9 / (8 * 1500) * 10
        assert arrivals.size == pytest.approx(expected, rel=0.05)
        assert np.all(np.diff(arrivals) >= 0)

    def test_poisson_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 1.0, rng)

    def test_burst_structure(self):
        arrivals = alpha_burst_arrivals(2.5e9, 0.2, 0.05, 10e9)
        # 4 bursts of rate*rtt/pkt = 2.5e9*0.05/12000 ~ 10417 packets
        per_burst = int(round(2.5e9 * 0.05 / 12000))
        assert arrivals.size == pytest.approx(4 * per_burst, rel=0.01)
        # within a burst, spacing is the serialization time (back to back)
        gaps = np.diff(arrivals[:100])
        assert np.allclose(gaps, 12000 / 10e9)

    def test_burst_mean_rate_preserved(self):
        arrivals = alpha_burst_arrivals(2e9, 10.0, 0.06, 10e9)
        carried = arrivals.size * 1500 * 8 / 10.0
        assert carried == pytest.approx(2e9, rel=0.02)

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            alpha_burst_arrivals(11e9, 1.0, 0.05, 10e9)
        with pytest.raises(ValueError):
            alpha_burst_arrivals(1e9, 1.0, 0.0, 10e9)


class TestFifoWaits:
    def test_idle_queue_no_wait(self):
        waits = fifo_waits(np.array([0.0, 10.0, 20.0]), service_s=1.0)
        assert np.allclose(waits, 0.0)

    def test_back_to_back_accumulates(self):
        waits = fifo_waits(np.array([0.0, 0.0, 0.0]), service_s=2.0)
        assert np.allclose(waits, [0.0, 2.0, 4.0])

    def test_lindley_recovery(self):
        # packet at t=0, next at t=1 with service 2: waits 1; third at t=10: idle
        waits = fifo_waits(np.array([0.0, 1.0, 10.0]), service_s=2.0)
        assert np.allclose(waits, [0.0, 1.0, 0.0])

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            fifo_waits(np.array([1.0, 0.0]), 1.0)

    def test_empty(self):
        assert fifo_waits(np.zeros(0), 1.0).size == 0

    def test_utilization_scaling(self):
        """Waits blow up as offered load approaches capacity (M/D/1)."""
        rng = np.random.default_rng(1)
        light = fifo_waits(poisson_arrivals(3e9, 2.0, rng), 1500 * 8 / 10e9)
        rng = np.random.default_rng(1)
        heavy = fifo_waits(poisson_arrivals(9e9, 2.0, rng), 1500 * 8 / 10e9)
        assert heavy.mean() > 5 * light.mean()


class TestIsolation:
    def test_isolated_never_behind_alpha(self):
        rng = np.random.default_rng(2)
        gp = poisson_arrivals(0.5e9, 2.0, rng)
        waits = isolated_gp_waits(gp, 10e9, alpha_guarantee_bps=2.5e9)
        # residual 7.5G for 0.5G of GP: essentially no queueing
        assert np.percentile(waits, 99) < 20e-6

    def test_guarantee_validation(self):
        with pytest.raises(ValueError):
            isolated_gp_waits(np.zeros(1), 10e9, alpha_guarantee_bps=10e9)

    def test_jitter_comparison_reduces(self):
        c = jitter_comparison(duration_s=2.0, seed=3)
        assert c.shared_p99 > 10 * c.isolated_p99
        assert c.jitter_reduction > 0.8
        assert c.n_gp_packets > 10_000

    def test_jitter_scales_with_alpha_burst(self):
        """Bigger α windows (longer RTT) -> worse shared-queue jitter."""
        short = jitter_comparison(rtt_s=0.02, duration_s=2.0, seed=4)
        long = jitter_comparison(rtt_s=0.08, duration_s=2.0, seed=4)
        assert long.shared_p99 > 2 * short.shared_p99

    def test_no_alpha_no_difference(self):
        """With a negligible α flow both treatments look alike."""
        c = jitter_comparison(alpha_rate_bps=1e6, duration_s=1.0, seed=5)
        assert c.shared_p99 < 20e-6
