"""Unit tests for the automatic-signalling provisioner daemon."""

import pytest

from repro.net.topology import esnet_like
from repro.sim.engine import EventLoop
from repro.vc.circuits import CircuitState, HardwareSignalling
from repro.vc.oscars import OscarsIDC, ReservationRequest
from repro.vc.provisioner import AutoProvisioner


def setup():
    topo = esnet_like()
    # hardware signalling so create_reservation itself adds no delay;
    # the BATCHING of the daemon is what we measure
    idc = OscarsIDC(topo, setup_delay=HardwareSignalling(0.0))
    loop = EventLoop(0.0)
    prov = AutoProvisioner(idc, loop, batch_window_s=60.0)
    return topo, idc, loop, prov


class TestAutoProvisioner:
    def test_activates_at_next_boundary(self):
        topo, idc, loop, prov = setup()
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 90.0, 10_000.0),
            request_time=0.0,
        )
        prov.start()
        loop.run(until=200.0)
        assert idc.circuit(vc.circuit_id).state is CircuitState.ACTIVE
        # start 90 s -> activation at the 120 s boundary
        provisioned = [a for a in prov.actions if a.action == "provisioned"]
        assert provisioned[0].time == 120.0
        assert prov.activation_delay(vc.circuit_id) == pytest.approx(30.0)

    def test_worst_case_is_one_batch_window(self):
        """Circuits starting just after a boundary wait nearly a full window."""
        topo, idc, loop, prov = setup()
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 60.1, 10_000.0),
            request_time=0.0,
        )
        prov.start()
        loop.run(until=200.0)
        delay = prov.activation_delay(vc.circuit_id)
        assert 59.0 <= delay <= 60.0

    def test_releases_expired_circuits(self):
        topo, idc, loop, prov = setup()
        idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 50.0, 100.0),
            request_time=0.0,
        )
        prov.start()
        loop.run(until=300.0)
        actions = [a.action for a in prov.actions]
        assert actions == ["provisioned", "released"]
        assert idc.active_circuits == []

    def test_batch_activates_multiple(self):
        topo, idc, loop, prov = setup()
        for k in range(3):
            idc.create_reservation(
                ReservationRequest("NERSC", "ORNL", 0.5e9, 70.0 + k, 10_000.0),
                request_time=0.0,
            )
        prov.start()
        loop.run(until=130.0)
        provisioned = [a for a in prov.actions if a.action == "provisioned"]
        assert len(provisioned) == 3
        assert all(a.time == 120.0 for a in provisioned)

    def test_stop_disarms(self):
        topo, idc, loop, prov = setup()
        prov.start()
        prov.stop()
        loop.run(until=1_000.0)
        # only the already-scheduled first tick ran; no rearming
        assert loop.n_processed <= 1

    def test_double_start_rejected(self):
        topo, idc, loop, prov = setup()
        prov.start()
        with pytest.raises(RuntimeError):
            prov.start()

    def test_bad_window(self):
        topo, idc, loop, _ = setup()
        with pytest.raises(ValueError):
            AutoProvisioner(idc, loop, batch_window_s=0.0)


class TestRetryBudget:
    """The daemon must not hammer a broken ingress router forever."""

    def _always_faulting(self, max_retries):
        from repro.faults.injector import FaultInjector
        from repro.faults.recovery import BackoffPolicy, RecoveryStats
        from repro.faults.spec import FaultKind, FaultSpec

        topo = esnet_like()
        idc = OscarsIDC(topo, setup_delay=HardwareSignalling(0.0))
        loop = EventLoop(0.0)
        injector = FaultInjector(
            [FaultSpec(FaultKind.VC_SETUP_FAILURE, probability=1.0)], seed=3
        )
        stats = RecoveryStats()
        prov = AutoProvisioner(
            idc,
            loop,
            batch_window_s=60.0,
            fault_injector=injector,
            backoff=BackoffPolicy(
                base_s=1.0, multiplier=1.0, max_backoff_s=1.0,
                max_retries=max_retries, jitter=0.0,
            ),
            stats=stats,
        )
        return idc, loop, prov, stats

    def test_gives_up_after_retry_budget(self):
        idc, loop, prov, stats = self._always_faulting(max_retries=2)
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 10.0, 100_000.0),
            request_time=0.0,
        )
        prov.start()
        loop.run(until=600.0)
        actions = [a.action for a in prov.actions]
        # max_retries=2 allows 3 attempts (ticks 60/120/180); tick 240 abandons
        assert actions == ["setup-failed"] * 3 + ["gave-up"]
        assert vc.state is CircuitState.RELEASED
        assert stats.n_gave_up == 1
        assert stats.n_torn_down == 1  # gave-up implies torn-down
        assert stats.n_retries == 3
        # once abandoned the daemon leaves the circuit alone for good
        assert prov.activation_delay(vc.circuit_id) is None

    def test_tears_down_window_closed_before_signalling(self):
        """A reservation whose window expires while RESERVED is torn down,
        never provisioned into the past."""
        idc, loop, prov, stats = self._always_faulting(max_retries=50)
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 10.0, 100.0),
            request_time=0.0,
        )
        prov.start()
        loop.run(until=300.0)
        actions = [a.action for a in prov.actions]
        # one failed attempt at t=60; window (ends 110) closed by t=120
        assert actions == ["setup-failed", "torn-down"]
        assert vc.state is CircuitState.RELEASED
        assert stats.n_torn_down == 1
        assert stats.n_gave_up == 0

    def test_never_attempted_expired_reservation_torn_down(self):
        """No faults at all: a reservation that expires before the first
        tick is released, not provisioned after its window closed."""
        topo, idc, loop, prov = setup()
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 5.0, 30.0),
            request_time=0.0,
        )
        prov.start()
        loop.run(until=200.0)
        actions = [a.action for a in prov.actions]
        assert actions == ["torn-down"]
        assert vc.state is CircuitState.RELEASED
        assert idc.active_circuits == []
