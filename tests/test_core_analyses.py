"""Unit tests for the per-factor core analyses (throughput, stripes,
streams, time-of-day, alpha flows, VC suitability)."""

import numpy as np
import pytest

from repro.core.alpha_flows import (
    AlphaFlowCriteria,
    classify_alpha_flows,
    classify_lan_heidemann,
    link_fraction,
)
from repro.core.sessions import group_sessions
from repro.core.streams import (
    GB,
    MB,
    bandwidth_delay_product,
    convergence_size,
    scatter_series,
    stream_comparison,
)
from repro.core.stripes import (
    by_stripes,
    by_year,
    epoch_of_year,
    size_range_slice,
    top_fraction_size_threshold,
    variance_table,
)
from repro.core.throughput import (
    categorized_throughput,
    duration_summary,
    path_report,
    throughput_summary,
    transfer_throughput_bps,
)
from repro.core.timeofday import (
    hour_of_day,
    time_of_day_analysis,
    time_of_day_effect_ratio,
)
from repro.core.vc_suitability import (
    AMORTIZATION_FACTOR,
    min_suitable_session_size,
    suitability_table,
    vc_suitability,
)
from repro.gridftp.records import TransferLog


def simple_log(sizes, durations, starts=None, **cols):
    n = len(sizes)
    base = {
        "start": starts if starts is not None else np.arange(n) * 1000.0,
        "duration": durations,
        "size": sizes,
        "remote_host": [9] * n,
    }
    base.update(cols)
    return TransferLog(base)


class TestThroughput:
    def test_zero_duration_excluded(self):
        log = simple_log([1e6, 1e6], [0.0, 1.0])
        tputs = transfer_throughput_bps(log)
        assert tputs.shape == (1,)

    def test_summary_units(self):
        log = simple_log([1e9], [8.0])
        assert throughput_summary(log).median == pytest.approx(1e9)

    def test_duration_summary(self):
        log = simple_log([1e6, 1e6], [10.0, 30.0])
        assert duration_summary(log).mean == pytest.approx(20.0)

    def test_categorized(self):
        cats = {
            "fast": simple_log([1e9] * 4, [4.0] * 4),
            "slow": simple_log([1e9] * 4, [16.0] * 4),
        }
        out = categorized_throughput(cats)
        assert out[0].category == "fast"
        assert out[0].summary.median > out[1].summary.median
        assert out[0].box.n == 4

    def test_path_report(self):
        log = simple_log([32e9] * 3, [100.0, 200.0, 80.0])
        rep = path_report(log)
        assert rep.n_transfers == 3
        assert rep.max_throughput_gbps == pytest.approx(32 * 8 / 80, rel=1e-6)
        assert rep.exceeds_rate_count(2.5e9, log) == 2


class TestStripes:
    def test_size_range_slice(self):
        log = simple_log([3e9, 4.5e9, 16.5e9], [1, 1, 1])
        assert len(size_range_slice(log, 4e9, 5e9)) == 1
        assert len(size_range_slice(log, 16e9, 17e9)) == 1

    def test_bad_range(self):
        with pytest.raises(ValueError):
            size_range_slice(simple_log([1], [1]), 5, 5)

    def test_by_year_grouping(self):
        starts = [epoch_of_year(2009) + 100, epoch_of_year(2010) + 100,
                  epoch_of_year(2010) + 200]
        log = simple_log([1e9] * 3, [1.0] * 3, starts=starts)
        groups = by_year(log)
        assert [g.key for g in groups] == [2009, 2010]
        assert groups[1].n_transfers == 2

    def test_by_stripes_median_ordering(self):
        # stripes 1 at 1 Gbps, stripes 3 at 3 Gbps
        log = simple_log(
            [1e9] * 6,
            [8.0, 8.0, 8.0, 8.0 / 3, 8.0 / 3, 8.0 / 3],
            stripes=[1, 1, 1, 3, 3, 3],
        )
        groups = by_stripes(log)
        assert [g.key for g in groups] == [1, 3]
        assert groups[1].throughput.median > groups[0].throughput.median

    def test_variance_table(self):
        table = variance_table({"16G": simple_log([16e9] * 3, [10, 20, 30])})
        assert "16G" in table
        assert table["16G"].n == 3

    def test_top_fraction_threshold(self):
        log = simple_log(list(np.arange(1, 101, dtype=float)), [1.0] * 100)
        thr = top_fraction_size_threshold(log, 0.05)
        assert 94 <= thr <= 96

    def test_top_fraction_validation(self):
        with pytest.raises(ValueError):
            top_fraction_size_threshold(simple_log([1], [1]), 1.5)

    def test_empty_groups(self):
        assert by_year(TransferLog()) == []
        assert by_stripes(TransferLog()) == []


class TestStreams:
    def make_stream_log(self):
        rng = np.random.default_rng(0)
        n = 4000
        sizes = rng.uniform(1e6, 900e6, n)
        streams = np.where(rng.random(n) < 0.5, 1, 8)
        # synthetic: 8-stream transfers twice as fast below 200 MB
        base = 200e6
        tput = np.where((streams == 8) & (sizes < 200e6), 2 * base, base)
        durations = sizes * 8 / tput
        return TransferLog(
            {"start": np.arange(n, dtype=float), "duration": durations,
             "size": sizes, "streams": streams}
        )

    def test_comparison_medians(self):
        log = self.make_stream_log()
        cmp = stream_comparison(log, 50 * MB, 0, 1 * GB)
        left, m1, m8 = cmp.common_bins()
        small = left < 150e6
        assert np.all(m8[small] > 1.5 * m1[small])
        big = left > 400e6
        assert np.allclose(m8[big], m1[big], rtol=0.01)

    def test_convergence_size_found(self):
        log = self.make_stream_log()
        cmp = stream_comparison(log, 50 * MB, 0, 1 * GB)
        conv = convergence_size(cmp, tolerance=0.05, min_count=10)
        assert conv is not None
        assert 150e6 <= conv <= 300e6

    def test_counts_figure(self):
        log = self.make_stream_log()
        cmp = stream_comparison(log, 100 * MB, 0, 1 * GB)
        assert cmp.one_stream.count.sum() + cmp.multi_stream.count.sum() <= len(log)
        assert cmp.multi_stream_count > 0

    def test_scatter_series(self):
        log = simple_log([1e6, 2e6], [1.0, 2.0])
        x, y = scatter_series(log)
        assert x.shape == y.shape == (2,)
        assert y[0] == pytest.approx(8e6)

    def test_bdp(self):
        assert bandwidth_delay_product(10e9, 0.08) == pytest.approx(1e8)
        with pytest.raises(ValueError):
            bandwidth_delay_product(0, 0.08)


class TestTimeOfDay:
    def test_hour_of_day(self):
        hours = hour_of_day(np.array([0.0, 3600.0 * 26]))
        assert hours[0] == 0.0
        assert hours[1] == pytest.approx(2.0)

    def test_utc_offset(self):
        assert hour_of_day(np.array([0.0]), utc_offset_hours=-7)[0] == 17.0

    def test_grouping(self):
        starts = [2 * 3600.0, 2 * 3600 + 60, 8 * 3600.0]
        log = simple_log([1e9] * 3, [10.0] * 3, starts=starts)
        groups = time_of_day_analysis(log)
        assert [g.hour for g in groups] == [2, 8]
        assert groups[0].n_transfers == 2

    def test_effect_ratio_small_when_hours_similar(self):
        rng = np.random.default_rng(1)
        starts = np.concatenate([
            2 * 3600 + rng.uniform(0, 600, 40),
            8 * 3600 + rng.uniform(0, 600, 40),
        ])
        durations = rng.uniform(90, 110, 80)
        log = simple_log([32e9] * 80, durations, starts=starts)
        ratio = time_of_day_effect_ratio(time_of_day_analysis(log))
        assert ratio < 1.0

    def test_effect_ratio_single_group_nan(self):
        log = simple_log([1e9], [1.0], starts=[2 * 3600.0])
        assert np.isnan(time_of_day_effect_ratio(time_of_day_analysis(log)))


class TestAlphaFlows:
    def test_classification(self):
        log = simple_log([10e9, 10e9, 1e5], [40.0, 400.0, 1.0])
        mask = classify_alpha_flows(log)  # 2 Gbps, 0.2 Gbps, tiny
        assert mask.tolist() == [True, False, False]

    def test_custom_criteria(self):
        log = simple_log([10e9], [400.0])
        crit = AlphaFlowCriteria(min_rate_bps=0.1e9)
        assert classify_alpha_flows(log, crit).all()

    def test_lan_heidemann_counts(self):
        rng = np.random.default_rng(2)
        log = simple_log(rng.lognormal(15, 2, 500), rng.uniform(1, 100, 500))
        summary = classify_lan_heidemann(log)
        assert summary.n_flows == 500
        assert summary.n_elephant == 50
        assert summary.n_alpha <= min(summary.n_elephant, summary.n_cheetah)
        assert 0 <= summary.fraction(summary.n_alpha) <= 1

    def test_empty_log(self):
        summary = classify_lan_heidemann(TransferLog())
        assert summary.n_flows == 0

    def test_link_fraction(self):
        log = simple_log([32e9], [100.0])
        assert link_fraction(log, 10e9)[0] == pytest.approx(0.256)
        with pytest.raises(ValueError):
            link_fraction(log, 0)


class TestVcSuitability:
    def make_sessions(self):
        # two sessions: one tiny (1 MB), one huge (100 GB)
        rows = [(0.0, 1.0, 1e6), (10_000.0, 100.0, 50e9), (10_150.0, 100.0, 50e9)]
        log = TransferLog(
            {
                "start": [r[0] for r in rows],
                "duration": [r[1] for r in rows],
                "size": [r[2] for r in rows],
                "remote_host": [3] * 3,
            }
        )
        return group_sessions(log, 60.0), log

    def test_suitability_split(self):
        sessions, _ = self.make_sessions()
        result = vc_suitability(sessions, 60.0, reference_throughput_bps=1e9)
        # hypothetical durations: 0.008 s and 800 s; threshold 600 s
        assert result.n_suitable_sessions == 1
        assert result.n_suitable_transfers == 2
        assert result.percent_sessions == pytest.approx(50.0)
        assert result.percent_transfers == pytest.approx(100 * 2 / 3)

    def test_zero_setup_accepts_all(self):
        sessions, _ = self.make_sessions()
        result = vc_suitability(sessions, 0.0, reference_throughput_bps=1e9)
        assert result.n_suitable_sessions == len(sessions)

    def test_default_reference_is_q3(self):
        sessions, log = self.make_sessions()
        result = vc_suitability(sessions, 60.0)
        tput = log.throughput_bps
        assert result.reference_throughput_bps == pytest.approx(
            np.percentile(tput[tput > 0], 75)
        )

    def test_min_suitable_size(self):
        size = min_suitable_session_size(60.0, 682.2e6)
        assert size == pytest.approx(AMORTIZATION_FACTOR * 60 * 682.2e6 / 8)
        # the paper's 42 MB example at 50 ms
        assert min_suitable_session_size(0.05, 682.2e6) == pytest.approx(
            42.6e6, rel=0.01
        )

    def test_grid_shape(self):
        _, log = self.make_sessions()
        grid = suitability_table(log, g_values=[0.0, 60.0], setup_delays=[60.0])
        assert set(grid) == {(0.0, 60.0), (60.0, 60.0)}

    def test_invalid_inputs(self):
        sessions, _ = self.make_sessions()
        with pytest.raises(ValueError):
            vc_suitability(sessions, -1.0, reference_throughput_bps=1e9)
        with pytest.raises(ValueError):
            vc_suitability(sessions, 60.0, reference_throughput_bps=0.0)


class TestInterarrival:
    def _times(self, kind, n=400, seed=0):
        rng = np.random.default_rng(seed)
        if kind == "poisson":
            return np.cumsum(rng.exponential(10.0, n))
        if kind == "regular":
            return np.arange(n) * 10.0
        # bursty: batches of 20 back-to-back, long gaps between
        batches = np.cumsum(rng.exponential(1000.0, n // 20))
        offsets = np.arange(20) * 0.01
        return (batches[:, None] + offsets[None, :]).ravel()

    def test_poisson_cv_near_one(self):
        from repro.core.interarrival import interarrival_cv

        assert interarrival_cv(self._times("poisson")) == pytest.approx(1.0, abs=0.15)

    def test_regular_burstiness_negative(self):
        from repro.core.interarrival import burstiness_index

        assert burstiness_index(self._times("regular")) == pytest.approx(-1.0)

    def test_bursty_burstiness_high(self):
        from repro.core.interarrival import burstiness_index

        assert burstiness_index(self._times("bursty")) > 0.5

    def test_short_input_nan(self):
        from repro.core.interarrival import interarrival_cv

        assert np.isnan(interarrival_cv(np.array([1.0, 2.0])))

    def test_peak_hour(self):
        from repro.core.interarrival import peak_hour_concentration

        times = 2 * 3600.0 + np.arange(100) * 10.0  # all inside hour 2
        assert peak_hour_concentration(times) == 1.0

    def test_arrival_report_on_workload(self):
        from repro.core.interarrival import arrival_report
        from repro.workload.synth import ncar_nics

        report = arrival_report(ncar_nics(seed=4, n_transfers=5000))
        assert report.n_sessions < report.n_transfers
        # the session/batch structure: transfers burstier than sessions
        assert report.batching_visible
        assert report.transfer_burstiness > 0.3

    def test_too_few_rejected(self):
        from repro.core.interarrival import arrival_report
        from repro.gridftp.records import TransferLog

        with pytest.raises(ValueError):
            arrival_report(TransferLog({"start": [1.0], "duration": [1.0],
                                        "size": [1.0], "remote_host": [1]}))
