"""Unit tests for the topology and routing modules."""

import pytest

from repro.net.routing import (
    ip_route,
    k_shortest_paths,
    least_congested_path,
    validate_explicit_route,
)
from repro.net.topology import SITES, Topology, esnet_like


class TestTopologyConstruction:
    def test_add_site_assigns_sequential_ids(self):
        t = Topology()
        assert t.add_site("A") == 0
        assert t.add_site("B") == 1
        assert t.host_id("B") == 1
        assert t.site_of(0) == "A"

    def test_duplicate_site_rejected(self):
        t = Topology()
        t.add_site("A")
        with pytest.raises(ValueError):
            t.add_site("A")

    def test_duplicate_router_rejected(self):
        t = Topology()
        t.add_router("r")
        with pytest.raises(ValueError):
            t.add_router("r")

    def test_link_to_unknown_node(self):
        t = Topology()
        t.add_site("A")
        with pytest.raises(KeyError):
            t.add_link("A", "B")

    def test_bad_capacity(self):
        t = Topology()
        t.add_site("A")
        t.add_site("B")
        with pytest.raises(ValueError):
            t.add_link("A", "B", capacity_bps=0)

    def test_unknown_host_id(self):
        with pytest.raises(KeyError):
            Topology().site_of(3)


class TestEsnetLike:
    def test_all_sites_present(self):
        t = esnet_like()
        assert set(SITES) <= set(t.sites)

    def test_site_ids_match_order(self):
        t = esnet_like()
        for i, s in enumerate(SITES):
            assert t.host_id(s) == i

    def test_slac_bnl_rtt_regime(self):
        """SLAC--BNL should be a long path, near the paper's 80 ms."""
        t = esnet_like()
        rtt = t.rtt_between("SLAC", "BNL")
        assert 0.05 < rtt < 0.10

    def test_ncar_nics_shorter_than_slac_bnl(self):
        t = esnet_like()
        assert t.rtt_between("NCAR", "NICS") < t.rtt_between("SLAC", "BNL")

    def test_all_links_10g(self):
        t = esnet_like()
        assert all(link.capacity_bps == 10e9 for link in t.links())

    def test_path_endpoints(self):
        t = esnet_like()
        p = t.path("NERSC", "ORNL")
        assert p[0] == "NERSC" and p[-1] == "ORNL"

    def test_path_links_canonical(self):
        t = esnet_like()
        for u, v in t.path_links(t.path("NERSC", "ORNL")):
            assert u <= v

    def test_bottleneck(self):
        t = esnet_like()
        assert t.path_bottleneck_bps(t.path("SLAC", "BNL")) == 10e9

    def test_link_key_property(self):
        t = esnet_like()
        link = t.links()[0]
        assert link.key == tuple(sorted((link.u, link.v)))


class TestRouting:
    def test_ip_route_is_min_delay(self):
        t = esnet_like()
        route = ip_route(t, "NERSC", "ORNL")
        for alt in k_shortest_paths(t, "NERSC", "ORNL", k=3):
            assert t.path_rtt_s(route) <= t.path_rtt_s(alt) + 1e-12

    def test_k_shortest_ordered(self):
        t = esnet_like()
        paths = k_shortest_paths(t, "NERSC", "BNL", k=3)
        rtts = [t.path_rtt_s(p) for p in paths]
        assert rtts == sorted(rtts)
        assert len(paths) == 3

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            k_shortest_paths(esnet_like(), "NERSC", "BNL", k=0)

    def test_validate_explicit_route_ok(self):
        t = esnet_like()
        p = t.path("NERSC", "ORNL")
        assert validate_explicit_route(t, p) == p

    def test_validate_rejects_gap(self):
        t = esnet_like()
        with pytest.raises(ValueError):
            validate_explicit_route(t, ["NERSC", "ORNL"])

    def test_validate_rejects_loop(self):
        t = esnet_like()
        p = t.path("NERSC", "ORNL")
        with pytest.raises(ValueError):
            validate_explicit_route(t, p + [p[-2], p[-1]])

    def test_validate_rejects_short(self):
        with pytest.raises(ValueError):
            validate_explicit_route(esnet_like(), ["NERSC"])

    def test_least_congested_avoids_reserved_path(self):
        t = esnet_like()
        default = ip_route(t, "NERSC", "ORNL")
        # saturate the default path's backbone links (access links are
        # shared by every alternative, so committing them proves nothing)
        committed = {
            key: 9.9e9
            for key in t.path_links(default)
            if key[0].startswith("rt-") and key[1].startswith("rt-")
        }
        chosen = least_congested_path(t, "NERSC", "ORNL", committed)
        assert chosen != default

    def test_least_congested_defaults_to_ip_route(self):
        t = esnet_like()
        assert least_congested_path(t, "NERSC", "ORNL", {}) == ip_route(
            t, "NERSC", "ORNL"
        )
