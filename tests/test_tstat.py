"""Unit tests for the tstat-style loss reporting."""

import numpy as np
import pytest

from repro.net.tcp import TcpPathModel
from repro.net.tstat import loss_hypothesis_test, observe_transfer
from repro.workload.synth import slac_bnl


def path(loss=0.0):
    return TcpPathModel(rtt_s=0.07, bottleneck_bps=10e9, loss_rate=loss)


class TestObserveTransfer:
    def test_lossless_path_no_retransmits(self):
        stats = observe_transfer(1e9, 10.0, 8, path(0.0))
        assert stats.retransmits == 0
        assert stats.loss_estimate == 0.0

    def test_lossy_path_counts_retransmits(self):
        stats = observe_transfer(
            1e9, 10.0, 8, path(1e-3), rng=np.random.default_rng(0)
        )
        segments = int(np.ceil(1e9 / 1460))
        assert stats.retransmits > 0
        assert stats.loss_estimate == pytest.approx(1e-3, rel=0.3)
        assert stats.segments_out == segments + stats.retransmits

    def test_consistency_flag(self):
        # a transfer at the loss-free envelope is consistent...
        p = path(0.0)
        envelope = p.transfer_throughput_bps(1e9, 8)
        d = 1e9 * 8 / envelope
        assert observe_transfer(1e9, d, 8, p).loss_free_consistent
        # ...one claiming 3x the envelope is not
        assert not observe_transfer(1e9, d / 3, 8, p).loss_free_consistent

    def test_validation(self):
        with pytest.raises(ValueError):
            observe_transfer(0.0, 1.0, 1, path())
        with pytest.raises(ValueError):
            observe_transfer(1.0, 1.0, 0, path())


class TestLossHypothesis:
    def test_rare_loss_conclusion_on_slac_like_log(self):
        log = slac_bnl(seed=5, n_transfers=3000)
        result = loss_hypothesis_test(log, path(0.0))
        assert result.total_retransmits == 0
        assert result.losses_are_rare
        assert result.n_transfers > 0

    def test_lossy_path_detected(self):
        log = slac_bnl(seed=5, n_transfers=2000)
        result = loss_hypothesis_test(
            log, path(5e-3), rng=np.random.default_rng(2)
        )
        assert result.mean_loss_estimate == pytest.approx(5e-3, rel=0.3)
        # at 5e-3 loss the Mathis ceiling is ~2.4 Mbps/conn * 8 = ~19 Mbps:
        # most observed transfers exceed it, correctly flagging that the
        # *observations* contradict sustained loss at that level
        assert result.fraction_above_ceiling > 0.5

    def test_empty_log_rejected(self):
        from repro.gridftp.records import TransferLog

        with pytest.raises(ValueError):
            loss_hypothesis_test(TransferLog(), path())
