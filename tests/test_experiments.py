"""Tests for the declarative experiment framework.

Covers the spec layer (loading, validation, grid expansion, seeding),
the content-addressed artifact cache, the Runner's serial and parallel
executors with quarantine semantics, and the ``repro-gridftp run`` CLI.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.rng import derive_seed
from repro.experiments import (
    CampaignResult,
    ExperimentSpec,
    ResultCache,
    Runner,
    canonical_json,
    cell_key,
    get_scenario,
    register_scenario,
    scenario_names,
)

# -- cheap scenarios registered for these tests ------------------------------
# (the registry is process-global; fork-started workers inherit them)


@register_scenario("t-echo")
def _t_echo(params, seed):
    return {"x": params["x"], "y": params.get("y", 0), "seed": seed}


@register_scenario("t-boom")
def _t_boom(params, seed):
    if params["x"] == 2:
        raise ValueError("x=2 is cursed")
    return {"x": params["x"]}


@register_scenario("t-sleep")
def _t_sleep(params, seed):
    time.sleep(float(params["sleep_s"]))
    return {"slept": params["sleep_s"]}


# -- spec loading and validation ---------------------------------------------


class TestSpecLoading:
    def test_from_toml_file(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "grid"\n'
            'scenario = "t-echo"\n'
            "seed = 7\n"
            'seed_mode = "shared"\n'
            "[params]\n"
            "y = 5\n"
            "[axes]\n"
            "x = [1, 2, 3]\n"
        )
        spec = ExperimentSpec.from_file(path)
        assert spec.name == "grid"
        assert spec.scenario == "t-echo"
        assert spec.seed == 7
        assert spec.seed_mode == "shared"
        assert spec.params == {"y": 5}
        assert spec.axes == {"x": (1, 2, 3)}

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "grid",
                    "scenario": "t-echo",
                    "axes": {"x": [1, 2]},
                }
            )
        )
        spec = ExperimentSpec.from_file(path)
        assert spec.n_cells == 2
        assert spec.seed == 0
        assert spec.seed_mode == "per-cell"

    def test_to_dict_round_trip(self):
        spec = ExperimentSpec(
            name="rt",
            scenario="t-echo",
            params={"y": 1},
            axes={"x": (1, 2)},
            seed=3,
            seed_mode="shared",
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown spec keys"):
            ExperimentSpec.from_dict(
                {"name": "a", "scenario": "t-echo", "bogus": 1}
            )

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"name": "", "scenario": "s"}, "needs a name"),
            ({"name": "a", "scenario": ""}, "needs a scenario"),
            (
                {"name": "a", "scenario": "s", "seed_mode": "wat"},
                "seed_mode",
            ),
            (
                {"name": "a", "scenario": "s", "axes": {"x": []}},
                "empty",
            ),
            (
                {"name": "a", "scenario": "s", "axes": {"x": "abc"}},
                "list of values",
            ),
            (
                {
                    "name": "a",
                    "scenario": "s",
                    "params": {"x": 1},
                    "axes": {"x": [1, 2]},
                },
                "shadow",
            ),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ExperimentSpec(**kwargs)


class TestSpecExpansion:
    def test_product_order_first_axis_outermost(self):
        spec = ExperimentSpec(
            name="g",
            scenario="t-echo",
            axes={"a": (1, 2), "b": (10, 20, 30)},
        )
        assert spec.n_cells == 6
        cells = spec.cells()
        assert [c.coords for c in cells] == [
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 1, "b": 30},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
            {"a": 2, "b": 30},
        ]
        assert [c.index for c in cells] == list(range(6))

    def test_params_overlaid_with_coords(self):
        spec = ExperimentSpec(
            name="g", scenario="t-echo", params={"y": 9}, axes={"x": (1, 2)}
        )
        for cell in spec.cells():
            assert cell.params == {"y": 9, "x": cell.coords["x"]}

    def test_no_axes_single_cell(self):
        spec = ExperimentSpec(name="g", scenario="t-echo", params={"x": 1})
        cells = spec.cells()
        assert len(cells) == 1
        assert cells[0].coords == {}
        assert cells[0].params == {"x": 1}

    def test_per_cell_seeds_distinct_and_deterministic(self):
        spec = ExperimentSpec(
            name="g", scenario="t-echo", axes={"x": (1, 2, 3)}, seed=42
        )
        seeds = [c.seed for c in spec.cells()]
        assert len(set(seeds)) == 3
        assert seeds == [derive_seed(42, i) for i in range(3)]
        # stable across expansions
        assert seeds == [c.seed for c in spec.cells()]

    def test_shared_seed_mode(self):
        spec = ExperimentSpec(
            name="g",
            scenario="t-echo",
            axes={"x": (1, 2, 3)},
            seed=42,
            seed_mode="shared",
        )
        assert [c.seed for c in spec.cells()] == [42, 42, 42]


# -- the artifact cache ------------------------------------------------------


class TestResultCache:
    def test_key_independent_of_param_order(self):
        a = cell_key("s", {"x": 1, "y": 2}, 7)
        b = cell_key("s", {"y": 2, "x": 1}, 7)
        assert a == b
        assert cell_key("s", {"x": 1, "y": 3}, 7) != a
        assert cell_key("s", {"x": 1, "y": 2}, 8) != a
        assert cell_key("other", {"x": 1, "y": 2}, 7) != a

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cell_key("s", {"x": 1}, 0)
        assert cache.get(key) is None
        cache.put(key, "s", {"x": 1}, 0, {"metric": 3.5}, wall_s=0.25)
        payload = cache.get(key)
        assert payload["result"] == {"metric": 3.5}
        assert payload["wall_s"] == 0.25
        assert payload["scenario"] == "s"
        assert len(cache) == 1

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cell_key("s", {"x": 1}, 0)
        cache.put(key, "s", {"x": 1}, 0, {"m": 1}, wall_s=0.1)
        cache.path_for(key).write_text("{ not json")
        assert cache.get(key) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cell_key("s", {"x": 1}, 0)
        cache.put(key, "s", {"x": 1}, 0, {"m": 1}, wall_s=0.1)
        payload = json.loads(cache.path_for(key).read_text())
        payload["v"] = 999
        cache.path_for(key).write_text(json.dumps(payload))
        assert cache.get(key) is None


# -- the Runner --------------------------------------------------------------


def _echo_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="echo",
        scenario="t-echo",
        params={"y": 1},
        axes={"x": (1, 2, 3, 4)},
        seed=5,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestRunnerSerial:
    def test_results_in_grid_order(self):
        campaign = Runner().run(_echo_spec())
        assert isinstance(campaign, CampaignResult)
        assert campaign.n_cells == 4
        assert campaign.n_executed == 4
        assert campaign.n_cached == 0
        assert campaign.n_failed == 0
        assert [r["x"] for r in campaign.results()] == [1, 2, 3, 4]
        seeds = {r["seed"] for r in campaign.results()}
        assert seeds == {derive_seed(5, i) for i in range(4)}
        assert all(c.wall_s >= 0 for c in campaign.cells)

    def test_unknown_scenario_fails_fast(self):
        spec = ExperimentSpec(name="x", scenario="no-such-scenario")
        with pytest.raises(KeyError, match="no-such-scenario"):
            Runner().run(spec)

    def test_warm_cache_executes_zero_cells(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = _echo_spec()
        first = Runner(cache=cache).run(spec)
        assert first.n_executed == 4
        second = Runner(cache=cache).run(spec)
        assert second.n_executed == 0
        assert second.n_cached == 4
        assert second.results() == first.results()

    def test_cache_invalidated_by_changed_inputs(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        Runner(cache=cache).run(_echo_spec())
        # new seed -> all four cells recompute
        campaign = Runner(cache=cache).run(_echo_spec(seed=6))
        assert campaign.n_executed == 4
        # growing an axis keeps the old cells' artifacts valid: indices
        # 0..3 have unchanged (params, seed) pairs, only cell 4 is new
        campaign = Runner(cache=cache).run(_echo_spec(axes={"x": (1, 2, 3, 4, 5)}))
        assert campaign.n_cached == 4
        assert campaign.n_executed == 1

    def test_force_recomputes_but_still_stores(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = _echo_spec()
        Runner(cache=cache).run(spec)
        forced = Runner(cache=cache).run(spec, force=True)
        assert forced.n_executed == 4
        assert forced.n_cached == 0
        again = Runner(cache=cache).run(spec)
        assert again.n_cached == 4

    def test_quarantine_keeps_campaign_alive(self):
        spec = ExperimentSpec(
            name="boom", scenario="t-boom", axes={"x": (1, 2, 3)}
        )
        campaign = Runner().run(spec)
        assert campaign.n_failed == 1
        assert campaign.n_executed == 2
        bad = campaign.cells[1]
        assert not bad.ok
        assert "ValueError" in bad.error and "cursed" in bad.error
        assert campaign.cells[0].ok and campaign.cells[2].ok
        with pytest.raises(RuntimeError, match="quarantined"):
            campaign.results()

    def test_failed_cells_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = ExperimentSpec(
            name="boom", scenario="t-boom", axes={"x": (1, 2, 3)}
        )
        Runner(cache=cache).run(spec)
        assert len(cache) == 2
        second = Runner(cache=cache).run(spec)
        assert second.n_cached == 2
        assert second.n_failed == 1  # retried, failed again

    def test_format_summary_line(self):
        campaign = Runner().run(_echo_spec())
        text = campaign.format()
        assert "cells: 4 total, 4 executed, 0 cached, 0 failed" in text
        assert "campaign 'echo'" in text
        assert "x=3" in text


class TestRunnerParallel:
    def test_parallel_matches_serial(self):
        spec = _echo_spec()
        serial = Runner(jobs=1).run(spec)
        parallel = Runner(jobs=2, chunk_size=1).run(spec)
        assert parallel.results() == serial.results()
        assert parallel.n_executed == 4

    def test_parallel_fills_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = _echo_spec()
        Runner(jobs=2, cache=cache).run(spec)
        warm = Runner(jobs=2, cache=cache).run(spec)
        assert warm.n_executed == 0
        assert warm.n_cached == 4

    def test_parallel_quarantines_exceptions(self):
        spec = ExperimentSpec(
            name="boom", scenario="t-boom", axes={"x": (1, 2, 3)}
        )
        campaign = Runner(jobs=2).run(spec)
        assert campaign.n_failed == 1
        assert "cursed" in campaign.cells[1].error
        assert campaign.cells[0].result == {"x": 1}

    def test_cell_timeout_quarantines(self):
        spec = ExperimentSpec(
            name="slow",
            scenario="t-sleep",
            axes={"sleep_s": (0.0, 1.5)},
        )
        campaign = Runner(jobs=2, cell_timeout_s=0.3).run(spec)
        assert campaign.cells[0].ok
        slow = campaign.cells[1]
        assert not slow.ok
        assert "TimeoutError" in slow.error
        assert "0.3 s budget" in slow.error

    def test_bad_runner_args(self):
        with pytest.raises(ValueError):
            Runner(jobs=0)
        with pytest.raises(ValueError):
            Runner(chunk_size=0)


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        names = scenario_names()
        for expected in (
            "chaos",
            "profile",
            "mechanistic",
            "snmp",
            "managed_service",
            "synth",
        ):
            assert expected in names

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_scenario("t-echo")
            def other(params, seed):  # pragma: no cover
                return {}

    def test_reregistering_same_fn_is_idempotent(self):
        assert register_scenario("t-echo")(_t_echo) is _t_echo
        assert get_scenario("t-echo") is _t_echo


# -- the CLI `run` subcommand ------------------------------------------------


class TestCliRun:
    def _write_spec(self, tmp_path):
        path = tmp_path / "campaign.toml"
        path.write_text(
            'name = "cli-grid"\n'
            'scenario = "t-echo"\n'
            "seed = 3\n"
            "[axes]\n"
            "x = [1, 2]\n"
            "y = [10, 20]\n"
        )
        return path

    def test_run_then_warm_rerun(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        cache_dir = tmp_path / "cache"
        rc = main(["run", str(spec), "--cache-dir", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells: 4 total, 4 executed, 0 cached, 0 failed" in out

        rc = main(["run", str(spec), "--cache-dir", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells: 4 total, 0 executed, 4 cached, 0 failed" in out

    def test_no_cache_flag(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        for _ in range(2):
            rc = main(["run", str(spec), "--no-cache"])
            assert rc == 0
            out = capsys.readouterr().out
            assert "4 executed, 0 cached" in out
        assert not (tmp_path / ".repro-cache").exists()

    def test_failed_cell_sets_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "boom.toml"
        path.write_text(
            'name = "boom"\nscenario = "t-boom"\n[axes]\nx = [1, 2]\n'
        )
        rc = main(["run", str(path), "--no-cache"])
        assert rc == 1
        assert "1 failed" in capsys.readouterr().out
