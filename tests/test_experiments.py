"""Tests for the declarative experiment framework.

Covers the spec layer (loading, validation, grid expansion, seeding),
the content-addressed artifact cache, the Runner's serial and parallel
executors with quarantine semantics, and the ``repro-gridftp run`` CLI.
"""

from __future__ import annotations

import json
import math
import os
import time

import pytest

from repro.core.rng import derive_seed
from repro.experiments import (
    CampaignResult,
    ExperimentSpec,
    ResultCache,
    Runner,
    canonical_json,
    cell_key,
    get_scenario,
    register_scenario,
    scenario_names,
)

# -- cheap scenarios registered for these tests ------------------------------
# (the registry is process-global; fork-started workers inherit them)


@register_scenario("t-echo")
def _t_echo(params, seed):
    return {"x": params["x"], "y": params.get("y", 0), "seed": seed}


@register_scenario("t-boom")
def _t_boom(params, seed):
    if params["x"] == 2:
        raise ValueError("x=2 is cursed")
    return {"x": params["x"]}


@register_scenario("t-sleep")
def _t_sleep(params, seed):
    time.sleep(float(params["sleep_s"]))
    return {"slept": params["sleep_s"]}


# -- spec loading and validation ---------------------------------------------


class TestSpecLoading:
    def test_from_toml_file(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "grid"\n'
            'scenario = "t-echo"\n'
            "seed = 7\n"
            'seed_mode = "shared"\n'
            "[params]\n"
            "y = 5\n"
            "[axes]\n"
            "x = [1, 2, 3]\n"
        )
        spec = ExperimentSpec.from_file(path)
        assert spec.name == "grid"
        assert spec.scenario == "t-echo"
        assert spec.seed == 7
        assert spec.seed_mode == "shared"
        assert spec.params == {"y": 5}
        assert spec.axes == {"x": (1, 2, 3)}

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "grid",
                    "scenario": "t-echo",
                    "axes": {"x": [1, 2]},
                }
            )
        )
        spec = ExperimentSpec.from_file(path)
        assert spec.n_cells == 2
        assert spec.seed == 0
        assert spec.seed_mode == "per-cell"

    def test_to_dict_round_trip(self):
        spec = ExperimentSpec(
            name="rt",
            scenario="t-echo",
            params={"y": 1},
            axes={"x": (1, 2)},
            seed=3,
            seed_mode="shared",
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown spec keys"):
            ExperimentSpec.from_dict(
                {"name": "a", "scenario": "t-echo", "bogus": 1}
            )

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"name": "", "scenario": "s"}, "needs a name"),
            ({"name": "a", "scenario": ""}, "needs a scenario"),
            (
                {"name": "a", "scenario": "s", "seed_mode": "wat"},
                "seed_mode",
            ),
            (
                {"name": "a", "scenario": "s", "axes": {"x": []}},
                "empty",
            ),
            (
                {"name": "a", "scenario": "s", "axes": {"x": "abc"}},
                "list of values",
            ),
            (
                {
                    "name": "a",
                    "scenario": "s",
                    "params": {"x": 1},
                    "axes": {"x": [1, 2]},
                },
                "shadow",
            ),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ExperimentSpec(**kwargs)


class TestSpecExpansion:
    def test_product_order_first_axis_outermost(self):
        spec = ExperimentSpec(
            name="g",
            scenario="t-echo",
            axes={"a": (1, 2), "b": (10, 20, 30)},
        )
        assert spec.n_cells == 6
        cells = spec.cells()
        assert [c.coords for c in cells] == [
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 1, "b": 30},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
            {"a": 2, "b": 30},
        ]
        assert [c.index for c in cells] == list(range(6))

    def test_params_overlaid_with_coords(self):
        spec = ExperimentSpec(
            name="g", scenario="t-echo", params={"y": 9}, axes={"x": (1, 2)}
        )
        for cell in spec.cells():
            assert cell.params == {"y": 9, "x": cell.coords["x"]}

    def test_no_axes_single_cell(self):
        spec = ExperimentSpec(name="g", scenario="t-echo", params={"x": 1})
        cells = spec.cells()
        assert len(cells) == 1
        assert cells[0].coords == {}
        assert cells[0].params == {"x": 1}

    def test_per_cell_seeds_distinct_and_deterministic(self):
        spec = ExperimentSpec(
            name="g", scenario="t-echo", axes={"x": (1, 2, 3)}, seed=42
        )
        seeds = [c.seed for c in spec.cells()]
        assert len(set(seeds)) == 3
        assert seeds == [derive_seed(42, i) for i in range(3)]
        # stable across expansions
        assert seeds == [c.seed for c in spec.cells()]

    def test_shared_seed_mode(self):
        spec = ExperimentSpec(
            name="g",
            scenario="t-echo",
            axes={"x": (1, 2, 3)},
            seed=42,
            seed_mode="shared",
        )
        assert [c.seed for c in spec.cells()] == [42, 42, 42]


# -- the artifact cache ------------------------------------------------------


class TestResultCache:
    def test_key_independent_of_param_order(self):
        a = cell_key("s", {"x": 1, "y": 2}, 7)
        b = cell_key("s", {"y": 2, "x": 1}, 7)
        assert a == b
        assert cell_key("s", {"x": 1, "y": 3}, 7) != a
        assert cell_key("s", {"x": 1, "y": 2}, 8) != a
        assert cell_key("other", {"x": 1, "y": 2}, 7) != a

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cell_key("s", {"x": 1}, 0)
        assert cache.get(key) is None
        cache.put(key, "s", {"x": 1}, 0, {"metric": 3.5}, wall_s=0.25)
        payload = cache.get(key)
        assert payload["result"] == {"metric": 3.5}
        assert payload["wall_s"] == 0.25
        assert payload["scenario"] == "s"
        assert len(cache) == 1

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cell_key("s", {"x": 1}, 0)
        cache.put(key, "s", {"x": 1}, 0, {"m": 1}, wall_s=0.1)
        cache.path_for(key).write_text("{ not json")
        assert cache.get(key) is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cell_key("s", {"x": 1}, 0)
        cache.put(key, "s", {"x": 1}, 0, {"m": 1}, wall_s=0.1)
        payload = json.loads(cache.path_for(key).read_text())
        payload["v"] = 999
        cache.path_for(key).write_text(json.dumps(payload))
        assert cache.get(key) is None


# -- the Runner --------------------------------------------------------------


def _echo_spec(**overrides) -> ExperimentSpec:
    base = dict(
        name="echo",
        scenario="t-echo",
        params={"y": 1},
        axes={"x": (1, 2, 3, 4)},
        seed=5,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class TestRunnerSerial:
    def test_results_in_grid_order(self):
        campaign = Runner().run(_echo_spec())
        assert isinstance(campaign, CampaignResult)
        assert campaign.n_cells == 4
        assert campaign.n_executed == 4
        assert campaign.n_cached == 0
        assert campaign.n_failed == 0
        assert [r["x"] for r in campaign.results()] == [1, 2, 3, 4]
        seeds = {r["seed"] for r in campaign.results()}
        assert seeds == {derive_seed(5, i) for i in range(4)}
        assert all(c.wall_s >= 0 for c in campaign.cells)

    def test_unknown_scenario_fails_fast(self):
        spec = ExperimentSpec(name="x", scenario="no-such-scenario")
        with pytest.raises(KeyError, match="no-such-scenario"):
            Runner().run(spec)

    def test_warm_cache_executes_zero_cells(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = _echo_spec()
        first = Runner(cache=cache).run(spec)
        assert first.n_executed == 4
        second = Runner(cache=cache).run(spec)
        assert second.n_executed == 0
        assert second.n_cached == 4
        assert second.results() == first.results()

    def test_cache_invalidated_by_changed_inputs(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        Runner(cache=cache).run(_echo_spec())
        # new seed -> all four cells recompute
        campaign = Runner(cache=cache).run(_echo_spec(seed=6))
        assert campaign.n_executed == 4
        # growing an axis keeps the old cells' artifacts valid: indices
        # 0..3 have unchanged (params, seed) pairs, only cell 4 is new
        campaign = Runner(cache=cache).run(_echo_spec(axes={"x": (1, 2, 3, 4, 5)}))
        assert campaign.n_cached == 4
        assert campaign.n_executed == 1

    def test_force_recomputes_but_still_stores(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = _echo_spec()
        Runner(cache=cache).run(spec)
        forced = Runner(cache=cache).run(spec, force=True)
        assert forced.n_executed == 4
        assert forced.n_cached == 0
        again = Runner(cache=cache).run(spec)
        assert again.n_cached == 4

    def test_quarantine_keeps_campaign_alive(self):
        spec = ExperimentSpec(
            name="boom", scenario="t-boom", axes={"x": (1, 2, 3)}
        )
        campaign = Runner().run(spec)
        assert campaign.n_failed == 1
        assert campaign.n_executed == 2
        bad = campaign.cells[1]
        assert not bad.ok
        assert "ValueError" in bad.error and "cursed" in bad.error
        assert campaign.cells[0].ok and campaign.cells[2].ok
        with pytest.raises(RuntimeError, match="quarantined"):
            campaign.results()

    def test_failed_cells_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = ExperimentSpec(
            name="boom", scenario="t-boom", axes={"x": (1, 2, 3)}
        )
        Runner(cache=cache).run(spec)
        assert len(cache) == 2
        second = Runner(cache=cache).run(spec)
        assert second.n_cached == 2
        assert second.n_failed == 1  # retried, failed again

    def test_format_summary_line(self):
        campaign = Runner().run(_echo_spec())
        text = campaign.format()
        assert "cells: 4 total, 4 executed, 0 cached, 0 failed" in text
        assert "campaign 'echo'" in text
        assert "x=3" in text


class TestRunnerParallel:
    def test_parallel_matches_serial(self):
        spec = _echo_spec()
        serial = Runner(jobs=1).run(spec)
        parallel = Runner(jobs=2, chunk_size=1).run(spec)
        assert parallel.results() == serial.results()
        assert parallel.n_executed == 4

    def test_parallel_fills_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = _echo_spec()
        Runner(jobs=2, cache=cache).run(spec)
        warm = Runner(jobs=2, cache=cache).run(spec)
        assert warm.n_executed == 0
        assert warm.n_cached == 4

    def test_parallel_quarantines_exceptions(self):
        spec = ExperimentSpec(
            name="boom", scenario="t-boom", axes={"x": (1, 2, 3)}
        )
        campaign = Runner(jobs=2).run(spec)
        assert campaign.n_failed == 1
        assert "cursed" in campaign.cells[1].error
        assert campaign.cells[0].result == {"x": 1}

    def test_cell_timeout_quarantines(self):
        spec = ExperimentSpec(
            name="slow",
            scenario="t-sleep",
            axes={"sleep_s": (0.0, 1.5)},
        )
        campaign = Runner(jobs=2, cell_timeout_s=0.3).run(spec)
        assert campaign.cells[0].ok
        slow = campaign.cells[1]
        assert not slow.ok
        assert "TimeoutError" in slow.error
        assert "0.3 s budget" in slow.error

    def test_bad_runner_args(self):
        with pytest.raises(ValueError):
            Runner(jobs=0)
        with pytest.raises(ValueError):
            Runner(chunk_size=0)


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        names = scenario_names()
        for expected in (
            "chaos",
            "profile",
            "mechanistic",
            "snmp",
            "managed_service",
            "stream_analyze",
            "synth",
        ):
            assert expected in names

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_scenario("t-echo")
            def other(params, seed):  # pragma: no cover
                return {}

    def test_reregistering_same_fn_is_idempotent(self):
        assert register_scenario("t-echo")(_t_echo) is _t_echo
        assert get_scenario("t-echo") is _t_echo


# -- the CLI `run` subcommand ------------------------------------------------


class TestCliRun:
    def _write_spec(self, tmp_path):
        path = tmp_path / "campaign.toml"
        path.write_text(
            'name = "cli-grid"\n'
            'scenario = "t-echo"\n'
            "seed = 3\n"
            "[axes]\n"
            "x = [1, 2]\n"
            "y = [10, 20]\n"
        )
        return path

    def test_run_then_warm_rerun(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        cache_dir = tmp_path / "cache"
        rc = main(["run", str(spec), "--cache-dir", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells: 4 total, 4 executed, 0 cached, 0 failed" in out

        rc = main(["run", str(spec), "--cache-dir", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells: 4 total, 0 executed, 4 cached, 0 failed" in out

    def test_no_cache_flag(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        for _ in range(2):
            rc = main(["run", str(spec), "--no-cache"])
            assert rc == 0
            out = capsys.readouterr().out
            assert "4 executed, 0 cached" in out
        assert not (tmp_path / ".repro-cache").exists()

    def test_failed_cell_sets_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "boom.toml"
        path.write_text(
            'name = "boom"\nscenario = "t-boom"\n[axes]\nx = [1, 2]\n'
        )
        rc = main(["run", str(path), "--no-cache"])
        assert rc == 1
        assert "1 failed" in capsys.readouterr().out

    def test_failed_cells_get_one_line_summaries(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "boom.toml"
        path.write_text(
            'name = "boom"\nscenario = "t-boom"\nseed = 5\n'
            "[axes]\nx = [1, 2]\n"
        )
        rc = main(["run", str(path), "--no-cache"])
        assert rc == 1
        out = capsys.readouterr().out
        lines = out.splitlines()
        header = lines.index("1 quarantined cell(s):")
        line = lines[header + 1]
        # one line names the stage, scenario, coordinates, seed, and error
        assert "boom" in line and "t-boom" in line
        assert "x=2" in line and "seed=" in line and "cursed" in line

    def test_clean_run_prints_no_summary(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_spec(tmp_path)
        rc = main(["run", str(spec), "--no-cache"])
        assert rc == 0
        assert "quarantined" not in capsys.readouterr().out


# -- registered here so the NaN-producing scenario exists for the Runner ----


@register_scenario("t-nan")
def _t_nan(params, seed):
    return {"x": params["x"], "bad": float("nan")}


# -- strict JSON: non-finite floats are rejected, not emitted ---------------


class TestNonFiniteRejection:
    def test_canonical_json_rejects_nan_and_inf(self):
        for value in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                canonical_json({"v": value})

    def test_cell_key_error_names_the_scenario(self):
        with pytest.raises(ValueError, match="non-finite") as info:
            cell_key("my-study", {"rate": math.nan}, 0)
        assert "my-study" in str(info.value)

    def test_put_rejects_nonfinite_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cell_key("t-echo", {"x": 1}, 0)
        with pytest.raises(ValueError, match="non-finite"):
            cache.put(key, "t-echo", {"x": 1}, 0, {"bad": math.inf}, 0.1)
        # the rejected put leaves nothing behind, not even a tmp file
        assert len(cache) == 0
        assert cache.tmp_files() == []

    def test_runner_warns_and_continues_on_uncacheable_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec(
            name="nan-grid", scenario="t-nan", axes={"x": (1, 2)}, seed=0
        )
        with pytest.warns(RuntimeWarning, match="not cached"):
            campaign = Runner(cache=cache).run(spec)
        # the in-memory campaign still has the results...
        assert campaign.n_executed == 2
        assert math.isnan(campaign.cells[0].result["bad"])
        # ...but nothing hit the disk
        assert len(cache) == 0

    def test_nonfinite_reports_round_trip_via_sentinels(self):
        from repro.experiments import decode_nonfinite, encode_nonfinite

        original = {
            "inflation": math.inf,
            "walls": [1.0, -math.inf, 2.5],
            "nested": {"x": math.nan},
            "fine": 3.0,
        }
        encoded = encode_nonfinite(original)
        canonical_json(encoded)  # must be strict-JSON clean
        decoded = decode_nonfinite(encoded)
        assert decoded["inflation"] == math.inf
        assert decoded["walls"] == [1.0, -math.inf, 2.5]
        assert math.isnan(decoded["nested"]["x"])
        assert decoded["fine"] == 3.0

    def test_sentinel_lookalike_strings_round_trip_unchanged(self):
        # a field that *legitimately* holds "NaN"/"Infinity" as a string
        # (a tag, a message) must come back as that string, not a float
        from repro.experiments import decode_nonfinite, encode_nonfinite

        original = {
            "tag": "NaN",
            "message": "Infinity",
            "notes": ["-Infinity", "fine"],
            "wall": math.inf,
        }
        decoded = decode_nonfinite(encode_nonfinite(original))
        assert decoded["tag"] == "NaN"
        assert decoded["message"] == "Infinity"
        assert decoded["notes"] == ["-Infinity", "fine"]
        assert decoded["wall"] == math.inf

    def test_encode_rejects_reserved_wrapper_key(self):
        from repro.experiments import encode_nonfinite

        with pytest.raises(ValueError, match="reserved"):
            encode_nonfinite({"__nonfinite__": 1.0})


# -- cache maintenance: tmp hygiene, stats, verify, gc ----------------------


def _fill_cache(cache, n=3, scenario="t-echo"):
    keys = []
    for x in range(n):
        key = cell_key(scenario, {"x": x}, 0)
        cache.put(key, scenario, {"x": x}, 0, {"x": x}, 0.01)
        keys.append(key)
    return keys


class TestCacheMaintenance:
    def test_len_and_iter_exclude_tmp_and_foreign_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill_cache(cache, 3)
        shard = cache.path_for(keys[0]).parent
        # plant orphans in current and legacy naming, plus foreign noise
        (shard / f"{keys[0]}.12345.tmp").write_text("{")
        (shard / f"{keys[0]}.json.tmp.999").write_text("{")
        (shard / "README.json").write_text("{}")
        (tmp_path / "notashard").mkdir()
        (tmp_path / "notashard" / "x.json").write_text("{}")
        assert len(cache) == 3
        assert {p.stem for p in cache.iter_artifacts()} == set(keys)
        assert len(cache.tmp_files()) == 2

    def test_checkpoints_subdir_is_not_an_artifact(self, tmp_path):
        from repro.experiments import CampaignCheckpoint
        from repro.experiments.checkpoint import CHECKPOINT_SUBDIR

        cache = ResultCache(tmp_path)
        _fill_cache(cache, 2)
        spec = ExperimentSpec(
            name="g", scenario="t-echo", axes={"x": (1,)}, seed=0
        )
        ck = CampaignCheckpoint.for_spec(tmp_path / CHECKPOINT_SUBDIR, spec)
        ck.record(0, None, "err", 0.1)
        assert len(cache) == 2
        assert cache.verify().ok

    def test_prune_tmp_by_age(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill_cache(cache, 1)
        shard = cache.path_for(keys[0]).parent
        old = shard / f"{keys[0]}.111.tmp"
        new = shard / f"{keys[0]}.222.tmp"
        old.write_text("x")
        new.write_text("x")
        past = time.time() - 7200
        os.utime(old, (past, past))
        removed = cache.prune_tmp(older_than_s=3600)
        assert removed == [old]
        assert cache.tmp_files() == [new]
        # age 0 reaps everything
        assert cache.prune_tmp() == [new]
        assert len(cache) == 1  # artifacts untouched

    def test_stats_counts_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill_cache(cache, 2, scenario="t-echo")
        key3 = cell_key("t-boom", {"x": 9}, 1)
        cache.put(key3, "t-boom", {"x": 9}, 1, {"x": 9}, 0.01)
        shard = cache.path_for(keys[0]).parent
        (shard / f"{keys[0]}.5.tmp").write_text("orphan")
        st = cache.stats()
        assert st.n_artifacts == 3
        assert st.by_scenario == {"t-echo": 2, "t-boom": 1}
        assert st.n_tmp == 1
        assert st.tmp_bytes == len("orphan")
        assert st.total_bytes > 0
        assert st.oldest_age_s >= st.newest_age_s >= 0.0

    def test_verify_clean_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill_cache(cache, 3)
        report = cache.verify()
        assert report.ok
        assert report.n_ok == 3

    def test_verify_flags_corrupt_and_mismatched(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill_cache(cache, 3)
        # corrupt: truncate one artifact
        corrupt_path = cache.path_for(keys[0])
        corrupt_path.write_text('{"v": 1, "scen')
        # mismatched: rename a valid artifact to a different (valid) key
        bogus_key = cell_key("t-echo", {"x": 999}, 0)
        mismatched_path = cache.path_for(bogus_key)
        mismatched_path.parent.mkdir(parents=True, exist_ok=True)
        os.replace(cache.path_for(keys[1]), mismatched_path)
        report = cache.verify()
        assert not report.ok
        assert report.n_ok == 1
        assert report.corrupt == (corrupt_path,)
        assert report.mismatched == (mismatched_path,)

    def test_verify_delete_removes_bad(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill_cache(cache, 2)
        cache.path_for(keys[0]).write_text("garbage")
        report = cache.verify(delete=True)
        assert len(report.bad) == 1
        assert len(cache) == 1
        assert cache.verify().ok

    def test_gc_requires_a_filter(self, tmp_path):
        cache = ResultCache(tmp_path)
        _fill_cache(cache, 2)
        with pytest.raises(ValueError, match="refusing"):
            cache.gc()
        assert len(cache) == 2

    def test_gc_by_age(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill_cache(cache, 3)
        past = time.time() - 10 * 86400
        for key in keys[:2]:
            os.utime(cache.path_for(key), (past, past))
        removed = cache.gc(older_than_s=7 * 86400)
        assert sorted(p.stem for p in removed) == sorted(keys[:2])
        assert len(cache) == 1
        # emptied shards are cleaned up
        for path in removed:
            assert not path.parent.exists() or any(path.parent.iterdir())

    def test_gc_by_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill_cache(cache, 3)
        removed = cache.gc(keys=[keys[1]])
        assert [p.stem for p in removed] == [keys[1]]
        assert len(cache) == 2

    def test_gc_by_age_and_keys_is_an_intersection(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = _fill_cache(cache, 2)
        past = time.time() - 7200
        os.utime(cache.path_for(keys[0]), (past, past))
        # keys[1] matches the keyset but is too young; keys[0] matches both
        removed = cache.gc(older_than_s=3600, keys=keys)
        assert [p.stem for p in removed] == [keys[0]]


# -- the CLI `cache` subcommand ---------------------------------------------


class TestCliCache:
    def _seed_cache(self, tmp_path, n=2):
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        keys = _fill_cache(cache, n)
        return cache_dir, cache, keys

    def test_stats_output(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir, cache, keys = self._seed_cache(tmp_path)
        shard = cache.path_for(keys[0]).parent
        (shard / f"{keys[0]}.7.tmp").write_text("x")
        rc = main(["cache", "--cache-dir", str(cache_dir), "stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 artifact(s)" in out
        assert "t-echo" in out
        assert "orphaned tmp files: 1" in out
        assert "pending checkpoints: 0" in out

    def test_verify_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir, cache, keys = self._seed_cache(tmp_path)
        rc = main(["cache", "--cache-dir", str(cache_dir), "verify"])
        assert rc == 0
        assert "2 ok, 0 corrupt" in capsys.readouterr().out

        cache.path_for(keys[0]).write_text("junk")
        rc = main(["cache", "--cache-dir", str(cache_dir), "verify"])
        assert rc == 1
        assert "1 corrupt" in capsys.readouterr().out

        rc = main(["cache", "--cache-dir", str(cache_dir), "verify", "--delete"])
        assert rc == 0
        capsys.readouterr()
        rc = main(["cache", "--cache-dir", str(cache_dir), "verify"])
        assert rc == 0
        assert "1 ok" in capsys.readouterr().out

    def test_gc_refuses_unfiltered(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir, cache, _ = self._seed_cache(tmp_path)
        rc = main(["cache", "--cache-dir", str(cache_dir), "gc"])
        assert rc == 2
        assert "refuses" in capsys.readouterr().out
        assert len(cache) == 2

    def test_gc_by_age_units(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir, cache, keys = self._seed_cache(tmp_path)
        past = time.time() - 3 * 86400
        os.utime(cache.path_for(keys[0]), (past, past))
        rc = main(["cache", "--cache-dir", str(cache_dir), "gc",
                   "--older-than", "2d"])
        assert rc == 0
        assert "removed 1 file(s)" in capsys.readouterr().out
        assert len(cache) == 1

    def test_gc_by_spec_removes_only_that_campaign(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        spec_path = tmp_path / "grid.toml"
        spec_path.write_text(
            'name = "g"\nscenario = "t-echo"\nseed = 3\n[axes]\nx = [1, 2]\n'
        )
        rc = main(["run", str(spec_path), "--cache-dir", str(cache_dir)])
        assert rc == 0
        cache = ResultCache(cache_dir)
        foreign = _fill_cache(cache, 1, scenario="t-boom")
        capsys.readouterr()
        rc = main(["cache", "--cache-dir", str(cache_dir), "gc",
                   "--spec", str(spec_path)])
        assert rc == 0
        assert "removed 2 file(s)" in capsys.readouterr().out
        assert [p.stem for p in cache.iter_artifacts()] == foreign

    def test_gc_by_spec_leaves_inflight_tmp_files_alone(self, tmp_path, capsys):
        # a fresh .tmp may belong to a campaign writing *right now*; a
        # spec-scoped gc (no --older-than) must not reap it — deleting
        # it would crash that campaign's os.replace
        from repro.cli import main

        cache_dir, cache, keys = self._seed_cache(tmp_path)
        spec_path = tmp_path / "grid.toml"
        spec_path.write_text(
            'name = "g"\nscenario = "t-echo"\nseed = 3\n[axes]\nx = [1, 2]\n'
        )
        shard = cache.path_for(keys[0]).parent
        inflight = shard / f"{keys[0]}.777.tmp"
        inflight.write_text("{")
        rc = main(["cache", "--cache-dir", str(cache_dir), "gc",
                   "--spec", str(spec_path)])
        assert rc == 0
        assert inflight.exists()
        # with an age filter the tmp file is fair game once old enough
        past = time.time() - 3600
        os.utime(inflight, (past, past))
        capsys.readouterr()
        rc = main(["cache", "--cache-dir", str(cache_dir), "gc",
                   "--older-than", "30m"])
        assert rc == 0
        assert not inflight.exists()

    def test_prune_tmp(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir, cache, keys = self._seed_cache(tmp_path, n=1)
        shard = cache.path_for(keys[0]).parent
        (shard / f"{keys[0]}.9.tmp").write_text("x")
        rc = main(["cache", "--cache-dir", str(cache_dir), "prune-tmp"])
        assert rc == 0
        assert "pruned 1" in capsys.readouterr().out
        assert cache.tmp_files() == []
        assert len(cache) == 1

    def test_bad_age_is_a_clean_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="invalid age"):
            main(["cache", "--cache-dir", str(tmp_path), "gc",
                  "--older-than", "fortnight"])

    def test_run_interrupted_exits_resumable(self, tmp_path, capsys):
        import signal as _signal

        from repro.cli import EXIT_RESUMABLE, main

        spec_path = tmp_path / "kill.toml"
        spec_path.write_text(
            'name = "kill"\nscenario = "t-self-sigterm"\nseed = 0\n'
            "[axes]\nx = [0, 1, 2]\n"
        )

        @register_scenario("t-self-sigterm")
        def _t_self_sigterm(params, seed):
            if params["x"] == 0:
                os.kill(os.getpid(), _signal.SIGTERM)
                time.sleep(0.1)
            return {"x": params["x"]}

        cache_dir = tmp_path / "cache"
        rc = main(["run", str(spec_path), "--cache-dir", str(cache_dir)])
        assert rc == EXIT_RESUMABLE
        out = capsys.readouterr().out
        assert "interrupted by SIGTERM" in out
        assert "resume" in out
        # stats now shows the pending checkpoint
        rc = main(["cache", "--cache-dir", str(cache_dir), "stats"])
        assert rc == 0
        assert "pending checkpoints: 1" in capsys.readouterr().out
        # the resumed run completes and consumes the checkpoint
        rc = main(["run", str(spec_path), "--cache-dir", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 executed, 1 cached, 0 failed" in out
        rc = main(["cache", "--cache-dir", str(cache_dir), "stats"])
        assert rc == 0
        assert "pending checkpoints: 0" in capsys.readouterr().out


class TestStreamAnalyzeScenario:
    def test_result_shape_and_census(self):
        fn = get_scenario("stream_analyze")
        result = fn(
            {"dataset": "slac-bnl", "n_transfers": 20_000,
             "chunk_size": 5_000, "block_transfers": 10_000},
            seed=4,
        )
        assert result["n_transfers"] == 20_000
        assert result["n_sessions"] == result["n_single"] + result["n_multi"]
        assert result["transfers_per_s"] > 0
        assert result["chunk_size"] == 5_000
        import json

        json.dumps(result)  # cacheable

    def test_chunk_size_does_not_change_census(self):
        fn = get_scenario("stream_analyze")
        base = {"dataset": "slac-bnl", "n_transfers": 12_000,
                "block_transfers": 6_000}
        a = fn({**base, "chunk_size": 4_000}, seed=2)
        b = fn({**base, "chunk_size": 1_111}, seed=2)
        for k in ("n_sessions", "n_single", "n_multi", "n_pairs",
                  "total_bytes", "max_transfers_in_session"):
            assert a[k] == b[k], k
