"""Integration-grade tests of the fluid transfer simulator."""

import numpy as np
import pytest

from repro.gridftp.client import TransferJob
from repro.gridftp.records import TransferLog
from repro.gridftp.server import DtnCluster, DtnSpec, EndpointKind
from repro.net.topology import esnet_like
from repro.sim.experiment import FluidSimulator
from repro.vc.oscars import OscarsIDC, ReservationRequest


def make_sim(**kw):
    topo = esnet_like()
    dtns = DtnCluster()
    for site in topo.sites:
        dtns.add(DtnSpec(site, nic_bps=6e9, disk_read_bps=5e9, disk_write_bps=4e9))
    defaults = dict(ssthresh_bytes=None)
    defaults.update(kw)
    return topo, dtns, FluidSimulator(topo, dtns, **defaults)


def job(t=0.0, src="NERSC", dst="ORNL", size=10e9, streams=8, **kw):
    return TransferJob(
        submit_time=t, src=src, dst=dst, size_bytes=size, streams=streams, **kw
    )


class TestSingleTransfer:
    def test_duration_matches_analytic_cap(self):
        topo, dtns, sim = make_sim()
        sim.submit(job(size=10e9))
        result = sim.run()
        assert len(result.log) == 1
        rec = result.log.record(0)
        # cap: min(dtn read 5G, write 4G, nic 6G) = 4 Gbps + slow-start penalty
        assert rec.throughput_bps == pytest.approx(4e9, rel=0.05)

    def test_bytes_conserved_into_snmp(self):
        topo, dtns, sim = make_sim()
        sim.submit(job(size=10e9))
        result = sim.run()
        path = topo.path("NERSC", "ORNL")
        for key in topo.path_links(path):
            assert result.snmp.counter(key).total_bytes() == pytest.approx(
                10e9, rel=1e-6
            )

    def test_log_fields(self):
        topo, dtns, sim = make_sim()
        sim.submit(job(t=50.0, streams=4, stripes=2))
        result = sim.run()
        rec = result.log.record(0)
        assert rec.start == 50.0
        assert rec.streams == 4 and rec.stripes == 2
        assert rec.local_host == topo.host_id("NERSC")
        assert rec.remote_host == topo.host_id("ORNL")

    def test_submit_in_past_rejected(self):
        topo, dtns, sim = make_sim()
        sim.submit(job(t=100.0))
        sim.run()
        with pytest.raises(ValueError):
            sim.submit(job(t=50.0))


class TestContention:
    def test_two_flows_share_server(self):
        """Two simultaneous transfers from one DTN each get about half.

        The binding pool is the NERSC disk-read budget (5 Gbps shared),
        tighter per flow than the 6 Gbps host pool.
        """
        topo, dtns, sim = make_sim()
        sim.submit(job(size=10e9, dst="ORNL"))
        sim.submit(job(size=10e9, dst="ANL"))
        result = sim.run()
        tput = result.log.throughput_bps
        assert np.allclose(tput, 2.5e9, rtol=0.08)

    def test_lone_flow_faster_than_contended(self):
        topo, dtns, sim = make_sim()
        sim.submit(job(t=0.0, size=5e9))
        sim.submit(job(t=500.0, size=5e9))  # after the first finishes
        lone = sim.run().log.throughput_bps
        topo2, dtns2, sim2 = make_sim()
        sim2.submit(job(t=0.0, size=5e9))
        sim2.submit(job(t=0.0, size=5e9))
        shared = sim2.run().log.throughput_bps
        assert lone.min() > shared.max()

    def test_memory_endpoints_skip_disk_pools(self):
        topo, dtns, sim = make_sim()
        sim.submit(
            job(
                size=10e9,
                src_endpoint=EndpointKind.MEMORY,
                dst_endpoint=EndpointKind.MEMORY,
            )
        )
        tput = sim.run().log.throughput_bps[0]
        # mem-mem cap is the 6G NIC, not the 4G disk write pool
        assert tput == pytest.approx(6e9, rel=0.05)

    def test_weighted_sharing_by_streams(self):
        """On a saturated server pool, 8 streams out-compete 1 stream.

        The 1-stream transfer is sized to finish while contention lasts,
        so its logged average reflects the weighted share (8:1), not the
        uncontended tail after the big transfer completes.
        """
        topo, dtns, sim = make_sim()
        sim.submit(job(size=20e9, streams=8,
                       src_endpoint=EndpointKind.MEMORY,
                       dst_endpoint=EndpointKind.MEMORY))
        sim.submit(job(size=1e9, streams=1,
                       src_endpoint=EndpointKind.MEMORY,
                       dst_endpoint=EndpointKind.MEMORY))
        result = sim.run()
        log = result.log
        heavy = log.throughput_bps[log.streams == 8][0]
        light = log.throughput_bps[log.streams == 1][0]
        assert heavy > 3 * light


class TestSlowStart:
    def test_penalty_lowers_small_file_throughput(self):
        topo, dtns, sim = make_sim(ssthresh_bytes=1.2e6)
        sim.submit(job(size=20e6, streams=1))
        small = sim.run().log.throughput_bps[0]
        topo2, dtns2, sim2 = make_sim(ssthresh_bytes=1.2e6)
        sim2.submit(job(size=50e9, streams=1))
        large = sim2.run().log.throughput_bps[0]
        assert small < 0.5 * large

    def test_more_streams_help_small_files(self):
        results = {}
        for streams in (1, 8):
            topo, dtns, sim = make_sim(ssthresh_bytes=1.2e6)
            sim.submit(job(size=50e6, streams=streams))
            results[streams] = sim.run().log.throughput_bps[0]
        assert results[8] > 1.3 * results[1]


class TestVcFlows:
    def test_vc_flow_capped_at_circuit_rate(self):
        topo, dtns, sim = make_sim()
        idc = OscarsIDC(topo)
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 1000.0, 10_000.0),
            request_time=0.0,
        )
        sim.submit(job(t=vc.start_time, size=5e9), vc=vc)
        tput = sim.run().log.throughput_bps[0]
        assert tput <= 1e9 * 1.01
        assert tput == pytest.approx(1e9, rel=0.05)

    def test_vc_flow_protected_from_best_effort(self):
        """A circuit keeps its rate while a best-effort burst shares the path."""
        topo, dtns, sim = make_sim()
        idc = OscarsIDC(topo)
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 3e9, 1000.0, 100_000.0),
            request_time=0.0,
        )
        sim.submit(job(t=vc.start_time, size=30e9), vc=vc)
        for k in range(3):
            sim.submit(job(t=vc.start_time, src="SLAC", dst="NICS", size=30e9,
                           src_endpoint=EndpointKind.MEMORY,
                           dst_endpoint=EndpointKind.MEMORY))
        result = sim.run()
        log = result.log
        vc_tput = log.throughput_bps[log.local_host == topo.host_id("NERSC")][0]
        assert vc_tput == pytest.approx(3e9, rel=0.05)

    def test_vc_and_explicit_path_conflict(self):
        topo, dtns, sim = make_sim()
        idc = OscarsIDC(topo)
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 1000.0, 10_000.0),
            request_time=0.0,
        )
        with pytest.raises(ValueError):
            sim.submit(job(t=2000.0), vc=vc, explicit_path=["NERSC", "ORNL"])


class TestExplicitPath:
    def test_explicit_path_routes_off_default(self):
        topo, dtns, sim = make_sim()
        northern = [
            "NERSC", "rt-sunn", "rt-sacr", "rt-denv", "rt-kans", "rt-chic",
            "rt-nash", "ORNL",
        ]
        sim.submit(job(size=5e9), explicit_path=northern)
        result = sim.run()
        key = ("rt-denv", "rt-kans")
        assert result.snmp.counter(tuple(sorted(key))).total_bytes() > 0


class TestRunControls:
    def test_run_until(self):
        topo, dtns, sim = make_sim()
        sim.submit(job(t=0.0, size=10e9))
        sim.submit(job(t=1e6, size=10e9))
        result = sim.run(until=1000.0)
        assert len(result.log) == 1
        assert sim.now == 1000.0

    def test_empty_run(self):
        topo, dtns, sim = make_sim()
        result = sim.run()
        assert len(result.log) == 0
        assert isinstance(result.log, TransferLog)

    def test_event_budget(self):
        topo, dtns, sim = make_sim()
        for k in range(20):
            sim.submit(job(t=float(k), size=1e9))
        with pytest.raises(RuntimeError):
            sim.run(max_events=3)


class TestLinkOutages:
    def test_outage_stalls_flow(self):
        """A mid-transfer outage adds exactly the stall to the duration."""
        topo, dtns, sim = make_sim()
        sim.submit(job(size=10e9))  # ~20 s at the 4 Gbps cap
        path = topo.path("NERSC", "ORNL")
        key = topo.path_links(path)[1]
        sim.schedule_link_outage(key, 5.0, 25.0)
        rec = sim.run().log.record(0)
        clean = 10e9 * 8 / 4e9
        assert rec.duration == pytest.approx(clean + 20.0, rel=0.05)

    def test_outage_on_unused_link_no_effect(self):
        topo, dtns, sim = make_sim()
        sim.submit(job(size=10e9))
        sim.schedule_link_outage(("BNL", "rt-aofa"), 5.0, 25.0)
        rec = sim.run().log.record(0)
        assert rec.duration == pytest.approx(10e9 * 8 / 4e9, rel=0.05)

    def test_other_flows_keep_running_through_outage(self):
        topo, dtns, sim = make_sim()
        sim.submit(job(size=10e9, dst="ORNL"))
        sim.submit(job(size=10e9, src="SLAC", dst="BNL"))
        # kill only the southern segment the NERSC->ORNL flow uses
        key = tuple(sorted(("rt-memp", "rt-nash")))
        sim.schedule_link_outage(key, 2.0, 60.0)
        log = sim.run().log
        slac = log.throughput_bps[log.local_host == topo.host_id("SLAC")][0]
        nersc = log.throughput_bps[log.local_host == topo.host_id("NERSC")][0]
        assert slac > 2 * nersc

    def test_vc_flow_stalls_when_path_down(self):
        from repro.vc.oscars import OscarsIDC, ReservationRequest

        topo, dtns, sim = make_sim()
        idc = OscarsIDC(topo)
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 2e9, 1000.0, 100_000.0),
            request_time=0.0,
        )
        sim.submit(job(t=vc.start_time, size=10e9), vc=vc)
        key = topo.path_links(list(vc.path))[1]
        sim.schedule_link_outage(key, vc.start_time + 2.0, vc.start_time + 30.0)
        rec = sim.run().log.record(0)
        assert rec.duration > 10e9 * 8 / 2e9 + 25.0

    def test_outage_validation(self):
        topo, dtns, sim = make_sim()
        with pytest.raises(ValueError):
            sim.schedule_link_outage(("NERSC", "rt-sunn"), 10.0, 10.0)
        with pytest.raises(KeyError):
            sim.schedule_link_outage(("x", "y"), 0.0, 1.0)


def _mixed_scenario(sim, topo):
    """Staggered best-effort + VC + outage churn, same under either allocator."""
    idc = OscarsIDC(topo)
    vc = idc.create_reservation(
        ReservationRequest("NERSC", "ORNL", 2e9, 50.0, 100_000.0),
        request_time=0.0,
    )
    sim.submit(job(t=vc.start_time, size=20e9), vc=vc)
    rng = np.random.default_rng(7)
    sites = ["NERSC", "ORNL", "ANL", "BNL", "SLAC", "NICS"]
    for k in range(12):
        src, dst = rng.choice(sites, size=2, replace=False)
        sim.submit(
            job(
                t=float(rng.uniform(0.0, 120.0)),
                src=str(src),
                dst=str(dst),
                size=float(rng.uniform(1e9, 8e9)),
                streams=int(rng.choice([1, 4, 8])),
            )
        )
    key = tuple(sorted(("rt-memp", "rt-nash")))
    sim.schedule_link_outage(key, 30.0, 80.0)


class TestAllocatorModes:
    def test_incremental_matches_oracle_log(self):
        """Same scenario, both engines: the TransferLogs agree."""
        logs = {}
        for mode in ("incremental", "oracle"):
            topo, dtns, sim = make_sim(allocator=mode)
            _mixed_scenario(sim, topo)
            logs[mode] = sim.run().log
        inc, ora = logs["incremental"], logs["oracle"]
        assert len(inc) == len(ora)
        for col in ("start", "duration", "size", "streams",
                    "local_host", "remote_host"):
            assert np.allclose(inc.column(col), ora.column(col),
                               rtol=1e-9, atol=1e-6), col

    def test_probe_and_flow_ids_populated(self):
        from repro.sim.probe import SimProbe

        probe = SimProbe()
        topo, dtns, sim = make_sim(probe=probe)
        _mixed_scenario(sim, topo)
        result = sim.run()
        assert result.probe is probe
        assert probe.n_events > 0
        assert probe.n_flushes > 0
        assert probe.n_alloc_passes > 0
        assert probe.n_flows_touched >= probe.n_alloc_passes
        assert set(probe.wall_s) >= {"advance", "allocate"}
        # flow_ids aligns with the log rows, one fid per record
        assert result.flow_ids.shape == (len(result.log),)
        assert len(set(result.flow_ids.tolist())) == len(result.log)

    def test_coalescing_batches_same_instant_arrivals(self):
        """A burst of arrivals at one instant costs one flush, not k."""
        from repro.sim.probe import SimProbe

        probe = SimProbe()
        topo, dtns, sim = make_sim(probe=probe)
        for _ in range(6):
            sim.submit(job(t=10.0, size=1e9, dst="ANL"))
        sim.run(until=10.0)
        burst_flushes = probe.n_flushes
        assert probe.n_events >= 6
        assert burst_flushes <= 2  # the t=10 batch settles once

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ValueError):
            make_sim(allocator="magic")
