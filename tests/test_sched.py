"""Unit and property tests for the pluggable scheduling core.

Covers the :mod:`repro.sched` seam itself (factory, registry, decision
defaults), the three policies behind it (fcfs / predictive / global),
the comparison campaign, and — via hypothesis — the contract that
*scheduler choice never breaks the submission-ledger invariants* of the
deterministic load-test twin.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.base import (
    SCHEDULER_NAMES,
    SchedulerConfig,
    make_scheduler,
)
from repro.sched.fcfs import FcfsScheduler
from repro.sched.globalsched import GlobalScheduler, dispatch_priority
from repro.sched.predictive import (
    FixedRatePredictor,
    OnlineThroughputPredictor,
    PredictiveScheduler,
    prediction_error_cost_curve,
)
from repro.service.budget import DeadlineBudget, PathChoice, plan_path
from repro.service.loadtest import run_loadtest_sim


def _budget(deadline_s, now=0.0):
    return DeadlineBudget(deadline_s, lambda: now)


class _Req:
    """Duck-typed pending request (the sim twin's shape)."""

    def __init__(self, total_bytes, deadline_s=None):
        self.total_bytes = total_bytes
        self.budget = _budget(deadline_s)


class TestFactory:
    def test_registry_names(self):
        assert SCHEDULER_NAMES() == ("fcfs", "global", "predictive")

    def test_make_scheduler_by_name(self):
        for name, cls in [
            ("fcfs", FcfsScheduler),
            ("predictive", PredictiveScheduler),
            ("global", GlobalScheduler),
        ]:
            sched = make_scheduler(name)
            assert isinstance(sched, cls)
            assert sched.name == name

    def test_unknown_name_is_a_clear_error(self):
        with pytest.raises(ValueError, match="unknown scheduler 'lottery'"):
            make_scheduler("lottery")
        with pytest.raises(ValueError, match="fcfs, global, predictive"):
            make_scheduler("lottery")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(workers=0)
        with pytest.raises(ValueError):
            SchedulerConfig(vc_rate_bps=-1.0)
        with pytest.raises(ValueError):
            SchedulerConfig(vc_safety_factor=0.5)


class TestSeamDefaults:
    def test_fcfs_plan_is_plan_path(self):
        """The baseline ladder is literally :func:`plan_path`."""
        c = SchedulerConfig()
        sched = FcfsScheduler(c)
        for deadline, size in [(None, 8e9), (50.0, 8e9), (5000.0, 64e9)]:
            got = sched.plan(_budget(deadline), size, 12.0)
            want = plan_path(
                _budget(deadline),
                size,
                c.vc_rate_bps,
                c.ip_rate_bps,
                12.0,
                safety_factor=c.vc_safety_factor,
            )
            assert got == want

    def test_fcfs_queue_is_fifo(self):
        sched = make_scheduler("fcfs")
        reqs = [_Req(1e9), _Req(2e9), _Req(3e9)]
        for r in reqs:
            sched.enqueue(r)
        assert sched.n_pending == 3
        assert [sched.next_request() for _ in range(3)] == reqs
        assert sched.next_request() is None

    def test_rate_advice_default_is_nominal(self):
        sched = make_scheduler("fcfs", SchedulerConfig(vc_rate_bps=3e9))
        assert sched.rate_advice(1e9) == 3e9

    def test_reservation_window_float_order(self):
        """The window formula preserves the historical float arithmetic."""
        sched = make_scheduler("fcfs")
        start, end = sched.reservation_window(200.0, 37.5, horizon_factor=2.0)
        assert start == 200.0
        assert end == 200.0 + 0.0 + 2.0 * 37.5 + 600.0
        start, end = sched.reservation_window(
            10.0, 5.0, worst_case_setup_s=60.0
        )
        assert end == 10.0 + 60.0 + 3.0 * 5.0 + 600.0

    def test_admission_is_owned_by_the_scheduler(self):
        sched = make_scheduler("fcfs", SchedulerConfig(tenant_quota=1))
        assert sched.admit("a").admitted
        assert not sched.admit("a").admitted  # quota
        sched.on_settle("a", started=False)
        assert sched.admit("a").admitted


class TestGlobalScheduler:
    def test_dispatch_priority_edf_before_lpt(self):
        tight = _Req(1e9, deadline_s=10.0)
        loose = _Req(1e9, deadline_s=500.0)
        big = _Req(50e9)
        small = _Req(1e9)
        keys = sorted(
            [big, tight, small, loose], key=dispatch_priority
        )
        assert keys == [tight, loose, big, small]

    def test_dispatch_priority_duck_types_daemon_requests(self):
        class _Task:
            total_bytes = 7e9

        class _DaemonReq:
            task = _Task()
            budget = _budget(30.0)

        key = dispatch_priority(_DaemonReq())
        assert key[0] == 0 and key[1] == pytest.approx(30.0)

    def test_next_request_scans_the_whole_pending_set(self):
        sched = make_scheduler("global")
        a, b, c = _Req(2e9), _Req(9e9, deadline_s=60.0), _Req(30e9)
        for r in (a, b, c):
            sched.enqueue(r)
        assert sched.next_request() is b   # deadline first (EDF)
        assert sched.next_request() is c   # then LPT among unbounded
        assert sched.next_request() is a
        assert sched.next_request() is None


class TestPredictor:
    def test_warmup_returns_none(self):
        p = OnlineThroughputPredictor(min_samples=4)
        for _ in range(3):
            p.observe(1e9, 1e9)
        assert p.predict(1e9) is None
        p.observe(1e9, 1e9)
        assert p.predict(1e9) == pytest.approx(1e9)

    def test_fit_converges_on_a_line(self):
        p = OnlineThroughputPredictor(min_samples=4)
        # throughput = 1e8 * log10(size): bigger transfers amortize startup
        for exp in (8, 9, 10, 11, 8, 9, 10, 11):
            p.observe(10.0**exp, 1e8 * exp)
        assert p.predict(1e10) == pytest.approx(1e9, rel=1e-6)

    def test_clamps_to_floor_and_cap(self):
        p = OnlineThroughputPredictor(min_samples=2, floor_bps=1e6, cap_bps=2e9)
        p.observe(1e6, 5e9)
        p.observe(1e12, 5e9)
        assert p.predict(1e9) == 2e9
        down = OnlineThroughputPredictor(min_samples=2, floor_bps=1e6)
        down.observe(1e6, 1e9)
        down.observe(1e12, 1.0)  # steep negative slope
        assert down.predict(1e15) == 1e6

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineThroughputPredictor(min_samples=1)
        with pytest.raises(ValueError):
            FixedRatePredictor(0.0)


class TestPredictiveScheduler:
    def test_cold_predictor_matches_fcfs(self):
        c = SchedulerConfig()
        pred = PredictiveScheduler(c)
        base = FcfsScheduler(c)
        assert pred.predicted_vc_rate(8e9) == c.vc_rate_bps
        assert pred.plan(_budget(100.0), 8e9, 5.0) == base.plan(
            _budget(100.0), 8e9, 5.0
        )
        assert pred.rate_advice(8e9) == c.vc_rate_bps  # capped at nominal

    def test_slow_history_degrades_what_nominal_would_ride(self):
        c = SchedulerConfig(vc_rate_bps=1.6e9, ip_rate_bps=4e8)
        sched = PredictiveScheduler(
            c, predictor=FixedRatePredictor(c.vc_rate_bps / 20.0)
        )
        size = 8e9
        # at nominal the VC fits this budget; at the predicted rate the
        # safety-inflated ride does not, so the plan degrades up front
        budget_s = 8.0 + size * 8.0 / c.vc_rate_bps * c.vc_safety_factor + 1.0
        base = FcfsScheduler(c).plan(_budget(budget_s), size, 8.0)
        assert base.choice is PathChoice.VC
        plan = sched.plan(_budget(budget_s), size, 8.0)
        assert plan.choice is PathChoice.IP_DEGRADED

    def test_observe_trains_on_vc_rides_only(self):
        sched = PredictiveScheduler(SchedulerConfig())
        sched.observe(8e9, 40.0, "ip")
        assert sched.predictor.n == 0
        sched.observe(8e9, 40.0, "vc")
        assert sched.predictor.n == 1
        sched.observe(8e9, 0.0, "vc")  # zero elapsed: ignored
        assert sched.predictor.n == 1

    def test_observe_never_draws_rng(self):
        """The seam contract that keeps fcfs bit-exact holds for all."""
        for name in SCHEDULER_NAMES():
            sched = make_scheduler(name)
            sched.observe(8e9, 40.0, "vc")  # no rng attribute to draw from


class TestCostCurve:
    def test_oracle_costs_are_zero(self):
        params = {"n_requests": 40, "rate_per_s": 0.5, "queue_limit": 8}
        out = prediction_error_cost_curve(params, seed=5, biases=(0.5, 1.0))
        oracle = next(r for r in out["curve"] if r["bias"] == 1.0)
        assert oracle["blocking_cost"] == 0.0
        assert oracle["goodput_cost_bps"] == 0.0
        assert oracle["expired_cost"] == 0.0

    def test_biases_must_include_the_oracle(self):
        with pytest.raises(ValueError, match="oracle"):
            prediction_error_cost_curve({}, seed=0, biases=(0.5, 2.0))


class TestComparisonCampaign:
    def test_three_way_comparison_reports_deltas(self):
        from repro.sched import run_sched_comparison

        out = run_sched_comparison(
            {"n_requests": 60, "rate_per_s": 0.5, "queue_limit": 10}, seed=11
        )
        assert out["schedulers"] == ["fcfs", "predictive", "global"]
        for name in out["schedulers"]:
            row = out["results"][name]
            census = row["census"]
            assert (
                census["n_offered"]
                == census["n_accepted"] + census["n_shed"] + census["n_invalid"]
            )
            assert row["makespan_s"] > 0
        assert set(out["vs_fcfs"]) == {"predictive", "global"}
        for deltas in out["vs_fcfs"].values():
            assert set(deltas) == {
                "blocking_rate", "goodput_bps", "makespan_s", "expired_frac"
            }

    def test_same_workload_every_policy(self):
        """The offered census is policy-independent (same schedule/mix)."""
        from repro.sched import run_sched_comparison

        out = run_sched_comparison(
            {"n_requests": 80, "rate_per_s": 1.0, "invalid_frac": 0.1}, seed=3
        )
        # only n_offered is workload: an injected-invalid submission that
        # arrives while admission is saturated sheds *before* validation,
        # so n_invalid is an outcome and may differ between policies
        offered = {
            r["census"]["n_offered"] for r in out["results"].values()
        }
        assert offered == {80}

    def test_unknown_policy_fails_fast(self):
        from repro.sched import run_sched_comparison

        with pytest.raises(ValueError, match="unknown scheduler"):
            run_sched_comparison(
                {"n_requests": 10, "schedulers": ["fcfs", "lottery"]}, seed=0
            )

    def test_scenarios_reexport(self):
        from repro.sched import run_sched_comparison
        from repro.sim import scenarios

        assert scenarios.run_sched_comparison is run_sched_comparison


class TestLedgerInvariantProperties:
    """Scheduler choice never breaks the twin's submission ledger."""

    @given(
        name=st.sampled_from(["fcfs", "predictive", "global"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=3, max_value=40),
        rate=st.floats(min_value=0.05, max_value=2.0),
        queue_limit=st.integers(min_value=2, max_value=16),
        tenant_quota=st.integers(min_value=1, max_value=8),
        invalid_frac=st.floats(min_value=0.0, max_value=0.3),
        tight_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_ledger_balances_for_every_policy(
        self, name, seed, n, rate, queue_limit, tenant_quota,
        invalid_frac, tight_frac,
    ):
        report = run_loadtest_sim(
            {
                "scheduler": name,
                "n_requests": n,
                "rate_per_s": rate,
                "queue_limit": queue_limit,
                "tenant_quota": tenant_quota,
                "invalid_frac": invalid_frac,
                "tight_deadline_frac": tight_frac,
            },
            seed,
        )
        report.validate()  # ledger, shed census, bound, monotone quantiles
        assert report.scheduler == name
        assert report.n_offered == n
        assert report.n_settled == report.n_accepted
        assert 0.0 <= report.availability <= 1.0
        if report.fairness_jain is not None:
            assert 0.0 < report.fairness_jain <= 1.0 + 1e-12
        assert report.goodput_bps >= 0.0
        assert math.isfinite(report.goodput_bps)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_offered_workload_is_policy_invariant(self, seed):
        """All policies face the identical arrival schedule and mix."""
        censuses = {}
        for name in ("fcfs", "predictive", "global"):
            r = run_loadtest_sim(
                {"scheduler": name, "n_requests": 20, "rate_per_s": 0.5},
                seed,
            )
            censuses[name] = (r.n_offered, r.n_invalid)
        assert len(set(censuses.values())) == 1


class TestSeamPlumbing:
    def test_daemon_config_rejects_unknown_scheduler(self):
        from repro.service.daemon import DaemonConfig

        with pytest.raises(ValueError, match="unknown scheduler"):
            DaemonConfig(socket_path="/tmp/x.sock", scheduler="lottery")

    def test_provisioner_consults_the_scheduler(self):
        """A policy can hold a circuit in RESERVED; it provisions later."""
        from repro.net.topology import esnet_like
        from repro.sim.engine import EventLoop
        from repro.vc.circuits import CircuitState, HardwareSignalling
        from repro.vc.oscars import OscarsIDC, ReservationRequest
        from repro.vc.provisioner import AutoProvisioner

        class _DeferUntil(FcfsScheduler):
            def __init__(self, release_at):
                super().__init__()
                self.release_at = release_at
                self.asked = 0

            def approve_provision(self, circuit, now):
                self.asked += 1
                return now >= self.release_at

        idc = OscarsIDC(esnet_like(), setup_delay=HardwareSignalling(0.0))
        loop = EventLoop(0.0)
        sched = _DeferUntil(release_at=170.0)
        prov = AutoProvisioner(idc, loop, batch_window_s=60.0, scheduler=sched)
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 90.0, 10_000.0),
            request_time=0.0,
        )
        prov.start()
        loop.run(until=400.0)
        assert sched.asked >= 2  # deferred at 120, asked again later
        assert idc.circuit(vc.circuit_id).state is CircuitState.ACTIVE
        provisioned = [
            a for a in prov.actions if a.action == "provisioned"
        ]
        assert provisioned[0].time == 180.0  # first boundary past release

    def test_managed_service_pick_next_hook(self):
        from repro.gridftp.transfer_service import ManagedTransferService

        order: list[int] = []

        def lpt(tasks):
            tid = min(tasks, key=dispatch_priority).task_id
            order.append(tid)
            return tid

        svc = ManagedTransferService(
            rate_for=lambda s, d: 1e9, concurrency=1, pick_next=lpt
        )
        small = svc.submit(0, 1, [1e9], submitted_at=0.0)
        big = svc.submit(0, 1, [9e9], submitted_at=0.0)
        svc.run()
        # LPT: the big task jumps the FIFO queue at first activation
        assert order == [big, small]

    def test_managed_service_pick_next_must_return_a_queued_task(self):
        from repro.gridftp.transfer_service import ManagedTransferService

        svc = ManagedTransferService(
            rate_for=lambda s, d: 1e9, pick_next=lambda tasks: 999
        )
        svc.submit(0, 1, [1e9], submitted_at=0.0)
        with pytest.raises(ValueError, match="pick_next"):
            svc.run()

    def test_latency_sweep_table_needs_latency_cells(self):
        from repro.service.loadtest import latency_sweep_table

        with pytest.raises(ValueError, match="latency"):
            latency_sweep_table({"upstream": []})

    def test_chaos_campaign_accepts_policy_names(self):
        from repro.experiments.campaigns import ChaosConfig, run_chaos

        config = ChaosConfig(n_jobs=2, job_bytes=2e9)
        with pytest.raises(ValueError, match="unknown scheduler"):
            run_chaos(config, seed=0, scheduler="lottery")
        report = run_chaos(config, seed=0, scheduler="global")
        assert report.n_jobs == 2
