"""Tests for the dataset registry and the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.workload.datasets import DATASETS, load


class TestRegistry:
    def test_four_datasets(self):
        assert set(DATASETS) == {
            "NCAR-NICS", "SLAC-BNL", "NERSC-ORNL-32GB", "NERSC-ANL-TEST",
        }

    def test_transfer_counts(self):
        assert DATASETS["NCAR-NICS"].n_transfers == 52_454
        assert DATASETS["SLAC-BNL"].n_transfers == 1_021_999
        assert DATASETS["NERSC-ORNL-32GB"].n_transfers == 145
        assert DATASETS["NERSC-ANL-TEST"].n_transfers == 334

    def test_nersc_datasets_anonymized(self):
        log = load("NERSC-ORNL-32GB", seed=1)
        assert log.is_anonymized
        log = load("NERSC-ANL-TEST", seed=1)
        assert log.is_anonymized

    def test_ncar_not_anonymized(self):
        log = load("NCAR-NICS", seed=1)
        assert not log.is_anonymized

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load("LHC")

    def test_experiment_tags_present(self):
        for spec in DATASETS.values():
            assert spec.experiments


class TestCli:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "NCAR-NICS" in out and "anonymized" in out

    def test_generate_and_summary(self, tmp_path, capsys):
        out_file = tmp_path / "ornl.log"
        assert main(["generate", "NERSC-ORNL-32GB", "--seed", "3",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["summary", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "tput Mbps" in out

    def test_sessions_command(self, tmp_path, capsys):
        out_file = tmp_path / "ncar.log"
        # small NCAR slice via direct generation for speed
        from repro.gridftp.logfmt import write_usage_log
        from repro.workload.synth import ncar_nics

        write_usage_log(ncar_nics(seed=2, n_transfers=2000), out_file)
        assert main(["sessions", str(out_file), "--g", "60"]) == 0
        out = capsys.readouterr().out
        assert "sessions" in out

    def test_suitability_command(self, tmp_path, capsys):
        out_file = tmp_path / "ncar.log"
        from repro.gridftp.logfmt import write_usage_log
        from repro.workload.synth import ncar_nics

        write_usage_log(ncar_nics(seed=2, n_transfers=2000), out_file)
        assert main(["suitability", str(out_file)]) == 0
        assert "%" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliExtensions:
    @staticmethod
    def _write_log(tmp_path, n=2000):
        from repro.gridftp.logfmt import write_usage_log
        from repro.workload.synth import ncar_nics

        path = tmp_path / "ncar.log"
        write_usage_log(ncar_nics(seed=2, n_transfers=n), path)
        return path

    def test_factors_command(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert main(["factors", str(path), "--no-concurrency"]) == 0
        out = capsys.readouterr().out
        assert "stripes" in out and "eta^2" in out

    def test_advise_command(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert main(["advise", str(path), "--bytes", "2e11",
                     "--stripes", "2"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out and "duration" in out

    def test_collect_command(self, tmp_path, capsys):
        path = self._write_log(tmp_path, n=800)
        out_path = tmp_path / "collected.log"
        assert main(["collect", str(path), "--loss", "0.1",
                     "--out", str(out_path)]) == 0
        from repro.gridftp.logfmt import read_usage_log

        collected = read_usage_log(out_path)
        assert 0 < len(collected) < 800
        assert collected.is_anonymized

    def test_hntes_command(self, tmp_path, capsys):
        from repro.gridftp.logfmt import write_usage_log
        from repro.workload.synth import ncar_nics
        import numpy as np

        log = ncar_nics(seed=2, n_transfers=2000).sorted_by_start()
        idx = np.arange(len(log))
        a, b = tmp_path / "a.log", tmp_path / "b.log"
        write_usage_log(log.select(idx[idx % 2 == 0]), a)
        write_usage_log(log.select(idx[idx % 2 == 1]), b)
        assert main(["hntes", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "filters installed" in out and "firewall" in out

    def test_arrivals_command(self, tmp_path, capsys):
        path = self._write_log(tmp_path)
        assert main(["arrivals", str(path)]) == 0
        out = capsys.readouterr().out
        assert "burstiness" in out and "sessions" in out


class TestAnalyzeCommand:
    def test_analyze_streams_a_census(self, capsys):
        assert main(["analyze", "slac-bnl", "--n", "20000",
                     "--chunk-size", "5000", "--block-transfers", "10000",
                     "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "sessions" in out
        assert "transfers/s" in out
        assert "peak streaming state" in out
        assert "tput Mbps" in out

    def test_analyze_rss_budget_pass(self, capsys):
        assert main(["analyze", "slac-bnl", "--n", "5000",
                     "--chunk-size", "2500", "--block-transfers", "5000",
                     "--seed", "1", "--max-rss-mb", "4096"]) == 0
        out = capsys.readouterr().out
        assert "peak RSS" in out and "FAIL" not in out

    def test_analyze_rss_budget_fail(self, capsys):
        # an impossible budget must fail loudly with a nonzero exit
        assert main(["analyze", "slac-bnl", "--n", "5000",
                     "--chunk-size", "2500", "--block-transfers", "5000",
                     "--seed", "1", "--max-rss-mb", "1"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_analyze_census_matches_one_shot(self, capsys):
        from repro.core.sessions import group_sessions
        from repro.gridftp.records import TransferLog
        from repro.workload.synth import generate_stream

        assert main(["analyze", "ncar-nics", "--n", "4000",
                     "--chunk-size", "1000", "--block-transfers", "2000",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        chunks = list(generate_stream("ncar-nics", 4000, 1000, seed=7,
                                      block_transfers=2000))
        ses = group_sessions(TransferLog.concatenate(chunks), 60.0)
        assert f"sessions at g=60s: {len(ses):,}" in out
