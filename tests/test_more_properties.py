"""Additional cross-module property tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridftp.records import TransferLog, TransferRecord, TransferType
from repro.gridftp.usagestats import decode_packet, encode_packet
from repro.net.netflow import aggregate_to_transfers, export_from_transfers
from repro.net.queueing import fifo_waits, poisson_arrivals


@st.composite
def record_strategy(draw):
    return TransferRecord(
        start=draw(st.floats(min_value=0, max_value=4e9)),
        duration=draw(st.floats(min_value=0, max_value=1e6)),
        size=float(draw(st.integers(min_value=0, max_value=10**13))),
        transfer_type=draw(st.sampled_from(list(TransferType))),
        streams=draw(st.integers(min_value=1, max_value=64)),
        stripes=draw(st.integers(min_value=1, max_value=16)),
        tcp_buffer=draw(st.integers(min_value=0, max_value=1 << 30)),
        block_size=draw(st.integers(min_value=1, max_value=1 << 24)),
        local_host=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        remote_host=draw(st.integers(min_value=-1, max_value=2**31 - 1)),
    )


class TestUsageStatsCodecProperties:
    @given(record_strategy(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100)
    def test_packet_roundtrip(self, rec, seq):
        decoded, got_seq = decode_packet(encode_packet(rec, seq))
        assert got_seq == seq
        assert decoded.start == rec.start
        assert decoded.duration == rec.duration
        assert decoded.size == rec.size
        assert decoded.streams == rec.streams
        assert decoded.stripes == rec.stripes
        assert decoded.transfer_type is rec.transfer_type
        assert decoded.local_host == rec.local_host

    @given(record_strategy(), st.integers(min_value=0, max_value=59))
    @settings(max_examples=60)
    def test_any_single_byte_flip_detected(self, rec, pos):
        payload = bytearray(encode_packet(rec, 0))
        payload[pos % len(payload)] ^= 0x01
        from repro.gridftp.usagestats import PacketError

        with pytest.raises(PacketError):
            decode_packet(bytes(payload))


class TestStructuredRoundtripProperty:
    @given(st.lists(record_strategy(), min_size=0, max_size=30))
    @settings(max_examples=50)
    def test_structured_array_roundtrip(self, recs):
        log = TransferLog.from_records(recs)
        back = TransferLog.from_structured(log.to_structured())
        assert back == log


class TestNetflowConservationProperty:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1e6, max_value=1e11),  # size
                st.integers(min_value=1, max_value=16),  # streams
            ),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_unsampled_aggregation_conserves_bytes(self, rows):
        log = TransferLog(
            {
                "start": np.arange(len(rows)) * 1e5,
                "duration": [100.0] * len(rows),
                "size": [r[0] for r in rows],
                "streams": [r[1] for r in rows],
                "local_host": [1] * len(rows),
                "remote_host": [2] * len(rows),
            }
        )
        records = export_from_transfers(log, sampling_n=1)
        movements = aggregate_to_transfers(records)
        assert movements.size.sum() == pytest.approx(log.size.sum(), rel=1e-9)


class TestQueueTheoryCheck:
    def test_md1_mean_wait(self):
        """M/D/1: E[W] = rho * S / (2 (1 - rho)) — the Lindley simulation
        must agree with queueing theory at moderate load."""
        rng = np.random.default_rng(42)
        link = 10e9
        service = 1500 * 8 / link
        rho = 0.7
        arrivals = poisson_arrivals(rho * link, 20.0, rng)
        waits = fifo_waits(arrivals, service)
        expected = rho * service / (2 * (1 - rho))
        assert waits.mean() == pytest.approx(expected, rel=0.1)

    def test_waits_nonnegative_property(self):
        rng = np.random.default_rng(1)
        arrivals = poisson_arrivals(5e9, 5.0, rng)
        waits = fifo_waits(arrivals, 1500 * 8 / 10e9)
        assert np.all(waits >= 0)
