"""Seed-robustness of the dataset calibration.

The Table IV regime claims must hold for *any* seed, not just the
benchmark default — otherwise the calibration is an overfit to one random
draw.  These tests sweep seeds at reduced scale.
"""

import numpy as np
import pytest

from repro.core.sessions import group_sessions
from repro.core.vc_suitability import suitability_table
from repro.workload.synth import ncar_nics, nersc_anl_tests, slac_bnl

SEEDS = [11, 202, 3303]


class TestNcarSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_table4_regime_stable(self, seed):
        log = ncar_nics(seed=seed)
        r = suitability_table(log, g_values=[60.0], setup_delays=[60.0])[
            (60.0, 60.0)
        ]
        assert 35 <= r.percent_sessions <= 75
        assert 80 <= r.percent_transfers <= 98

    @pytest.mark.parametrize("seed", SEEDS)
    def test_session_count_stable(self, seed):
        sessions = group_sessions(ncar_nics(seed=seed), 60.0)
        assert 170 <= len(sessions) <= 250


class TestSlacSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_structure_stable(self, seed):
        log = slac_bnl(seed=seed, n_transfers=60_000)
        r = suitability_table(log, g_values=[60.0], setup_delays=[60.0])[
            (60.0, 60.0)
        ]
        # the asymmetry must survive any seed
        assert r.percent_transfers > 2.5 * r.percent_sessions
        assert (log.streams == 8).mean() > 0.75


class TestAnlSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ordering_stable(self, seed):
        anl = nersc_anl_tests(seed=seed)
        med = {
            name: float(np.median(anl.category(name).throughput_bps))
            for name in anl.masks
        }
        assert med["mem-mem"] > med["mem-disk"]
        assert med["disk-mem"] > med["disk-disk"]
