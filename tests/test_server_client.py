"""Unit tests for the DTN model and GridFTP client scripts."""

import numpy as np
import pytest

from repro.gridftp.client import SessionScript, TransferJob, expand_scripts
from repro.gridftp.server import (
    DtnCluster,
    DtnSpec,
    EndpointKind,
    disk_link,
    host_link,
)


class TestDtnSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            DtnSpec("x", nic_bps=0)
        with pytest.raises(ValueError):
            DtnSpec("x", n_servers=0)

    def test_effective_nic_scales_with_stripes_up_to_cluster(self):
        spec = DtnSpec("x", nic_bps=1e9, n_servers=3)
        assert spec.effective_nic_bps(1) == 1e9
        assert spec.effective_nic_bps(3) == 3e9
        assert spec.effective_nic_bps(10) == 3e9  # capped at cluster width

    def test_disk_budget_direction(self):
        spec = DtnSpec("x", disk_read_bps=4e9, disk_write_bps=2e9)
        assert spec.disk_budget_bps(writing=False) == 4e9
        assert spec.disk_budget_bps(writing=True) == 2e9


class TestDtnCluster:
    def make(self):
        c = DtnCluster()
        c.add(DtnSpec("A", nic_bps=6e9, disk_read_bps=4e9, disk_write_bps=2e9))
        c.add(DtnSpec("B", nic_bps=5e9, disk_read_bps=3e9, disk_write_bps=3e9))
        return c

    def test_duplicate_rejected(self):
        c = self.make()
        with pytest.raises(ValueError):
            c.add(DtnSpec("A"))

    def test_unknown_site(self):
        with pytest.raises(KeyError):
            self.make().spec("Z")

    def test_pseudo_capacities(self):
        caps = self.make().pseudo_capacities()
        assert caps[host_link("A")] == 6e9
        assert caps[disk_link("A", writing=True)] == 2e9
        assert caps[disk_link("A", writing=False)] == 4e9

    def test_mem_mem_uses_no_disk_links(self):
        links = self.make().transfer_pseudo_links(
            "A", "B", EndpointKind.MEMORY, EndpointKind.MEMORY
        )
        assert links == [host_link("A"), host_link("B")]

    def test_disk_disk_uses_read_and_write_pools(self):
        links = self.make().transfer_pseudo_links(
            "A", "B", EndpointKind.DISK, EndpointKind.DISK
        )
        assert disk_link("A", writing=False) in links
        assert disk_link("B", writing=True) in links

    def test_demand_cap_tightest_constraint(self):
        c = self.make()
        cap = c.transfer_demand_cap_bps(
            "A", "B", EndpointKind.DISK, EndpointKind.DISK
        )
        # src read 4G, dst write 3G, nics 6/5 -> 3G
        assert cap == pytest.approx(3e9)

    def test_demand_cap_mem_mem(self):
        c = self.make()
        cap = c.transfer_demand_cap_bps(
            "A", "B", EndpointKind.MEMORY, EndpointKind.MEMORY
        )
        assert cap == pytest.approx(5e9)


class TestTransferJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            TransferJob(0.0, "A", "B", size_bytes=0.0)
        with pytest.raises(ValueError):
            TransferJob(0.0, "A", "B", size_bytes=1.0, streams=0)


class TestSessionScript:
    def test_jobs_share_submit_time(self):
        script = SessionScript(100.0, "A", "B", file_sizes=[1e6, 2e6, 3e6])
        jobs = script.jobs()
        assert len(jobs) == 3
        assert all(j.submit_time == 100.0 for j in jobs)
        assert [j.size_bytes for j in jobs] == [1e6, 2e6, 3e6]

    def test_empty_script_rejected(self):
        with pytest.raises(ValueError):
            SessionScript(0.0, "A", "B", file_sizes=[])

    def test_jobs_with_gaps_spacing(self):
        script = SessionScript(0.0, "A", "B", file_sizes=[1e6, 1e6, 1e6])
        jobs = script.jobs_with_gaps(gaps_s=[5.0, -2.0], durations_s=[10.0, 10.0, 10.0])
        assert jobs[0].submit_time == 0.0
        assert jobs[1].submit_time == pytest.approx(15.0)
        assert jobs[2].submit_time == pytest.approx(23.0)

    def test_jobs_with_gaps_validation(self):
        script = SessionScript(0.0, "A", "B", file_sizes=[1e6, 1e6])
        with pytest.raises(ValueError):
            script.jobs_with_gaps(gaps_s=[], durations_s=[1.0, 1.0])
        with pytest.raises(ValueError):
            script.jobs_with_gaps(gaps_s=[1.0], durations_s=[1.0])

    def test_expand_scripts_sorted(self):
        a = SessionScript(50.0, "A", "B", file_sizes=[1e6])
        b = SessionScript(10.0, "A", "B", file_sizes=[1e6])
        jobs = expand_scripts([a, b])
        assert [j.submit_time for j in jobs] == [10.0, 50.0]
