"""Tests for composable multi-stage pipelines and first-class artifacts.

Covers the pipeline spec layer (``[[stages]]`` loading, DAG validation,
topological ordering), the artifact layer (typed reads, provenance
headers, set digests), the DAG-aware Runner (stage scheduling, cache
short-circuits, cross-spec resolution, exact dry-run plans, mid-stage
SIGTERM resume), and the CLI surfaces (pipeline ``run``, ``--dry-run``,
``cache stats --json``).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.cli import main
from repro.experiments import (
    Artifact,
    ArtifactSet,
    ExperimentSpec,
    PipelineSpec,
    ResultCache,
    Runner,
    StageSpec,
    canonical_json,
    cell_key,
    keys_digest,
    load_spec,
    register_scenario,
    scenario_needs_artifacts,
    spec_fingerprint,
)

# -- cheap scenarios registered for these tests ------------------------------


@register_scenario("pp-val")
def _pp_val(params, seed):
    return {"value": params["x"] * 10 + seed}


@register_scenario("pp-sum", needs_artifacts=True)
def _pp_sum(params, seed, artifacts):
    total = sum(
        a.result["value"] for aset in artifacts.values() for a in aset
    )
    n = sum(len(aset) for aset in artifacts.values())
    return {"total": total * params.get("factor", 1), "n": n, "seed": seed}


@register_scenario("pp-bad")
def _pp_bad(params, seed):
    raise ValueError("always broken")


@register_scenario("pp-s2", needs_artifacts=True)
def _pp_s2(params, seed, artifacts):
    time.sleep(float(params.get("sleep_s", 0.0)))
    return {"n": len(artifacts["workload"]), "x": params["x"], "seed": seed}


def _two_stage(seed=5, factor=1, xs=(1, 2)):
    """A workload grid feeding a single-cell pp-sum analysis."""
    return PipelineSpec(
        name="pipe",
        seed=seed,
        stages=(
            StageSpec(
                name="workload",
                spec=ExperimentSpec(
                    name="pipe/workload",
                    scenario="pp-val",
                    axes={"x": tuple(xs)},
                    seed=seed,
                ),
            ),
            StageSpec(
                name="analysis",
                spec=ExperimentSpec(
                    name="pipe/analysis",
                    scenario="pp-sum",
                    params={"factor": factor},
                    seed=seed,
                ),
                needs=("workload",),
            ),
        ),
    )


# -- pipeline spec layer -----------------------------------------------------


class TestPipelineSpec:
    def test_load_spec_returns_pipeline_for_stages(self, tmp_path):
        path = tmp_path / "pipe.toml"
        path.write_text(
            'name = "p"\n'
            "seed = 9\n"
            "[[stages]]\n"
            'name = "a"\n'
            'scenario = "pp-val"\n'
            "[stages.axes]\n"
            "x = [1, 2]\n"
            "[[stages]]\n"
            'name = "b"\n'
            'scenario = "pp-sum"\n'
            'needs = ["a"]\n'
        )
        pipe = load_spec(path)
        assert isinstance(pipe, PipelineSpec)
        assert pipe.name == "p"
        assert [s.name for s in pipe.stages] == ["a", "b"]
        # stage specs are namespaced and inherit the pipeline seed
        assert pipe.stage("a").spec.name == "p/a"
        assert pipe.stage("a").spec.seed == 9
        assert pipe.stage("b").needs == ("a",)
        assert pipe.base_dir == str(tmp_path)

    def test_load_spec_returns_flat_spec_unchanged(self, tmp_path):
        path = tmp_path / "flat.toml"
        path.write_text(
            'name = "f"\nscenario = "pp-val"\n[axes]\nx = [1]\n'
        )
        spec = load_spec(path)
        assert isinstance(spec, ExperimentSpec)
        # byte-identical to the historical loader
        assert spec == ExperimentSpec.from_file(path)
        assert spec_fingerprint(spec) == spec_fingerprint(
            ExperimentSpec.from_file(path)
        )

    def test_stage_seed_override_beats_pipeline_seed(self, tmp_path):
        path = tmp_path / "pipe.toml"
        path.write_text(
            'name = "p"\nseed = 9\n'
            '[[stages]]\nname = "a"\nscenario = "pp-val"\nseed = 3\n'
        )
        pipe = load_spec(path)
        assert pipe.stage("a").spec.seed == 3

    def test_duplicate_stage_names_rejected(self):
        spec = ExperimentSpec(name="s", scenario="pp-val")
        with pytest.raises(ValueError, match="duplicate stage"):
            PipelineSpec(
                name="p",
                stages=(
                    StageSpec(name="a", spec=spec),
                    StageSpec(name="a", spec=spec),
                ),
            )

    def test_unknown_internal_need_rejected(self):
        spec = ExperimentSpec(name="s", scenario="pp-sum")
        with pytest.raises(ValueError, match="unknown stage"):
            PipelineSpec(
                name="p",
                stages=(StageSpec(name="a", spec=spec, needs=("ghost",)),),
            )

    def test_self_need_rejected(self):
        spec = ExperimentSpec(name="s", scenario="pp-sum")
        with pytest.raises(ValueError, match="needs itself"):
            PipelineSpec(
                name="p",
                stages=(StageSpec(name="a", spec=spec, needs=("a",)),),
            )

    def test_cycle_rejected(self):
        spec = ExperimentSpec(name="s", scenario="pp-sum")
        with pytest.raises(ValueError, match="cycle"):
            PipelineSpec(
                name="p",
                stages=(
                    StageSpec(name="a", spec=spec, needs=("b",)),
                    StageSpec(name="b", spec=spec, needs=("a",)),
                ),
            )

    def test_stage_name_must_not_look_like_a_path(self):
        spec = ExperimentSpec(name="s", scenario="pp-val")
        with pytest.raises(ValueError, match="spec file path"):
            StageSpec(name="a.toml", spec=spec)

    def test_topological_order_with_declaration_tiebreak(self):
        spec = ExperimentSpec(name="s", scenario="pp-val")
        ana = ExperimentSpec(name="s2", scenario="pp-sum")
        pipe = PipelineSpec(
            name="p",
            stages=(
                StageSpec(name="late", spec=ana, needs=("b", "a")),
                StageSpec(name="b", spec=spec),
                StageSpec(name="a", spec=spec),
            ),
        )
        assert [s.name for s in pipe.stage_order()] == ["b", "a", "late"]

    def test_unknown_pipeline_and_stage_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline keys"):
            PipelineSpec.from_dict({"name": "p", "stages": [], "bogus": 1})
        with pytest.raises(ValueError, match="unknown stage keys"):
            PipelineSpec.from_dict(
                {"name": "p", "stages": [{"name": "a", "scenarioo": "x"}]}
            )

    def test_wrap_keeps_the_flat_spec_identical(self):
        flat = ExperimentSpec(
            name="f", scenario="pp-val", axes={"x": (1, 2)}, seed=4
        )
        pipe = PipelineSpec.wrap(flat)
        assert pipe.stages[0].spec is flat
        assert pipe.n_cells == flat.n_cells


# -- artifacts ---------------------------------------------------------------


def _mk_artifact(i, key="k"):
    return Artifact(
        scenario="pp-val",
        params={"x": i},
        seed=i,
        key=f"{key}{i}",
        result={"value": i},
        wall_s=0.0,
        cache_version=2,
        index=i,
    )


class TestArtifactSet:
    def test_query_filters_on_params(self):
        aset = ArtifactSet(name="w", artifacts=tuple(map(_mk_artifact, range(3))))
        assert [a.params["x"] for a in aset.query(x=1)] == [1]
        assert len(aset.query(x=99)) == 0
        assert aset.one(x=2).result == {"value": 2}
        with pytest.raises(LookupError):
            aset.one(x=99)
        with pytest.raises(LookupError):
            aset.one()  # three artifacts, not one

    def test_results_preserve_grid_order(self):
        aset = ArtifactSet(name="w", artifacts=tuple(map(_mk_artifact, range(3))))
        assert aset.results() == [{"value": 0}, {"value": 1}, {"value": 2}]

    def test_digest_is_the_ordered_key_hash(self):
        arts = tuple(map(_mk_artifact, range(2)))
        aset = ArtifactSet(name="w", artifacts=arts)
        assert aset.digest == keys_digest(["k0", "k1"])
        rev = ArtifactSet(name="w", artifacts=arts[::-1])
        assert rev.digest != aset.digest

    def test_digest_requires_keys(self):
        bad = Artifact(
            scenario="s", params={}, seed=0, key=None, result=None,
            wall_s=0.0, cache_version=2,
        )
        with pytest.raises(ValueError, match="without a content-addressed"):
            _ = ArtifactSet(name="w", artifacts=(bad,)).digest


class TestOpenArtifact:
    def test_provenance_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(cache=cache)
        res = runner.run_pipeline(_two_stage())
        cell = res.stage("analysis").cells[0]
        art = cache.open_artifact(cell.key)
        assert art is not None and art.cached
        assert art.scenario == "pp-sum"
        assert art.spec_name == "pipe/analysis"
        assert art.spec_fingerprint == res.stage("analysis").fingerprint
        assert art.index == 0
        assert art.inputs == {
            "workload": res.stage("workload").artifact_set().digest
        }
        assert art.result == cell.result

    def test_miss_and_legacy_payloads(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.open_artifact("0" * 64) is None
        # pre-provenance artifact: opens with provenance fields as None
        key = cell_key("pp-val", {"x": 1}, 0)
        cache.put(key, "pp-val", {"x": 1}, 0, {"value": 10}, 0.1)
        art = cache.open_artifact(key)
        assert art.spec_fingerprint is None and art.spec_name is None
        assert art.result == {"value": 10}


# -- the DAG-aware Runner ----------------------------------------------------


class TestRunPipeline:
    def test_two_stage_end_to_end_and_warm_rerun(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        runner = Runner(cache=cache, checkpoint_dir=tmp_path / "ck")
        pipe = _two_stage(seed=5)
        cold = runner.run_pipeline(pipe)
        assert cold.n_executed == 3 and cold.n_failed == 0
        # per-cell seeds: value = x*10 + derive-seeded seed; the analysis
        # read both workload cells
        summed = cold.stage("analysis").cells[0].result
        assert summed["n"] == 2
        assert summed["total"] == sum(
            c.result["value"] for c in cold.stage("workload").cells
        )
        # warm re-run executes nothing at all
        warm = runner.run_pipeline(pipe)
        assert warm.n_executed == 0
        assert warm.n_cached == 3
        assert canonical_json(
            warm.stage("analysis").results()
        ) == canonical_json(cold.stage("analysis").results())
        # no journals left behind
        assert list((tmp_path / "ck").glob("*.ckpt.jsonl")) == []

    def test_upstream_change_rekeys_downstream(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(cache=cache)
        runner.run_pipeline(_two_stage(xs=(1, 2)))
        grown = runner.run_pipeline(_two_stage(xs=(1, 2, 3)))
        # workload reuses the two old cells; analysis re-keys and re-runs
        assert grown.stage("workload").n_cached == 2
        assert grown.stage("workload").n_executed == 1
        assert grown.stage("analysis").n_executed == 1
        assert grown.stage("analysis").cells[0].result["n"] == 3

    def test_downstream_param_change_leaves_upstream_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(cache=cache)
        runner.run_pipeline(_two_stage(factor=1))
        changed = runner.run_pipeline(_two_stage(factor=2))
        assert changed.stage("workload").n_executed == 0
        assert changed.stage("analysis").n_executed == 1

    def test_analysis_scenario_refuses_flat_run(self):
        spec = ExperimentSpec(name="s", scenario="pp-sum")
        with pytest.raises(ValueError, match="consumes upstream artifacts"):
            Runner().run(spec)

    def test_plain_scenario_refuses_inputs(self):
        spec = ExperimentSpec(name="s", scenario="pp-val", params={"x": 1})
        aset = ArtifactSet(name="w", artifacts=())
        with pytest.raises(ValueError, match="takes no upstream artifacts"):
            Runner().run(spec, inputs={"w": aset})

    def test_analysis_stage_without_needs_fails_fast(self):
        pipe = PipelineSpec(
            name="p",
            stages=(
                StageSpec(
                    name="a",
                    spec=ExperimentSpec(name="p/a", scenario="pp-sum"),
                ),
            ),
        )
        with pytest.raises(ValueError, match="declares no needs"):
            Runner().run_pipeline(pipe)

    def test_quarantined_upstream_cancels_needing_stage(self, tmp_path):
        pipe = PipelineSpec(
            name="p",
            stages=(
                StageSpec(
                    name="bad",
                    spec=ExperimentSpec(name="p/bad", scenario="pp-bad"),
                ),
                StageSpec(
                    name="sum",
                    spec=ExperimentSpec(name="p/sum", scenario="pp-sum"),
                    needs=("bad",),
                ),
            ),
        )
        res = Runner(cache=ResultCache(tmp_path)).run_pipeline(pipe)
        # the broken stage quarantines; its consumer settles cancelled
        # (one-line reason, no execution) instead of the pipeline raising
        assert res.stage("bad").n_failed == 1
        cancelled = res.stage("sum")
        assert cancelled.n_failed == cancelled.n_cells == 1
        assert cancelled.n_executed == 0
        cell = cancelled.cells[0]
        assert cell.error == (
            "cancelled: needed stage 'bad' settled with 1 quarantined cell(s)"
        )
        assert cell.key is None and cancelled.fingerprint is None

    def test_cancellation_propagates_transitively(self, tmp_path):
        # bad -> sum -> s2: the grand-consumer reports the cancelled
        # middle stage, not the original culprit, so the chain is legible
        pipe = PipelineSpec(
            name="p",
            stages=(
                StageSpec(
                    name="bad",
                    spec=ExperimentSpec(name="p/bad", scenario="pp-bad"),
                ),
                StageSpec(
                    name="sum",
                    spec=ExperimentSpec(name="p/sum", scenario="pp-sum"),
                    needs=("bad",),
                ),
                StageSpec(
                    name="deep",
                    spec=ExperimentSpec(
                        name="p/deep", scenario="pp-s2", axes={"x": (1,)}
                    ),
                    needs=("sum",),
                ),
            ),
        )
        res = Runner(cache=ResultCache(tmp_path)).run_pipeline(pipe)
        assert res.stage("deep").cells[0].error == (
            "cancelled: needed stage 'sum' was cancelled"
        )

    def test_ordering_only_dependent_still_runs(self, tmp_path):
        # pp-val takes no artifacts: its needs only order execution, so
        # a broken upstream must not cancel it
        pipe = PipelineSpec(
            name="p",
            stages=(
                StageSpec(
                    name="bad",
                    spec=ExperimentSpec(name="p/bad", scenario="pp-bad"),
                ),
                StageSpec(
                    name="after",
                    spec=ExperimentSpec(
                        name="p/after", scenario="pp-val", axes={"x": (1, 2)}
                    ),
                    needs=("bad",),
                ),
            ),
        )
        res = Runner(cache=ResultCache(tmp_path)).run_pipeline(pipe)
        assert res.stage("after").n_failed == 0
        assert res.stage("after").n_executed == 2

    def test_cancellation_matches_between_serial_and_dag(self, tmp_path):
        pipe = PipelineSpec(
            name="p",
            stages=(
                StageSpec(
                    name="bad",
                    spec=ExperimentSpec(name="p/bad", scenario="pp-bad"),
                ),
                StageSpec(
                    name="ok",
                    spec=ExperimentSpec(
                        name="p/ok", scenario="pp-val", axes={"x": (1, 2)}
                    ),
                ),
                StageSpec(
                    name="sum",
                    spec=ExperimentSpec(name="p/sum", scenario="pp-sum"),
                    needs=("bad", "ok"),
                ),
            ),
        )
        serial = Runner(cache=ResultCache(tmp_path / "a")).run_pipeline(pipe)
        dag = Runner(jobs=2, cache=ResultCache(tmp_path / "b")).run_pipeline(
            pipe
        )
        for name in ("bad", "ok", "sum"):
            s, d = serial.stage(name), dag.stage(name)
            assert [c.error for c in s.cells] == [c.error for c in d.cells]
            assert [c.key for c in s.cells] == [c.key for c in d.cells]
        # the unrelated branch completed in both modes
        assert serial.stage("ok").n_failed == dag.stage("ok").n_failed == 0

    def test_pipeline_works_without_a_cache(self):
        # keys still compute (JSON-safe params), digests still fold
        res = Runner().run_pipeline(_two_stage())
        assert res.n_executed == 3 and res.n_failed == 0

    def test_parallel_pipeline_matches_serial(self, tmp_path):
        serial = Runner(cache=ResultCache(tmp_path / "a")).run_pipeline(
            _two_stage(xs=(1, 2, 3, 4))
        )
        parallel = Runner(
            jobs=2, cache=ResultCache(tmp_path / "b")
        ).run_pipeline(_two_stage(xs=(1, 2, 3, 4)))
        assert canonical_json(
            parallel.stage("analysis").results()
        ) == canonical_json(serial.stage("analysis").results())


class TestCrossSpecReads:
    def _write_flat(self, tmp_path, name="workload.toml"):
        path = tmp_path / name
        path.write_text(
            'name = "workload-grid"\n'
            'scenario = "pp-val"\n'
            "seed = 5\n"
            "[axes]\n"
            "x = [1, 2]\n"
        )
        return path

    def _write_pipeline(self, tmp_path, need="workload.toml"):
        path = tmp_path / "analysis.toml"
        path.write_text(
            'name = "cross"\n'
            "seed = 5\n"
            "[[stages]]\n"
            'name = "sum"\n'
            'scenario = "pp-sum"\n'
            f'needs = ["{need}"]\n'
        )
        return path

    def test_external_spec_resolves_with_zero_recompute(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        runner = Runner(cache=cache)
        flat_path = self._write_flat(tmp_path)
        flat = load_spec(flat_path)
        direct = runner.run(flat)
        assert direct.n_executed == 2

        pipe = load_spec(self._write_pipeline(tmp_path))
        res = runner.run_pipeline(pipe)
        upstream = res.stage("workload.toml")
        # the other spec's grid resolved entirely from the cache
        assert upstream.n_cached == 2 and upstream.n_executed == 0
        # and carries the *same* fingerprint as the direct run
        assert upstream.fingerprint == direct.fingerprint
        assert res.stage("sum").cells[0].result["n"] == 2

    def test_external_path_resolves_relative_to_pipeline_file(self, tmp_path):
        sub = tmp_path / "specs"
        sub.mkdir()
        self._write_flat(sub)
        pipe = load_spec(self._write_pipeline(sub))
        res = Runner(cache=ResultCache(tmp_path / "c")).run_pipeline(pipe)
        assert res.n_failed == 0

    def test_external_ref_to_a_pipeline_rejected(self, tmp_path):
        self._write_pipeline(tmp_path, need="other.toml")
        other = tmp_path / "other.toml"
        other.write_text(
            'name = "o"\n[[stages]]\nname = "a"\nscenario = "pp-val"\n'
        )
        pipe = load_spec(tmp_path / "analysis.toml")
        with pytest.raises(ValueError, match="itself a pipeline"):
            Runner().run_pipeline(pipe)

    def test_missing_external_spec_is_a_clear_error(self, tmp_path):
        pipe = load_spec(self._write_pipeline(tmp_path, need="ghost.toml"))
        with pytest.raises(ValueError, match="cannot load external"):
            Runner().run_pipeline(pipe)


class TestDryRun:
    def test_dry_run_executes_nothing_and_plans_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(cache=cache)
        pipe = _two_stage()
        plans = runner.dry_run(pipe)
        assert [p.name for p in plans] == ["workload", "analysis"]
        assert [p.n_cells for p in plans] == [2, 1]
        assert all(p.n_hits == 0 for p in plans)
        assert len(cache) == 0  # nothing executed, nothing written

        res = runner.run_pipeline(pipe)
        # the plan's keys are exactly the keys the real run produced
        ran_keys = {c.key for s in res.stages.values() for c in s.cells}
        assert {k for p in plans for k in p.keys} == ran_keys
        assert all(
            p.fingerprint == res.stage(p.name).fingerprint for p in plans
        )
        warm = runner.dry_run(pipe)
        assert all(p.n_hits == p.n_cells for p in warm)

    def test_dry_run_accepts_flat_specs(self, tmp_path):
        spec = ExperimentSpec(
            name="f", scenario="pp-val", axes={"x": (1, 2)}, seed=5
        )
        plans = Runner(cache=ResultCache(tmp_path)).dry_run(spec)
        assert len(plans) == 1 and plans[0].n_cells == 2
        # flat keys are the historical (inputs-free) keys
        assert plans[0].keys[0] == cell_key("pp-val", {"x": 1}, spec.cell_seed(0))


# -- CLI surfaces ------------------------------------------------------------


class TestPipelineCli:
    def _write_files(self, tmp_path):
        flat = tmp_path / "workload.toml"
        flat.write_text(
            'name = "w"\nscenario = "pp-val"\nseed = 5\n[axes]\nx = [1, 2]\n'
        )
        pipe = tmp_path / "pipe.toml"
        pipe.write_text(
            'name = "p"\nseed = 5\n'
            "[[stages]]\n"
            'name = "sum"\nscenario = "pp-sum"\nneeds = ["workload.toml"]\n'
        )
        return flat, pipe

    def test_run_pipeline_spec(self, tmp_path, capsys):
        _, pipe = self._write_files(tmp_path)
        rc = main(["run", str(pipe), "--cache-dir", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pipeline 'p'" in out
        assert "stage 'workload.toml' [pp-val]" in out
        assert "stage 'sum' [pp-sum]" in out
        assert "3 total, 3 executed" in out

    def test_dry_run_prints_census_and_executes_nothing(self, tmp_path, capsys):
        _, pipe = self._write_files(tmp_path)
        cache_dir = tmp_path / "c"
        rc = main(["run", str(pipe), "--cache-dir", str(cache_dir),
                   "--dry-run"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "nothing executed" in out
        assert "3 cell(s) total, 0 cached, 3 to execute" in out
        assert len(ResultCache(cache_dir)) == 0

        main(["run", str(pipe), "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        rc = main(["run", str(pipe), "--cache-dir", str(cache_dir),
                   "--dry-run"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "3 cell(s) total, 3 cached, 0 to execute" in out

    def test_flat_specs_still_run_through_the_cli(self, tmp_path, capsys):
        flat, _ = self._write_files(tmp_path)
        rc = main(["run", str(flat), "--cache-dir", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "campaign 'w'" in out and "2 executed" in out

    def test_cache_stats_json(self, tmp_path, capsys):
        _, pipe = self._write_files(tmp_path)
        cache_dir = tmp_path / "c"
        main(["run", str(pipe), "--cache-dir", str(cache_dir)])
        capsys.readouterr()
        rc = main(["cache", "--cache-dir", str(cache_dir), "stats", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        st = json.loads(out)
        assert st["n_artifacts"] == 3
        assert st["by_scenario"] == {"pp-val": 2, "pp-sum": 1}
        assert st["n_checkpoints"] == 0 and st["checkpoints"] == []
        assert st["n_tmp"] == 0
        assert st["root"] == str(cache_dir)


# -- SIGTERM mid-stage-2: resume executes exactly the remainder --------------

_PIPELINE_CHILD = textwrap.dedent(
    """
    import sys, time
    from repro.experiments import (
        ExperimentSpec, PipelineSpec, ResultCache, Runner, StageSpec,
        CampaignInterrupted, register_scenario,
    )

    @register_scenario("pp-val")
    def _val(params, seed):
        return {"value": params["x"] * 10 + seed}

    @register_scenario("pp-s2", needs_artifacts=True)
    def _s2(params, seed, artifacts):
        print("S2", params["x"], flush=True)
        time.sleep(float(params.get("sleep_s", 0.0)))
        return {"n": len(artifacts["workload"]), "x": params["x"], "seed": seed}

    pipeline = PipelineSpec(
        name="kpipe",
        seed=5,
        stages=(
            StageSpec(
                name="workload",
                spec=ExperimentSpec(
                    name="kpipe/workload", scenario="pp-val",
                    axes={"x": (1, 2)}, seed=5),
            ),
            StageSpec(
                name="analysis",
                spec=ExperimentSpec(
                    name="kpipe/analysis", scenario="pp-s2",
                    params={"sleep_s": 0.5}, axes={"x": (1, 2, 3, 4)},
                    seed=5),
                needs=("workload",),
            ),
        ),
    )
    runner = Runner(cache=ResultCache(sys.argv[1]), checkpoint_dir=sys.argv[2])
    print("READY", flush=True)
    try:
        runner.run_pipeline(pipeline)
    except CampaignInterrupted:
        sys.exit(75)
    print("DONE", flush=True)
    """
)


class TestSigtermMidStage2:
    def test_resume_executes_exactly_the_remainder(self, tmp_path):
        pipeline = PipelineSpec(
            name="kpipe",
            seed=5,
            stages=(
                StageSpec(
                    name="workload",
                    spec=ExperimentSpec(
                        name="kpipe/workload", scenario="pp-val",
                        axes={"x": (1, 2)}, seed=5),
                ),
                StageSpec(
                    name="analysis",
                    spec=ExperimentSpec(
                        name="kpipe/analysis", scenario="pp-s2",
                        params={"sleep_s": 0.5}, axes={"x": (1, 2, 3, 4)},
                        seed=5),
                    needs=("workload",),
                ),
            ),
        )
        reference = Runner(
            cache=ResultCache(tmp_path / "ref")
        ).run_pipeline(pipeline)

        script = tmp_path / "child.py"
        script.write_text(_PIPELINE_CHILD)
        cache_dir, ck_dir = tmp_path / "cache", tmp_path / "ck"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        child = subprocess.Popen(
            [sys.executable, str(script), str(cache_dir), str(ck_dir)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "READY"
            # wait for stage 2 to actually start, then land the SIGTERM
            # squarely inside it
            line = child.stdout.readline().strip()
            assert line.startswith("S2"), line
            time.sleep(0.2)
        finally:
            child.send_signal(signal.SIGTERM)
            rc = child.wait(timeout=30)
            child.stdout.close()
        assert rc == 75  # drained, journaled, resumable

        cache = ResultCache(cache_dir)
        settled_s2 = sum(
            1
            for p in cache.iter_artifacts()
            if '"scenario": "pp-s2"' in p.read_text()
        )
        assert 1 <= settled_s2 < 4  # the signal landed mid-stage-2

        resumed = Runner(
            cache=cache, checkpoint_dir=ck_dir
        ).run_pipeline(pipeline)
        # stage 1 comes back entirely from the cache; stage 2 executes
        # exactly the cells the kill left unfinished
        assert resumed.stage("workload").n_executed == 0
        assert resumed.stage("workload").n_cached == 2
        assert resumed.stage("analysis").n_cached == settled_s2
        assert resumed.stage("analysis").n_executed == 4 - settled_s2
        assert resumed.n_failed == 0
        assert canonical_json(
            resumed.stage("analysis").results()
        ) == canonical_json(reference.stage("analysis").results())
        # journals consumed
        assert list(ck_dir.glob("*.ckpt.jsonl")) == []


class TestRegistryFlags:
    def test_needs_artifacts_flag_is_queryable(self):
        assert scenario_needs_artifacts("pp-sum")
        assert not scenario_needs_artifacts("pp-val")
        assert scenario_needs_artifacts("pareto_front")
        assert scenario_needs_artifacts("managed_from_workload")
        assert not scenario_needs_artifacts("chaos")
