"""Unit tests for Eq. (1) byte attribution and Tables XI--XIII."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.snmp_correlation import (
    attributed_bytes,
    bins_within,
    correlation_tables,
    link_load_table,
)
from repro.gridftp.records import TransferLog
from repro.net.snmp import SnmpCounter


class TestAttributedBytes:
    def test_fully_contained_bins(self):
        # three bins of 30 s with 90 bytes each; transfer spans all three
        bins = np.array([0.0, 30.0, 60.0])
        counts = np.array([90.0, 90.0, 90.0])
        assert attributed_bytes(bins, counts, 0.0, 90.0) == pytest.approx(270.0)

    def test_partial_edges_pro_rated(self):
        bins = np.array([0.0, 30.0, 60.0])
        counts = np.array([30.0, 30.0, 30.0])
        # transfer [15, 75): half of first, all of second, half of third
        assert attributed_bytes(bins, counts, 15.0, 60.0) == pytest.approx(60.0)

    def test_transfer_inside_one_bin(self):
        bins = np.array([0.0])
        counts = np.array([300.0])
        # 10 of the 30 seconds -> one third of the bin
        assert attributed_bytes(bins, counts, 10.0, 10.0) == pytest.approx(100.0)

    def test_gap_in_bins_contributes_zero(self):
        bins = np.array([0.0, 60.0])  # bin [30, 60) missing
        counts = np.array([30.0, 30.0])
        assert attributed_bytes(bins, counts, 0.0, 90.0) == pytest.approx(60.0)

    def test_no_overlap(self):
        bins = np.array([0.0])
        counts = np.array([100.0])
        assert attributed_bytes(bins, counts, 100.0, 10.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            attributed_bytes([0.0], [1.0], 0.0, -1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            attributed_bytes([0.0, 30.0], [1.0], 0.0, 10.0)

    def test_consistency_with_snmp_counter(self):
        """Attribution over a counter fed by one flow recovers its bytes
        exactly when the transfer is bin-aligned."""
        c = SnmpCounter(bin_seconds=30.0)
        c.add_bytes(30.0, 120.0, 999.0)
        bins, counts = c.series()
        assert attributed_bytes(bins, counts, 30.0, 90.0) == pytest.approx(999.0)

    @given(
        st.floats(min_value=0, max_value=500),
        st.floats(min_value=1.0, max_value=500),
    )
    @settings(max_examples=60)
    def test_attribution_bounded_by_total(self, start, dur):
        c = SnmpCounter(bin_seconds=30.0)
        c.add_bytes(5.0, 700.0, 5000.0)
        bins, counts = c.series()
        b = attributed_bytes(bins, counts, start, dur)
        assert 0.0 <= b <= 5000.0 + 1e-6


class TestBinsWithin:
    def test_selects_overlapping(self):
        bins = np.arange(0, 300, 30.0)
        counts = np.arange(10.0)
        t, b = bins_within(bins, counts, 45.0, 100.0)
        # overlap [45, 145): bins starting 30, 60, 90, 120
        assert np.array_equal(t, [30.0, 60.0, 90.0, 120.0])
        assert np.array_equal(b, [1.0, 2.0, 3.0, 4.0])


def synthetic_experiment(other_scale=0.0, seed=0):
    """n transfers on one link; other traffic scaled by other_scale."""
    rng = np.random.default_rng(seed)
    n = 40
    sizes = rng.uniform(30e9, 36e9, n)
    tput = rng.uniform(1e9, 3e9, n)
    durations = sizes * 8 / tput
    starts = np.arange(n) * 2000.0
    counter = SnmpCounter(bin_seconds=30.0)
    for s, d, size in zip(starts, durations, sizes):
        counter.add_bytes(s, s + d, size)
    if other_scale > 0:
        for _ in range(200):
            t0 = rng.uniform(0, starts[-1])
            counter.add_bytes(t0, t0 + 60.0, other_scale * rng.uniform(1e8, 1e9))
    log = TransferLog(
        {"start": starts, "duration": durations, "size": sizes,
         "remote_host": [1] * n}
    )
    bins, counts = counter.series()
    return log, {"rt1": (bins, counts)}


class TestCorrelationTables:
    def test_alpha_dominated_link_high_correlation(self):
        log, links = synthetic_experiment(other_scale=0.0)
        total, other = correlation_tables(log, links)
        assert total.overall["rt1"] > 0.7
        # remaining traffic is only attribution noise: low correlation
        assert abs(other.overall["rt1"]) < 0.5

    def test_quartile_rows_present(self):
        log, links = synthetic_experiment()
        total, _ = correlation_tables(log, links)
        assert set(total.per_quartile) == {1, 2, 3, 4}
        assert set(total.per_quartile[1]) == {"rt1"}

    def test_heavy_other_traffic_lowers_correlation(self):
        log_clean, links_clean = synthetic_experiment(other_scale=0.0)
        log_noisy, links_noisy = synthetic_experiment(other_scale=50.0)
        clean, _ = correlation_tables(log_clean, links_clean)
        noisy, _ = correlation_tables(log_noisy, links_noisy)
        assert noisy.overall["rt1"] < clean.overall["rt1"]

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            correlation_tables(TransferLog(), {})


class TestLinkLoadTable:
    def test_load_near_transfer_rate_when_alone(self):
        log, links = synthetic_experiment(other_scale=0.0)
        loads = link_load_table(log, links)
        tput = log.throughput_bps
        # average link load during a transfer ~ its own throughput
        assert loads["rt1"].mean == pytest.approx(tput.mean(), rel=0.15)

    def test_load_rises_with_other_traffic(self):
        log, links_clean = synthetic_experiment(other_scale=0.0, seed=3)
        _, links_noisy = synthetic_experiment(other_scale=20.0, seed=3)
        clean = link_load_table(log, links_clean)["rt1"]
        noisy = link_load_table(log, links_noisy)["rt1"]
        assert noisy.mean > clean.mean
