"""Unit and property tests for striping (MODE E) and the control channel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridftp.control import (
    FtpError,
    GridFtpServerSim,
    ThirdPartyClient,
)
from repro.gridftp.records import TransferType
from repro.gridftp.striping import (
    StripeReassembler,
    block_plan,
    stripe_byte_counts,
)


class TestBlockPlan:
    def test_blocks_cover_file_exactly(self):
        plan = block_plan(1000, 300, 2)
        assert [b.offset for b in plan] == [0, 300, 600, 900]
        assert [b.length for b in plan] == [300, 300, 300, 100]
        assert [b.stripe for b in plan] == [0, 1, 0, 1]

    def test_zero_size_empty_plan(self):
        assert block_plan(0, 100, 3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            block_plan(-1, 100, 1)
        with pytest.raises(ValueError):
            block_plan(100, 0, 1)
        with pytest.raises(ValueError):
            block_plan(100, 10, 0)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=16, max_value=777),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_plan_partitions_file(self, size, block, stripes):
        plan = block_plan(size, block, stripes)
        assert sum(b.length for b in plan) == size
        cursor = 0
        for b in plan:
            assert b.offset == cursor
            assert 0 <= b.stripe < stripes
            cursor += b.length


class TestStripeByteCounts:
    @given(
        st.integers(min_value=0, max_value=500_000),
        st.integers(min_value=64, max_value=65536),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_closed_form_matches_plan(self, size, block, stripes):
        counts = stripe_byte_counts(size, block, stripes)
        plan = block_plan(size, block, stripes)
        expected = np.zeros(stripes, dtype=np.int64)
        for b in plan:
            expected[b.stripe] += b.length
        assert np.array_equal(counts, expected)

    def test_balance_bound(self):
        counts = stripe_byte_counts(10**9, 2**18, 4)
        assert counts.max() - counts.min() <= 2**18


class TestStripeReassembler:
    def test_in_order_completion(self):
        r = StripeReassembler(250)
        r.receive(0, 100)
        r.receive(100, 100)
        assert not r.complete
        r.receive(200, 50)
        assert r.complete
        assert r.restart_marker == 250

    def test_out_of_order_restart_marker(self):
        r = StripeReassembler(300)
        r.receive(200, 100)
        assert r.restart_marker == 0  # no contiguous prefix yet
        r.receive(0, 100)
        assert r.restart_marker == 100
        r.receive(100, 100)
        assert r.restart_marker == 300 and r.complete

    def test_missing_ranges(self):
        r = StripeReassembler(300)
        r.receive(100, 50)
        assert r.missing_ranges() == [(0, 100), (150, 300)]

    def test_overlap_rejected(self):
        r = StripeReassembler(300)
        r.receive(0, 100)
        with pytest.raises(ValueError, match="overlap"):
            r.receive(50, 100)

    def test_out_of_range_rejected(self):
        r = StripeReassembler(100)
        with pytest.raises(ValueError):
            r.receive(50, 100)

    def test_zero_file_complete(self):
        assert StripeReassembler(0).complete

    @given(st.integers(min_value=1, max_value=5000), st.randoms())
    @settings(max_examples=60)
    def test_any_arrival_order_reassembles(self, size, pyrandom):
        plan = block_plan(size, 251, 3)
        pyrandom.shuffle(plan)
        r = StripeReassembler(size)
        for b in plan:
            r.receive(b.offset, b.length)
        assert r.complete
        assert r.bytes_received == size
        assert r.missing_ranges() == []


class TestControlChannel:
    def make_server(self):
        srv = GridFtpServerSim("anl-dtn1", host_id=1)
        srv.add_file("/data/run42.nc", 16e9)
        return srv

    def test_login_flow(self):
        chan = self.make_server().connect()
        assert chan.handle("USER alice").startswith("331")
        assert chan.handle("PASS secret").startswith("230")

    def test_commands_require_auth(self):
        chan = self.make_server().connect()
        with pytest.raises(FtpError) as e:
            chan.handle("TYPE I")
        assert e.value.code == 530

    def test_pass_without_user(self):
        chan = self.make_server().connect()
        with pytest.raises(FtpError) as e:
            chan.handle("PASS x")
        assert e.value.code == 503

    def test_unknown_command(self):
        chan = self.make_server().connect()
        with pytest.raises(FtpError) as e:
            chan.handle("FEAT")
        assert e.value.code == 502

    def test_size_and_missing_file(self):
        chan = self.make_server().connect()
        chan.handle("USER a"); chan.handle("PASS b")
        assert chan.handle("SIZE /data/run42.nc") == "213 16000000000.0"
        with pytest.raises(FtpError) as e:
            chan.handle("SIZE /nope")
        assert e.value.code == 550

    def test_retr_needs_binary_type(self):
        chan = self.make_server().connect()
        chan.handle("USER a"); chan.handle("PASS b")
        chan.handle("PASV")
        with pytest.raises(FtpError) as e:
            chan.handle("RETR /data/run42.nc")
        assert e.value.code == 550

    def test_retr_needs_data_connection(self):
        chan = self.make_server().connect()
        chan.handle("USER a"); chan.handle("PASS b"); chan.handle("TYPE I")
        with pytest.raises(FtpError) as e:
            chan.handle("RETR /data/run42.nc")
        assert e.value.code == 425

    def test_parallelism_opts(self):
        chan = self.make_server().connect()
        chan.handle("USER a"); chan.handle("PASS b")
        assert "8" in chan.handle("OPTS RETR Parallelism=8,8,8;")
        assert chan.session.parallelism == 8

    def test_bad_mode(self):
        chan = self.make_server().connect()
        chan.handle("USER a"); chan.handle("PASS b")
        with pytest.raises(FtpError):
            chan.handle("MODE Z")


class TestThirdPartyTransfer:
    def test_full_dance_logs_both_sides(self):
        src = GridFtpServerSim("anl", host_id=1)
        dst = GridFtpServerSim("nersc", host_id=0)
        src.add_file("/data/big.h5", 20e9)
        client = ThirdPartyClient(user="testop")
        duration = client.transfer(
            src, dst, "/data/big.h5", rate_bps=2e9, start_time=1000.0,
            parallelism=8,
        )
        assert duration == pytest.approx(80.0)
        src_log = src.log()
        dst_log = dst.log()
        assert len(src_log) == len(dst_log) == 1
        assert src_log.record(0).transfer_type is TransferType.RETR
        assert dst_log.record(0).transfer_type is TransferType.STOR
        assert src_log.record(0).remote_host == 0
        assert dst_log.record(0).remote_host == 1
        assert dst.file_size("/data/big.h5") == 20e9  # file now exists there

    def test_missing_source_file(self):
        src = GridFtpServerSim("a", 1)
        dst = GridFtpServerSim("b", 2)
        with pytest.raises(FtpError) as e:
            ThirdPartyClient().transfer(src, dst, "/nope")
        assert e.value.code == 550

    def test_bad_rate(self):
        src = GridFtpServerSim("a", 1)
        src.add_file("/f", 1e9)
        dst = GridFtpServerSim("b", 2)
        with pytest.raises(ValueError):
            ThirdPartyClient().transfer(src, dst, "/f", rate_bps=0.0)
