"""Chaos-campaign acceptance tests: retry, fallback, flap recovery.

Each test pins a seed and asserts on the exact recovery behaviour the
fault-injection subsystem must produce — the three demonstrations the
subsystem exists for:

(a) reservation retries with backoff succeeding after injected IDC
    rejections;
(b) fallback-to-IP engaging when VC setup exceeds the deadline (and
    migrating onto the circuit once it activates);
(c) a mid-transfer circuit flap recovered via restart markers.
"""

import dataclasses

import numpy as np
import pytest

from repro.gridftp.client import TransferJob
from repro.gridftp.reliability import RestartPolicy
from repro.net.topology import esnet_like
from repro.sim.experiment import FluidSimulator
from repro.sim.scenarios import ChaosConfig, chaos_sweep, default_dtns, run_chaos
from repro.vc.circuits import VirtualCircuit


class TestRetryAcceptance:
    """(a) rejections are retried with backoff and the session completes."""

    def test_rejections_retried_to_success(self):
        report = run_chaos(ChaosConfig(n_jobs=8, rejection_prob=0.4), seed=7)
        assert report.n_idc_rejections > 0
        assert report.stats.n_retries == report.n_idc_rejections
        assert report.stats.n_failures == 0
        # backoff kept every retry within the setup deadline: no fallbacks
        assert report.modes == ("vc",) * 8
        assert report.n_completed == 8
        assert report.availability == 1.0
        # control-plane noise alone does not hurt goodput
        assert report.goodput_degradation == pytest.approx(0.0, abs=0.02)
        assert report.p99_inflation == pytest.approx(1.0, abs=0.05)

    def test_deterministic_under_seed(self):
        cfg = ChaosConfig(n_jobs=6, rejection_prob=0.4, flaps_per_hour=20.0)
        a = run_chaos(cfg, seed=13)
        b = run_chaos(cfg, seed=13)
        assert a == b
        c = run_chaos(cfg, seed=14)
        assert (a.n_idc_rejections, a.flaps_per_job) != (
            c.n_idc_rejections, c.flaps_per_job
        )


class TestFallbackAcceptance:
    """(b) setup past the deadline falls back to IP, then migrates."""

    def test_timeouts_trigger_fallback_and_migration(self):
        report = run_chaos(ChaosConfig(n_jobs=8, setup_timeout_prob=0.5), seed=3)
        assert report.n_setup_timeouts > 0
        # every timed-out setup (240 s extra > 120 s deadline) fell back
        assert report.stats.n_fallbacks == report.n_setup_timeouts
        assert report.stats.n_migrations == report.n_setup_timeouts
        assert report.modes.count("migrate") == report.n_setup_timeouts
        # fallback means the transfer still completes
        assert report.n_completed == 8

    def test_fallback_without_migration(self):
        from repro.vc.policy import FallbackPolicy

        cfg = ChaosConfig(
            n_jobs=8, setup_timeout_prob=0.5,
            fallback=FallbackPolicy(migrate_on_activation=False),
        )
        report = run_chaos(cfg, seed=3)
        assert report.stats.n_migrations == 0
        assert report.modes.count("ip") == report.n_setup_timeouts
        assert report.n_completed == 8


class TestFlapAcceptance:
    """(c) mid-transfer flaps are survived through restart markers."""

    def test_flaps_recovered_with_bounded_rollback(self):
        cfg = ChaosConfig(n_jobs=8, flaps_per_hour=40.0)
        report = run_chaos(cfg, seed=5)
        assert report.n_flaps_injected > 0
        assert report.n_circuit_flaps_seen == report.n_flaps_injected
        # markers lost something, but far less than one whole transfer
        assert report.marker_rollback_bytes > 0
        assert report.marker_rollback_bytes < cfg.job_bytes
        # every flapped job still finished
        assert report.n_completed == 8
        assert report.availability < 1.0
        # flaps cost real time: the tail inflates, goodput degrades
        assert report.p99_inflation > 1.0
        assert 0.0 < report.goodput_degradation < 0.5

    def test_rollback_bounded_by_marker_interval(self):
        """Each flap re-sends at most one marker interval of bytes."""
        cfg = ChaosConfig(n_jobs=6, flaps_per_hour=40.0)
        report = run_chaos(cfg, seed=5)
        per_flap = cfg.restart.marker_interval_bytes
        assert report.marker_rollback_bytes <= report.n_circuit_flaps_seen * per_flap


class TestChaosSweep:
    def test_sweep_reports_per_rate(self):
        reports = chaos_sweep([0.0, 30.0], seed=11)
        assert [r.flaps_per_hour for r in reports] == [0.0, 30.0]
        calm, stormy = reports
        assert calm.n_flaps_injected == 0
        assert calm.marker_rollback_bytes == 0.0
        assert stormy.n_flaps_injected > 0
        # instability costs availability and tail latency
        assert stormy.availability < calm.availability
        assert stormy.p99_inflation > calm.p99_inflation

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(n_jobs=0)
        with pytest.raises(ValueError):
            ChaosConfig(job_bytes=-1.0)

    def test_sweep_grid_over_control_plane_axes(self):
        """rejection x timeout x flap: a full cross-product, labelled."""
        reports = chaos_sweep(
            [0.0, 30.0],
            seed=11,
            config=ChaosConfig(n_jobs=4),
            rejection_probs=[0.0, 0.4],
            timeout_probs=[0.0, 0.5],
        )
        assert len(reports) == 8
        # grid order: rejection outermost, then timeout, flap innermost
        grid = [(r.rejection_prob, r.setup_timeout_prob, r.flaps_per_hour)
                for r in reports]
        assert grid == [
            (rj, to, fl)
            for rj in (0.0, 0.4)
            for to in (0.0, 0.5)
            for fl in (0.0, 30.0)
        ]
        calm = reports[0]
        assert calm.n_idc_rejections == 0 and calm.n_setup_timeouts == 0
        noisy = [r for r in reports if r.rejection_prob > 0]
        assert any(r.n_idc_rejections > 0 for r in noisy)
        timed = [r for r in reports if r.setup_timeout_prob > 0]
        assert any(r.n_setup_timeouts > 0 for r in timed)
        # probe counters ride along on every report
        assert all(r.n_events > 0 for r in reports)
        assert all(r.n_alloc_passes > 0 for r in reports)
        assert all(r.mean_flows_per_pass > 0 for r in reports)

    def test_single_axis_sweep_unchanged_by_default_grid(self):
        """Legacy calls (flap axis only) see identical reports.

        Omitting the control-plane axes pins them at the config defaults
        (0.3 rejection, 0.2 timeout); spelling those out as one-point
        axes must reproduce the same campaigns bit for bit.
        """
        legacy = chaos_sweep([0.0, 30.0], seed=11)
        gridded = chaos_sweep([0.0, 30.0], seed=11,
                              rejection_probs=[0.3], timeout_probs=[0.2])
        assert legacy == gridded


class TestSimulatorFlapMechanics:
    """The FluidSimulator-level wiring the campaigns are built on."""

    def _sim(self, restart=None):
        topo = esnet_like()
        return topo, FluidSimulator(topo, default_dtns(topo),
                                    restart_policy=restart)

    def _circuit(self, topo, rate=2e9):
        return VirtualCircuit(
            circuit_id=901, path=tuple(topo.path("NERSC", "ORNL")),
            rate_bps=rate, start_time=0.0, end_time=10_000.0,
        )

    def _clean_duration(self, job):
        topo, sim = self._sim()
        sim.submit(job, vc=self._circuit(topo))
        return float(sim.run().log.duration[0])

    def test_flap_stalls_flow_without_restart_policy(self):
        topo, sim = self._sim(restart=None)
        vc = self._circuit(topo)
        job = TransferJob(submit_time=0.0, src="NERSC", dst="ORNL",
                          size_bytes=2e9, streams=8)
        sim.submit(job, vc=vc)
        sim.inject_circuit_flap(vc, 6.0, 16.0)
        result = sim.run()
        assert sim.n_circuit_flaps == 1
        assert sim.marker_rollback_bytes == 0.0
        # a pure stall adds exactly the outage length
        dur = float(result.log.duration[0])
        assert dur == pytest.approx(self._clean_duration(job) + 10.0, rel=0.05)

    def test_flap_with_markers_adds_rollback_and_reconnect(self):
        policy = RestartPolicy(marker_interval_bytes=64e6, reconnect_s=5.0)
        topo, sim = self._sim(restart=policy)
        vc = self._circuit(topo)
        job = TransferJob(submit_time=0.0, src="NERSC", dst="ORNL",
                          size_bytes=2e9, streams=8)
        sim.submit(job, vc=vc)
        sim.inject_circuit_flap(vc, 6.0, 16.0)
        result = sim.run()
        assert sim.n_circuit_flaps == 1
        # the partial marker segment in flight at t=6 is lost
        assert 0.0 < sim.marker_rollback_bytes < 64e6
        extra = float(result.log.duration[0]) - self._clean_duration(job)
        rollback_s = sim.marker_rollback_bytes * 8.0 / 2e9
        assert extra == pytest.approx(10.0 + 5.0 + rollback_s, rel=0.05)

    def test_migration_gains_circuit_guarantee(self):
        topo, sim = self._sim()
        vc = self._circuit(topo, rate=3e9)
        # congestion: two fat best-effort contenders on the same path
        for t in (0.0, 0.5):
            sim.submit(TransferJob(submit_time=t, src="NERSC", dst="ORNL",
                                   size_bytes=40e9, streams=8))
        job = TransferJob(submit_time=1.0, src="NERSC", dst="ORNL",
                          size_bytes=10e9, streams=8)
        fid = sim.submit(job)
        sim.migrate_flow(fid, vc, at_time=30.0)
        migrated = sim.run()

        topo2, sim2 = self._sim()
        for t in (0.0, 0.5):
            sim2.submit(TransferJob(submit_time=t, src="NERSC", dst="ORNL",
                                    size_bytes=40e9, streams=8))
        sim2.submit(job)
        squeezed = sim2.run()

        def dur_of(log, size):
            idx = int(np.argmin(np.abs(log.size - size)))
            return float(log.duration[idx])

        assert dur_of(migrated.log, 10e9) < dur_of(squeezed.log, 10e9)

    def test_migrating_a_finished_flow_is_a_noop(self):
        topo, sim = self._sim()
        vc = self._circuit(topo)
        fid = sim.submit(TransferJob(submit_time=0.0, src="NERSC", dst="ORNL",
                                     size_bytes=1e8, streams=8))
        sim.migrate_flow(fid, vc, at_time=5_000.0)
        result = sim.run()
        assert len(result.log) == 1

    def test_fresh_ramp_migration_costs_a_slow_start(self):
        """fresh_ramp=True re-enters slow start; channel reuse does not.

        A client that opens new data channels onto the circuit pays the
        TCP startup penalty again at migration time, so its transfer
        takes strictly longer than one that rebinds its warmed channels
        — and both must still complete on the circuit.
        """
        job = TransferJob(submit_time=0.0, src="NERSC", dst="ORNL",
                          size_bytes=20e9, streams=8)
        durations = {}
        for fresh in (False, True):
            topo, sim = self._sim()
            vc = self._circuit(topo, rate=3e9)
            fid = sim.submit(job)
            sim.migrate_flow(fid, vc, at_time=10.0, fresh_ramp=fresh)
            result = sim.run()
            assert len(result.log) == 1
            durations[fresh] = float(result.log.duration[0])
        assert durations[True] > durations[False]
        # the gap is a startup-scale pause, not a stall for the ages
        assert durations[True] - durations[False] < 60.0

    def test_flap_validation(self):
        topo, sim = self._sim()
        vc = self._circuit(topo)
        with pytest.raises(ValueError):
            sim.inject_circuit_flap(vc, 10.0, 10.0)
        with pytest.raises(ValueError):
            sim.migrate_flow(0, vc, at_time=-1.0)


class TestManagedServiceFlapWiring:
    def test_bound_task_resumes_through_flap(self):
        from repro.gridftp.reliability import CircuitOutageTracker
        from repro.gridftp.transfer_service import ManagedTransferService, TaskState

        t = [0.0]
        tracker = CircuitOutageTracker(lambda: t[0])
        vc = VirtualCircuit(circuit_id=1, path=("a", "b"), rate_bps=1e9,
                            start_time=0.0, end_time=1e6)
        tracker.watch(vc)
        vc.activate()
        t[0] = 4.0
        vc.fail()
        t[0] = 10.0
        vc.restore()

        svc = ManagedTransferService(
            rate_for=lambda s, d: 1e9,
            restart_policy=RestartPolicy(marker_interval_bytes=64e6,
                                         reconnect_s=2.0),
        )
        tid = svc.submit(0, 1, [2e9])
        svc.bind_circuit(tid, tracker)
        svc.run(rng=np.random.default_rng(0))
        task = svc.task(tid)
        assert task.state is TaskState.SUCCEEDED
        assert svc.n_flaps_recovered == 1
        kinds = [e.event for e in svc.events_for(tid)]
        assert "circuit-flap" in kinds
        # the flap cost wall time: outage + reconnect + marker rollback
        rec = svc.log()
        assert float(rec.duration[0]) > 2e9 * 8.0 / 1e9

    def test_bind_unknown_task_rejected(self):
        from repro.gridftp.reliability import CircuitOutageTracker
        from repro.gridftp.transfer_service import ManagedTransferService

        svc = ManagedTransferService(rate_for=lambda s, d: 1e9)
        with pytest.raises(KeyError):
            svc.bind_circuit(99, CircuitOutageTracker(lambda: 0.0))


class TestChaosCli:
    def test_chaos_subcommand_runs(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--jobs", "4", "--seed", "5",
                     "--flaps-per-hour", "40", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "flaps/h" in out
        assert "job  0" in out

    def test_chaos_sweep_flag(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--jobs", "4", "--sweep", "0,30"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3


class TestLambdaStationRecoveryStats:
    def test_stats_replace_ad_hoc_counter(self):
        from repro.vc.lambdastation import LambdaStation
        from repro.vc.oscars import OscarsIDC

        topo = esnet_like()
        ls = LambdaStation(topo, OscarsIDC(topo))
        assert ls.stats == dataclasses.replace(ls.stats)
        assert ls.n_vc_fallbacks == ls.stats.n_fallbacks == 0
