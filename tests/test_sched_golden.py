"""Golden-pin bit-exactness tests for the scheduling refactor.

``tests/golden/sched_pins.json`` was captured from the **pre-refactor**
code (before the :mod:`repro.sched` seam existed).  These tests assert
that the refactored call sites, driven by the ``fcfs`` policy, still
reproduce every pinned golden path byte for byte — the chaos campaign,
the managed-service campaign, and the load-test twin (censuses *and*
latency quantiles; wall-clock fields are excluded from the pins by
construction).  The CI ``sched-smoke`` job pins the same cells through
the ``repro-gridftp run`` surface.
"""

import json
import pathlib

import pytest

PINS_PATH = pathlib.Path(__file__).parent / "golden" / "sched_pins.json"


@pytest.fixture(scope="module")
def pins():
    return json.loads(PINS_PATH.read_text())


def _loadtest_pin(report):
    """The deterministic slice of a LoadTestReport the pins carry."""
    return {
        "census": report.census(),
        "latency_p50_s": report.latency_p50_s,
        "latency_p95_s": report.latency_p95_s,
        "latency_p99_s": report.latency_p99_s,
        "latency_mean_s": report.latency_mean_s,
        "latency_max_s": report.latency_max_s,
        "duration_s": report.duration_s,
        "outstanding_max": report.outstanding_max,
        "n_outstanding_samples": report.n_outstanding_samples,
        "retry_after_max_s": report.retry_after_max_s,
    }


def test_chaos_campaign_is_bit_exact(pins):
    from repro.experiments.campaigns import (
        chaos_config_from_params,
        report_to_dict,
        run_chaos,
    )

    pin = pins["chaos"]
    config = chaos_config_from_params(pin["params"])
    report = run_chaos(config, seed=pin["seed"])
    assert report_to_dict(report) == pin["report"]
    # an explicit scheduler="fcfs" is the same campaign, not a variant
    explicit = run_chaos(config, seed=pin["seed"], scheduler="fcfs")
    assert report_to_dict(explicit) == pin["report"]


def test_managed_campaign_is_bit_exact(pins):
    from repro.experiments.campaigns import (
        managed_config_from_params,
        run_managed_chaos,
    )

    pin = pins["managed"]
    config = managed_config_from_params(pin["params"])
    report = run_managed_chaos(config, seed=pin["seed"])
    assert report.as_dict() == pin["report"]
    explicit = run_managed_chaos(config, seed=pin["seed"], scheduler="fcfs")
    assert explicit.as_dict() == pin["report"]


@pytest.mark.parametrize("case", [0, 1])
def test_loadtest_twin_is_bit_exact(pins, case):
    from repro.service.loadtest import run_loadtest_sim

    pin = pins["loadtest"][case]
    report = run_loadtest_sim(pin["params"], pin["seed"])
    assert _loadtest_pin(report) == pin["pin"]
    assert report.scheduler == "fcfs"
    # the explicit name routes through the same policy object
    explicit = run_loadtest_sim(
        dict(pin["params"], scheduler="fcfs"), pin["seed"]
    )
    assert _loadtest_pin(explicit) == pin["pin"]


def test_sched_smoke_cells_are_bit_exact(pins):
    """The CI smoke grid's per-cell censuses, pinned at the seed rule."""
    from repro.experiments.spec import derive_seed
    from repro.service.loadtest import run_loadtest_sim

    smoke = pins["sched_smoke"]
    for cell_seed, want in sorted(
        smoke["cells"].items(), key=lambda kv: int(kv[0])
    ):
        assert int(cell_seed) in {
            derive_seed(smoke["spec_seed"], 0),
            derive_seed(smoke["spec_seed"], 1),
        }
        report = run_loadtest_sim(smoke["params"], int(cell_seed))
        assert report.census() == want, f"smoke cell {cell_seed} drifted"


def test_other_policies_share_the_workload_but_may_diverge(pins):
    """predictive/global see the pinned workload; ledgers stay balanced."""
    from repro.service.loadtest import run_loadtest_sim

    pin = pins["loadtest"][0]
    for name in ("predictive", "global"):
        report = run_loadtest_sim(
            dict(pin["params"], scheduler=name), pin["seed"]
        )
        report.validate()
        # n_offered is the workload; everything downstream (including
        # n_invalid — shed-before-validation depends on occupancy) is
        # an outcome the policy is allowed to change
        assert report.n_offered == pin["pin"]["census"]["n_offered"]
