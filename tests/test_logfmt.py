"""Unit tests for the usage and netlogger log formats."""

import io

import numpy as np
import pytest

from repro.gridftp.logfmt import (
    format_netlogger_line,
    parse_netlogger_line,
    read_netlogger_log,
    read_usage_log,
    write_netlogger_log,
    write_usage_log,
)
from repro.gridftp.records import ANONYMIZED_HOST, TransferLog, TransferType


def sample_log(n=7, seed=2):
    rng = np.random.default_rng(seed)
    return TransferLog(
        {
            "start": np.sort(rng.uniform(0, 1e6, n)).round(6),
            "duration": rng.uniform(0.5, 500, n).round(6),
            "size": rng.integers(1e3, 1e10, n).astype(float),
            "transfer_type": rng.integers(0, 2, n),
            "streams": rng.integers(1, 9, n),
            "stripes": rng.integers(1, 5, n),
            "tcp_buffer": rng.integers(0, 1 << 22, n),
            "block_size": np.full(n, 262144),
            "local_host": rng.integers(0, 5, n),
            "remote_host": rng.integers(0, 5, n),
        }
    )


class TestUsageFormat:
    def test_roundtrip_file(self, tmp_path):
        log = sample_log()
        path = tmp_path / "usage.log"
        write_usage_log(log, path)
        assert read_usage_log(path) == log

    def test_roundtrip_stream(self):
        log = sample_log(3)
        buf = io.StringIO()
        write_usage_log(log, buf)
        buf.seek(0)
        assert read_usage_log(buf) == log

    def test_header_comment_present(self, tmp_path):
        path = tmp_path / "u.log"
        write_usage_log(sample_log(1), path)
        assert path.read_text().startswith("#")

    def test_empty_log(self, tmp_path):
        path = tmp_path / "e.log"
        write_usage_log(TransferLog(), path)
        assert len(read_usage_log(path)) == 0

    def test_malformed_row_rejected(self):
        buf = io.StringIO("# header\n1.0 2.0 3.0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_usage_log(buf)

    def test_blank_lines_skipped(self):
        buf = io.StringIO("\n\n# c\n")
        assert len(read_usage_log(buf)) == 0


class TestNetloggerFormat:
    def test_line_roundtrip(self):
        log = sample_log(1)
        line = format_netlogger_line(log, 0)
        parsed = parse_netlogger_line(line)
        rec = log.record(0)
        assert parsed["start"] == pytest.approx(rec.start)
        assert parsed["size"] == rec.size
        assert parsed["streams"] == rec.streams
        assert parsed["transfer_type"] == int(rec.transfer_type)

    def test_file_roundtrip(self, tmp_path):
        log = sample_log(5)
        path = tmp_path / "gridftp.log"
        write_netlogger_log(log, path)
        back = read_netlogger_log(path)
        assert back == log

    def test_anonymized_dest_token(self):
        log = sample_log(1).anonymize_remote()
        line = format_netlogger_line(log, 0)
        assert "DEST=ANON" in line
        assert parse_netlogger_line(line)["remote_host"] == ANONYMIZED_HOST

    def test_unknown_keys_ignored(self):
        line = "START=1.0 DURATION=2.0 NBYTES=3 FOO=bar CODE=226"
        parsed = parse_netlogger_line(line)
        assert parsed["size"] == 3.0
        assert "FOO" not in parsed

    def test_missing_mandatory_rejected(self):
        with pytest.raises(ValueError, match="mandatory"):
            parse_netlogger_line("DURATION=1.0 NBYTES=5")

    def test_type_token_parsed(self):
        line = "START=0 DURATION=1 NBYTES=2 TYPE=STOR"
        assert parse_netlogger_line(line)["transfer_type"] == int(TransferType.STOR)

    def test_read_from_iterable(self):
        lines = ["START=0 DURATION=1 NBYTES=100", ""]
        log = read_netlogger_log(lines)
        assert len(log) == 1
        assert log.size[0] == 100.0

    def test_read_empty(self):
        assert len(read_netlogger_log([])) == 0

    def test_heterogeneous_rows_assemble_in_schema_order(self):
        """Rows carrying different key subsets must parse deterministically.

        Column assembly used to iterate a set union over row keys, whose
        order varies with the process hash seed; columns now come out in
        schema order with per-field defaults filling the gaps.
        """
        lines = [
            "START=0 DURATION=1 NBYTES=100 STREAMS=4",
            "START=5 DURATION=2 NBYTES=200 BUFFER=65536 DEST=3",
            "START=9 DURATION=3 NBYTES=300",
        ]
        log = read_netlogger_log(lines)
        assert len(log) == 3
        # fields any row carried are materialized for every row...
        assert list(log.streams) == [4, 1, 1]  # schema default fills rows 2-3
        assert list(log.column("tcp_buffer")) == [0, 65536, 0]
        assert log.column("remote_host")[1] == 3
        # ...and assembly order is the schema's, not hash order
        assert read_netlogger_log(lines) == log

    def test_heterogeneous_rows_roundtrip_through_write(self, tmp_path):
        lines = [
            "START=0 DURATION=1 NBYTES=100 STREAMS=4",
            "START=5 DURATION=2 NBYTES=200 BUFFER=65536",
        ]
        log = read_netlogger_log(lines)
        path = tmp_path / "het.log"
        write_netlogger_log(log, path)
        assert read_netlogger_log(path) == log


class TestBatchFormatting:
    """Columnar batch formatters are byte-identical to per-row paths."""

    def test_format_netlogger_lines_matches_per_row(self):
        from repro.gridftp.logfmt import format_netlogger_lines

        log = sample_log(n=64, seed=7)
        batch = format_netlogger_lines(log)
        assert batch == [format_netlogger_line(log, i) for i in range(len(log))]

    def test_format_netlogger_lines_anonymized(self):
        from repro.gridftp.logfmt import format_netlogger_lines

        log = sample_log(n=5, seed=3).select(np.arange(5))
        cols = {n: log.column(n).copy() for n in
                ("start", "duration", "size", "transfer_type", "streams",
                 "stripes", "tcp_buffer", "block_size",
                 "local_host", "remote_host")}
        cols["remote_host"][:] = ANONYMIZED_HOST
        anon = TransferLog(cols)
        batch = format_netlogger_lines(anon)
        assert all("DEST=ANON" in ln for ln in batch)
        assert batch == [format_netlogger_line(anon, i) for i in range(5)]

    def test_format_netlogger_lines_slice(self):
        from repro.gridftp.logfmt import format_netlogger_lines

        log = sample_log(n=20, seed=9)
        assert format_netlogger_lines(log, 5, 12) == [
            format_netlogger_line(log, i) for i in range(5, 12)
        ]

    def test_batched_usage_write_round_trips_large(self):
        # > _WRITE_BATCH_ROWS would be slow here; instead force several
        # small batches through the writer and pin the round trip
        import repro.gridftp.logfmt as lf

        log = sample_log(n=1000, seed=5)
        old = lf._WRITE_BATCH_ROWS
        lf._WRITE_BATCH_ROWS = 64
        try:
            buf = io.StringIO()
            write_usage_log(log, buf)
            small = buf.getvalue()
        finally:
            lf._WRITE_BATCH_ROWS = old
        buf2 = io.StringIO()
        write_usage_log(log, buf2)
        assert small == buf2.getvalue()
        assert read_usage_log(io.StringIO(small)) == log

    def test_batched_netlogger_write_batch_invariant(self, tmp_path):
        import repro.gridftp.logfmt as lf

        log = sample_log(n=300, seed=6)
        p1, p2 = tmp_path / "small.log", tmp_path / "big.log"
        old = lf._WRITE_BATCH_ROWS
        lf._WRITE_BATCH_ROWS = 17
        try:
            write_netlogger_log(log, p1)
        finally:
            lf._WRITE_BATCH_ROWS = old
        write_netlogger_log(log, p2)
        assert p1.read_text() == p2.read_text()
        assert read_netlogger_log(p1) == log
