"""Unit tests for the usage and netlogger log formats."""

import io

import numpy as np
import pytest

from repro.gridftp.logfmt import (
    format_netlogger_line,
    parse_netlogger_line,
    read_netlogger_log,
    read_usage_log,
    write_netlogger_log,
    write_usage_log,
)
from repro.gridftp.records import ANONYMIZED_HOST, TransferLog, TransferType


def sample_log(n=7, seed=2):
    rng = np.random.default_rng(seed)
    return TransferLog(
        {
            "start": np.sort(rng.uniform(0, 1e6, n)).round(6),
            "duration": rng.uniform(0.5, 500, n).round(6),
            "size": rng.integers(1e3, 1e10, n).astype(float),
            "transfer_type": rng.integers(0, 2, n),
            "streams": rng.integers(1, 9, n),
            "stripes": rng.integers(1, 5, n),
            "tcp_buffer": rng.integers(0, 1 << 22, n),
            "block_size": np.full(n, 262144),
            "local_host": rng.integers(0, 5, n),
            "remote_host": rng.integers(0, 5, n),
        }
    )


class TestUsageFormat:
    def test_roundtrip_file(self, tmp_path):
        log = sample_log()
        path = tmp_path / "usage.log"
        write_usage_log(log, path)
        assert read_usage_log(path) == log

    def test_roundtrip_stream(self):
        log = sample_log(3)
        buf = io.StringIO()
        write_usage_log(log, buf)
        buf.seek(0)
        assert read_usage_log(buf) == log

    def test_header_comment_present(self, tmp_path):
        path = tmp_path / "u.log"
        write_usage_log(sample_log(1), path)
        assert path.read_text().startswith("#")

    def test_empty_log(self, tmp_path):
        path = tmp_path / "e.log"
        write_usage_log(TransferLog(), path)
        assert len(read_usage_log(path)) == 0

    def test_malformed_row_rejected(self):
        buf = io.StringIO("# header\n1.0 2.0 3.0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_usage_log(buf)

    def test_blank_lines_skipped(self):
        buf = io.StringIO("\n\n# c\n")
        assert len(read_usage_log(buf)) == 0


class TestNetloggerFormat:
    def test_line_roundtrip(self):
        log = sample_log(1)
        line = format_netlogger_line(log, 0)
        parsed = parse_netlogger_line(line)
        rec = log.record(0)
        assert parsed["start"] == pytest.approx(rec.start)
        assert parsed["size"] == rec.size
        assert parsed["streams"] == rec.streams
        assert parsed["transfer_type"] == int(rec.transfer_type)

    def test_file_roundtrip(self, tmp_path):
        log = sample_log(5)
        path = tmp_path / "gridftp.log"
        write_netlogger_log(log, path)
        back = read_netlogger_log(path)
        assert back == log

    def test_anonymized_dest_token(self):
        log = sample_log(1).anonymize_remote()
        line = format_netlogger_line(log, 0)
        assert "DEST=ANON" in line
        assert parse_netlogger_line(line)["remote_host"] == ANONYMIZED_HOST

    def test_unknown_keys_ignored(self):
        line = "START=1.0 DURATION=2.0 NBYTES=3 FOO=bar CODE=226"
        parsed = parse_netlogger_line(line)
        assert parsed["size"] == 3.0
        assert "FOO" not in parsed

    def test_missing_mandatory_rejected(self):
        with pytest.raises(ValueError, match="mandatory"):
            parse_netlogger_line("DURATION=1.0 NBYTES=5")

    def test_type_token_parsed(self):
        line = "START=0 DURATION=1 NBYTES=2 TYPE=STOR"
        assert parse_netlogger_line(line)["transfer_type"] == int(TransferType.STOR)

    def test_read_from_iterable(self):
        lines = ["START=0 DURATION=1 NBYTES=100", ""]
        log = read_netlogger_log(lines)
        assert len(log) == 1
        assert log.size[0] == 100.0

    def test_read_empty(self):
        assert len(read_netlogger_log([])) == 0

    def test_heterogeneous_rows_assemble_in_schema_order(self):
        """Rows carrying different key subsets must parse deterministically.

        Column assembly used to iterate a set union over row keys, whose
        order varies with the process hash seed; columns now come out in
        schema order with per-field defaults filling the gaps.
        """
        lines = [
            "START=0 DURATION=1 NBYTES=100 STREAMS=4",
            "START=5 DURATION=2 NBYTES=200 BUFFER=65536 DEST=3",
            "START=9 DURATION=3 NBYTES=300",
        ]
        log = read_netlogger_log(lines)
        assert len(log) == 3
        # fields any row carried are materialized for every row...
        assert list(log.streams) == [4, 1, 1]  # schema default fills rows 2-3
        assert list(log.column("tcp_buffer")) == [0, 65536, 0]
        assert log.column("remote_host")[1] == 3
        # ...and assembly order is the schema's, not hash order
        assert read_netlogger_log(lines) == log

    def test_heterogeneous_rows_roundtrip_through_write(self, tmp_path):
        lines = [
            "START=0 DURATION=1 NBYTES=100 STREAMS=4",
            "START=5 DURATION=2 NBYTES=200 BUFFER=65536",
        ]
        log = read_netlogger_log(lines)
        path = tmp_path / "het.log"
        write_netlogger_log(log, path)
        assert read_netlogger_log(path) == log
