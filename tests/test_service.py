"""The long-lived transfer daemon: units and in-process integration.

Covers the service package bottom-up — deadline budgets and the
degradation ladder, admission control, loop supervision, health views,
the JSON-lines protocol — then boots real in-process daemons (asyncio
loops, a Unix control socket in a temp dir) and pins the service
contracts: submissions settle, overload sheds explicitly, starved
deadlines degrade to IP, crashed loops restart without losing the
request they held, and a drain checkpoints everything unfinished.

The real killed-subprocess drill (SIGTERM -> exit 75, drain report,
zero lost tasks) lives in ``test_service_daemon.py``.
"""

import asyncio
import json
import math

import pytest

from repro.service.admission import AdmissionController
from repro.service.api import (
    MAX_LINE_BYTES,
    ServiceClient,
    decode_line,
    encode_line,
    error_response,
)
from repro.service.budget import DeadlineBudget, PathChoice, plan_path
from repro.service.daemon import (
    EXIT_DRAINED,
    DaemonConfig,
    TransferDaemon,
)
from repro.service.health import HealthMonitor, ServiceMetrics
from repro.service.soak import run_service_soak
from repro.service.supervisor import Supervisor


# ---------------------------------------------------------------------------
# deadline budgets and the degradation ladder


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestDeadlineBudget:
    def test_tracks_elapsed_and_remaining(self):
        clock = FakeClock(100.0)
        budget = DeadlineBudget(60.0, clock)
        assert budget.remaining() == 60.0
        clock.t = 140.0
        assert budget.elapsed() == 40.0
        assert budget.remaining() == 20.0
        assert not budget.expired
        clock.t = 170.0
        assert budget.remaining() == 0.0
        assert budget.expired

    def test_unbounded_budget_never_expires(self):
        budget = DeadlineBudget(None, FakeClock())
        assert budget.remaining() == math.inf
        assert not budget.expired
        assert budget.can_afford(1e12)
        assert budget.snapshot()["remaining_s"] is None

    def test_can_afford(self):
        clock = FakeClock()
        budget = DeadlineBudget(10.0, clock)
        assert budget.can_afford(10.0)
        assert not budget.can_afford(10.1)
        with pytest.raises(ValueError):
            budget.can_afford(-1.0)

    @pytest.mark.parametrize("bad", [0.0, -5.0, math.inf, math.nan])
    def test_rejects_bad_deadlines(self, bad):
        with pytest.raises(ValueError):
            DeadlineBudget(bad, FakeClock())

    def test_snapshot_is_json_safe(self):
        budget = DeadlineBudget(30.0, FakeClock(5.0))
        snap = budget.snapshot()
        json.dumps(snap)
        assert snap == {"deadline_s": 30.0, "elapsed_s": 0.0, "remaining_s": 30.0}


class TestPlanPath:
    def test_vc_when_budget_affords_setup_and_transfer(self):
        budget = DeadlineBudget(200.0, FakeClock())
        plan = plan_path(budget, 8e9, 1.6e9, 4e8, setup_estimate_s=60.0)
        # 60 + 40 * 1.25 = 110 <= 200
        assert plan.choice is PathChoice.VC
        assert plan.setup_estimate_s == 60.0
        assert plan.transfer_estimate_s == pytest.approx(40.0)

    def test_degrades_when_setup_starves_the_deadline(self):
        budget = DeadlineBudget(100.0, FakeClock())
        plan = plan_path(budget, 8e9, 1.6e9, 4e8, setup_estimate_s=60.0)
        # 60 + 50 > 100 -> routed path, whose own estimate is honest
        assert plan.choice is PathChoice.IP_DEGRADED
        assert plan.setup_estimate_s == 0.0
        assert plan.transfer_estimate_s == pytest.approx(160.0)

    def test_safety_factor_tips_the_decision(self):
        budget = DeadlineBudget(100.0, FakeClock())
        base = dict(
            total_bytes=8e9, vc_rate_bps=1.6e9, ip_rate_bps=4e8,
            setup_estimate_s=55.0,
        )
        assert plan_path(budget, **base, safety_factor=1.0).choice is PathChoice.VC
        assert (
            plan_path(budget, **base, safety_factor=1.25).choice
            is PathChoice.IP_DEGRADED
        )

    def test_unbounded_budget_prefers_the_circuit(self):
        budget = DeadlineBudget(None, FakeClock())
        plan = plan_path(budget, 1e12, 1.6e9, 4e8, setup_estimate_s=1e6)
        assert plan.choice is PathChoice.VC

    def test_validation(self):
        budget = DeadlineBudget(None, FakeClock())
        with pytest.raises(ValueError):
            plan_path(budget, 0.0, 1.6e9, 4e8, 1.0)
        with pytest.raises(ValueError):
            plan_path(budget, 1e9, 0.0, 4e8, 1.0)
        with pytest.raises(ValueError):
            plan_path(budget, 1e9, 1.6e9, 4e8, -1.0)
        with pytest.raises(ValueError):
            plan_path(budget, 1e9, 1.6e9, 4e8, 1.0, safety_factor=0.5)


# ---------------------------------------------------------------------------
# admission control


class TestAdmissionController:
    def test_admits_until_queue_limit(self):
        adm = AdmissionController(queue_limit=2, tenant_quota=10)
        assert adm.try_admit("a").admitted
        assert adm.try_admit("b").admitted
        decision = adm.try_admit("c")
        assert not decision.admitted
        assert decision.reason == "queue-full"
        assert decision.retry_after_s > 0
        assert adm.shed["queue-full"] == 1
        assert adm.n_shed == 1

    def test_tenant_quota_sheds_the_noisy_tenant_only(self):
        adm = AdmissionController(queue_limit=10, tenant_quota=2)
        assert adm.try_admit("noisy").admitted
        assert adm.try_admit("noisy").admitted
        decision = adm.try_admit("noisy")
        assert not decision.admitted and decision.reason == "tenant-quota"
        assert adm.try_admit("polite").admitted
        assert adm.usage() == {"noisy": 2, "polite": 1}

    def test_draining_rejects_everything(self):
        adm = AdmissionController()
        adm.draining = True
        decision = adm.try_admit("a")
        assert not decision.admitted and decision.reason == "draining"

    def test_lifecycle_bookkeeping(self):
        adm = AdmissionController(queue_limit=4)
        adm.try_admit("a")
        adm.try_admit("a")
        assert (adm.queued, adm.in_flight, adm.outstanding) == (2, 0, 2)
        adm.on_start("a")
        assert (adm.queued, adm.in_flight, adm.outstanding) == (1, 1, 2)
        adm.on_settle("a", started=True)
        assert adm.outstanding == 1
        adm.on_settle("a", started=False)  # settled straight from the queue
        assert adm.outstanding == 0
        assert adm.usage() == {}

    def test_requeue_moves_in_flight_back_to_queued(self):
        adm = AdmissionController()
        adm.try_admit("a")
        adm.on_start("a")
        adm.on_requeue("a")
        assert (adm.queued, adm.in_flight) == (1, 0)
        assert adm.usage() == {"a": 1}  # the quota unit is still held
        with pytest.raises(RuntimeError):
            adm.on_requeue("a")

    def test_bookkeeping_guards(self):
        adm = AdmissionController()
        with pytest.raises(RuntimeError):
            adm.on_start("a")
        with pytest.raises(RuntimeError):
            adm.on_settle("a")
        adm.try_admit("a")
        with pytest.raises(RuntimeError):
            adm.on_settle("ghost", started=False)

    def test_retry_after_scales_with_backlog(self):
        adm = AdmissionController(queue_limit=100, tenant_quota=100, workers=2)
        adm.note_service_s(10.0)
        idle = adm.retry_after_s()
        for _ in range(8):
            adm.try_admit("a")
        assert adm.retry_after_s() > idle
        assert adm.retry_after_s() == pytest.approx((8 / 2 + 1) * 10.0)

    def test_retry_after_has_a_floor(self):
        adm = AdmissionController()
        adm.note_service_s(0.0)
        assert adm.retry_after_s() >= 1.0

    def test_ewma_folds_observations(self):
        adm = AdmissionController()
        adm.note_service_s(10.0)
        adm.note_service_s(20.0, alpha=0.5)
        assert adm.retry_after_s() == pytest.approx((0 / 4 + 1) * 15.0)
        with pytest.raises(ValueError):
            adm.note_service_s(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(queue_limit=0)
        with pytest.raises(ValueError):
            AdmissionController(tenant_quota=0)
        with pytest.raises(ValueError):
            AdmissionController(workers=0)


# ---------------------------------------------------------------------------
# supervision


def _fast_supervisor(max_retries: int = 3) -> Supervisor:
    from repro.faults.recovery import BackoffPolicy

    return Supervisor(
        backoff=BackoffPolicy(
            base_s=0.005, max_backoff_s=0.02, max_retries=max_retries,
            jitter=0.0,
        ),
        healthy_after_s=10.0,
    )


class TestSupervisor:
    def test_restarts_a_crashing_loop(self):
        async def scenario():
            sup = _fast_supervisor()
            crashes = 0
            done = asyncio.Event()

            async def loop():
                nonlocal crashes
                if crashes < 2:
                    crashes += 1
                    raise RuntimeError(f"boom {crashes}")
                done.set()
                await asyncio.sleep(30)

            sup.supervise("w", loop)
            await asyncio.wait_for(done.wait(), timeout=5)
            status = sup.loops["w"]
            assert status.restarts == 2
            assert status.last_error == "RuntimeError: boom 2"
            assert sup.dead_loops() == []
            await sup.stop()

        asyncio.run(scenario())

    def test_crash_storm_declares_the_loop_dead(self):
        async def scenario():
            sup = _fast_supervisor(max_retries=2)
            seen = []
            sup.on_crash = lambda name, exc: seen.append(str(exc))

            async def loop():
                raise RuntimeError("always")

            task = sup.supervise("w", loop)
            await asyncio.wait_for(task, timeout=5)
            assert sup.dead_loops() == ["w"]
            assert sup.loops["w"].dead and not sup.loops["w"].alive
            # max_retries consecutive restarts, plus the final crash
            assert sup.loops["w"].restarts == 3
            assert seen == ["always"] * 3

        asyncio.run(scenario())

    def test_clean_return_is_done_not_dead(self):
        async def scenario():
            sup = _fast_supervisor()

            async def loop():
                return None

            task = sup.supervise("w", loop)
            await asyncio.wait_for(task, timeout=5)
            assert not sup.loops["w"].alive
            assert not sup.loops["w"].dead
            assert sup.dead_loops() == []
            assert sup.n_restarts == 0

        asyncio.run(scenario())

    def test_healthy_run_resets_the_crash_count(self):
        async def scenario():
            sup = _fast_supervisor(max_retries=2)
            sup.healthy_after_s = 0.0  # every iteration counts as healthy
            crashes = 0
            done = asyncio.Event()

            async def loop():
                nonlocal crashes
                crashes += 1
                if crashes <= 4:  # more crashes than max_retries allows...
                    raise RuntimeError("flaky")
                done.set()
                await asyncio.sleep(30)

            sup.supervise("w", loop)
            # ...yet the loop survives, because each run reset the count
            await asyncio.wait_for(done.wait(), timeout=5)
            assert sup.dead_loops() == []
            await sup.stop()

        asyncio.run(scenario())

    def test_duplicate_name_rejected(self):
        async def scenario():
            sup = _fast_supervisor()

            async def loop():
                await asyncio.sleep(30)

            sup.supervise("w", loop)
            with pytest.raises(RuntimeError):
                sup.supervise("w", loop)
            await sup.stop()

        asyncio.run(scenario())

    def test_status_is_json_safe(self):
        async def scenario():
            sup = _fast_supervisor()

            async def loop():
                await asyncio.sleep(30)

            sup.supervise("w", loop)
            json.dumps(sup.status())
            await sup.stop()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# health and metrics


class TestHealth:
    def _monitor(self, **kwargs) -> tuple[HealthMonitor, Supervisor]:
        sup = _fast_supervisor()
        monitor = HealthMonitor(
            AdmissionController(), sup, ServiceMetrics(),
            __import__("repro.faults.recovery", fromlist=["RecoveryStats"])
            .RecoveryStats(),
            **kwargs,
        )
        return monitor, sup

    def test_fresh_daemon_is_healthy(self):
        monitor, _ = self._monitor()
        health = monitor.health()
        assert health["ok"] and health["problems"] == []

    def test_dead_loop_degrades_health(self):
        async def scenario():
            monitor, sup = self._monitor()
            sup.backoff = __import__(
                "repro.faults.recovery", fromlist=["BackoffPolicy"]
            ).BackoffPolicy(base_s=0.001, max_retries=0, jitter=0.0)

            async def loop():
                raise RuntimeError("dead on arrival")

            task = sup.supervise("w", loop)
            await asyncio.wait_for(task, timeout=5)
            health = monitor.health()
            assert not health["ok"]
            assert any("dead loops: w" in p for p in health["problems"])

        asyncio.run(scenario())

    def test_stale_heartbeat_degrades_health(self):
        monitor, _ = self._monitor(heartbeat_timeout_s=1e-9)
        health = monitor.health()
        assert not health["ok"]
        assert any("stale heartbeat" in p for p in health["problems"])
        monitor.heartbeat_timeout_s = 60.0
        monitor.beat()
        assert monitor.health()["ok"]

    def test_status_shape(self):
        monitor, _ = self._monitor()
        status = monitor.status()
        json.dumps(status)
        for key in (
            "health", "queue_depth", "in_flight", "outstanding",
            "queue_limit", "tenant_quota", "tenants", "shed",
            "retry_after_s", "metrics", "recovery", "loops",
        ):
            assert key in status

    def test_metrics_ledger(self):
        m = ServiceMetrics(
            n_accepted=10, n_completed=5, n_failed=2, n_expired=1,
            n_checkpointed=1,
        )
        assert m.n_settled == 9
        assert m.n_lost == 1
        as_dict = m.as_dict()
        assert as_dict["n_settled"] == 9 and as_dict["n_lost"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            self._monitor(heartbeat_timeout_s=0.0)


# ---------------------------------------------------------------------------
# the wire protocol


class TestProtocol:
    def test_roundtrip(self):
        msg = {"op": "submit", "file_sizes": [1.0, 2.0], "wait": True}
        assert decode_line(encode_line(msg).rstrip(b"\n")) == msg

    def test_encode_is_strict_json(self):
        with pytest.raises(ValueError):
            encode_line({"bad": math.nan})

    def test_decode_rejects_malformed(self):
        with pytest.raises(ValueError):
            decode_line(b"not json")
        with pytest.raises(ValueError):
            decode_line(b"[1, 2]")
        with pytest.raises(ValueError):
            decode_line(b"\xff\xfe")
        with pytest.raises(ValueError):
            decode_line(b"x" * (MAX_LINE_BYTES + 1))

    def test_error_response(self):
        resp = error_response("nope", reason="queue-full")
        assert resp == {"ok": False, "error": "nope", "reason": "queue-full"}


# ---------------------------------------------------------------------------
# daemon config


class TestDaemonConfig:
    def test_checkpoint_path_defaults_beside_the_socket(self):
        config = DaemonConfig(socket_path="/tmp/x.sock")
        assert config.effective_checkpoint_path == "/tmp/x.sock.ckpt.jsonl"
        override = DaemonConfig(socket_path="/tmp/x.sock", checkpoint_path="/tmp/c")
        assert override.effective_checkpoint_path == "/tmp/c"

    def test_as_dict_roundtrips(self):
        config = DaemonConfig(socket_path="/tmp/x.sock", workers=2)
        assert DaemonConfig(**config.as_dict()) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"socket_path": ""},
            {"socket_path": "/tmp/x", "workers": 0},
            {"socket_path": "/tmp/x", "time_scale": 0.0},
            {"socket_path": "/tmp/x", "vc_rate_bps": -1.0},
            {"socket_path": "/tmp/x", "vc_safety_factor": 0.9},
            {"socket_path": "/tmp/x", "drain_grace_s": -1.0},
            {"socket_path": "/tmp/x", "status_interval_s": 0.0},
            {"socket_path": "/tmp/x", "max_crash_requeues": -1},
            {"socket_path": "/tmp/x", "default_deadline_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DaemonConfig(**kwargs)


# ---------------------------------------------------------------------------
# in-process daemon integration


def _run_with_daemon(config: DaemonConfig, scenario):
    """Boot a daemon, run ``scenario(daemon, call)``, drain, return both.

    ``call`` runs a blocking ServiceClient method in an executor so the
    daemon's event loop keeps turning underneath it.
    """

    async def body():
        daemon = TransferDaemon(config)
        ready = asyncio.Event()
        serve = asyncio.create_task(
            daemon.serve(ready=ready, install_signals=False)
        )
        await asyncio.wait_for(ready.wait(), timeout=10)
        loop = asyncio.get_running_loop()

        def call(fn, *args, **kwargs):
            return loop.run_in_executor(None, lambda: fn(*args, **kwargs))

        try:
            result = await asyncio.wait_for(
                scenario(daemon, call), timeout=60
            )
        finally:
            daemon.request_drain()
            exit_code = await asyncio.wait_for(serve, timeout=30)
        return result, exit_code, daemon

    return asyncio.run(body())


def _config(tmp_path, **overrides) -> DaemonConfig:
    defaults = dict(
        socket_path=str(tmp_path / "svc.sock"),
        workers=2,
        time_scale=3000.0,
        status_interval_s=0.05,
        drain_grace_s=10.0,
        seed=0,
    )
    defaults.update(overrides)
    return DaemonConfig(**defaults)


class TestDaemonIntegration:
    def test_submit_and_complete_over_the_socket(self, tmp_path):
        config = _config(tmp_path)

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                resp = await call(
                    client.submit, [4e9, 2e9], tenant="t", wait=True
                )
            finally:
                await call(client.close)
            return resp

        resp, exit_code, daemon = _run_with_daemon(config, scenario)
        assert exit_code == EXIT_DRAINED
        assert resp["ok"] and resp["state"] == "succeeded"
        assert resp["files_done"] == 2 and resp["n_files"] == 2
        assert resp["path"] == "vc"  # unbounded budget rides the circuit
        assert daemon.metrics.n_completed == 1
        assert daemon.metrics.n_lost == 0

    def test_invalid_submissions_do_not_leak_admission_slots(self, tmp_path):
        config = _config(tmp_path)

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                bad = [
                    await call(client.request, {"op": "submit",
                                                "file_sizes": []}),
                    await call(client.request, {"op": "submit",
                                                "file_sizes": [0.0]}),
                    await call(client.request, {"op": "submit",
                                                "file_sizes": [-5.0]}),
                    await call(client.request, {"op": "submit",
                                                "file_sizes": "nope"}),
                    await call(client.request, {"op": "submit",
                                                "file_sizes": [1e9],
                                                "deadline_s": -3.0}),
                    await call(client.request, {"op": "submit",
                                                "file_sizes": [1e9],
                                                "tenant": ""}),
                    await call(client.request, {"op": "nonsense"}),
                ]
                status = (await call(client.status))["status"]
            finally:
                await call(client.close)
            return bad, status

        (bad, status), _, daemon = _run_with_daemon(config, scenario)
        assert all(not resp["ok"] for resp in bad)
        assert daemon.admission.outstanding == 0
        assert daemon.admission.usage() == {}
        assert daemon.metrics.n_accepted == 0
        # refused submissions land in their own census, visible on
        # /status — the ledger accounts for every submission seen
        # (the "nonsense" op is not a submission and counts nowhere)
        assert daemon.metrics.n_submitted == 6
        assert daemon.metrics.n_invalid == 6
        assert status["metrics"]["n_invalid"] == 6
        assert (
            daemon.metrics.n_accepted
            + daemon.admission.n_shed
            + daemon.metrics.n_invalid
            == daemon.metrics.n_submitted
        )

    def test_malformed_lines_get_error_responses(self, tmp_path):
        config = _config(tmp_path)

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                def raw(payload: bytes):
                    client._sock.sendall(payload)
                    return decode_line(client._read_line())

                garbage = await call(raw, b"this is not json\n")
                array = await call(raw, b"[1,2,3]\n")
                # the connection survived both: a real op still works
                health = await call(client.health)
            finally:
                await call(client.close)
            return garbage, array, health

        (garbage, array, health), _, _ = _run_with_daemon(config, scenario)
        assert not garbage["ok"] and "malformed" in garbage["error"]
        assert not array["ok"]
        assert health["ok"] and health["health"]["ok"]

    def test_overload_sheds_with_retry_after(self, tmp_path):
        config = _config(
            tmp_path, workers=1, queue_limit=2, tenant_quota=10,
            time_scale=100.0,  # slow transfers: the queue actually fills
        )

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                responses = [
                    await call(client.submit, [4e9], tenant="t")
                    for _ in range(6)
                ]
            finally:
                await call(client.close)
            return responses

        responses, _, daemon = _run_with_daemon(config, scenario)
        admitted = [r for r in responses if r["ok"]]
        shed = [r for r in responses if not r["ok"]]
        assert len(admitted) == 2 and len(shed) == 4
        for r in shed:
            assert r["status"] == "rejected"
            assert r["reason"] == "queue-full"
            assert r["retry_after_s"] > 0
        assert daemon.metrics.n_shed == 4
        assert daemon.admission.shed["queue-full"] == 4
        # everything admitted still settled
        assert daemon.metrics.n_lost == 0

    def test_tenant_quota_protects_other_tenants(self, tmp_path):
        config = _config(
            tmp_path, workers=1, queue_limit=10, tenant_quota=1,
            time_scale=100.0,
        )

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                first = await call(client.submit, [4e9], tenant="noisy")
                second = await call(client.submit, [4e9], tenant="noisy")
                other = await call(client.submit, [4e9], tenant="polite")
            finally:
                await call(client.close)
            return first, second, other

        (first, second, other), _, daemon = _run_with_daemon(config, scenario)
        assert first["ok"] and other["ok"]
        assert not second["ok"] and second["reason"] == "tenant-quota"
        assert daemon.metrics.n_lost == 0

    def test_starved_deadline_degrades_to_ip_and_succeeds(self, tmp_path):
        # 80 GB at circuit rate is 400 s; with the 1.25 safety factor and
        # >= 1 s signalling the VC plan needs > 501 s, so a 490 s budget
        # always degrades — and the routed path (457 s) makes the deadline
        config = _config(tmp_path, ip_rate_bps=1.4e9)

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                resp = await call(
                    client.submit, [80e9], tenant="t",
                    deadline_s=490.0, wait=True,
                )
            finally:
                await call(client.close)
            return resp

        resp, _, daemon = _run_with_daemon(config, scenario)
        assert resp["ok"], resp
        assert resp["state"] == "succeeded"
        assert resp["path"] == PathChoice.IP_DEGRADED.value
        assert daemon.metrics.n_degraded == 1
        assert daemon.stats.n_fallbacks == 1

    def test_reservation_storm_falls_back_to_ip(self, tmp_path):
        # every createReservation rejected: retries exhaust, and the
        # request recovers on the routed path instead of failing
        config = _config(
            tmp_path, reject_prob=1.0, backoff_max_retries=2,
        )

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                resp = await call(
                    client.submit, [1e9], tenant="t", wait=True
                )
            finally:
                await call(client.close)
            return resp

        resp, _, daemon = _run_with_daemon(config, scenario)
        assert resp["state"] == "succeeded"
        assert resp["path"] == PathChoice.IP_FALLBACK.value
        assert daemon.stats.n_gave_up >= 1 or daemon.stats.n_retries >= 1

    def test_crash_op_restarts_the_loop_and_work_continues(self, tmp_path):
        config = _config(tmp_path, workers=1, chaos_ops=True)

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                assert (await call(client.crash))["ok"]
                # give the panic + supervised restart a moment
                await asyncio.sleep(0.3)
                resp = await call(
                    client.submit, [2e9], tenant="t", wait=True
                )
                health = await call(client.health)
            finally:
                await call(client.close)
            return resp, health

        (resp, health), _, daemon = _run_with_daemon(config, scenario)
        assert resp["state"] == "succeeded"
        assert daemon.supervisor.n_restarts == 1
        assert daemon.supervisor.dead_loops() == []
        assert health["health"]["ok"]  # restarting is not unhealthy

    def test_crash_op_disabled_by_default(self, tmp_path):
        config = _config(tmp_path)

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                resp = await call(client.crash)
            finally:
                await call(client.close)
            return resp

        resp, _, _ = _run_with_daemon(config, scenario)
        assert not resp["ok"] and "disabled" in resp["error"]

    def test_wait_op_and_unknown_request_id(self, tmp_path):
        config = _config(tmp_path)

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                sub = await call(client.submit, [1e9], tenant="t")
                settled = await call(client.wait, sub["request_id"])
                unknown = await call(client.wait, 999)
            finally:
                await call(client.close)
            return settled, unknown

        (settled, unknown), _, _ = _run_with_daemon(config, scenario)
        assert settled["state"] == "succeeded"
        assert not unknown["ok"] and "unknown request_id" in unknown["error"]

    def test_status_reports_queue_and_tenants(self, tmp_path):
        config = _config(
            tmp_path, workers=1, queue_limit=5, time_scale=100.0,
        )

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                for _ in range(3):
                    await call(client.submit, [4e9], tenant="t")
                status = (await call(client.status))["status"]
            finally:
                await call(client.close)
            return status

        status, _, _ = _run_with_daemon(config, scenario)
        assert status["outstanding"] == 3
        assert status["queue_limit"] == 5
        assert status["tenants"] == {"t": 3}
        assert status["metrics"]["n_accepted"] == 3

    def test_drain_checkpoints_unfinished_requests(self, tmp_path):
        # one worker, glacial clock: the transfers cannot finish inside
        # the tiny grace window, so drain must checkpoint all of them
        config = _config(
            tmp_path, workers=1, time_scale=1.0, drain_grace_s=0.1,
        )

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                a = await call(client.submit, [8e9], tenant="t")
                b = await call(client.submit, [8e9], tenant="t")
                await asyncio.sleep(0.2)  # a is active, b still queued
            finally:
                await call(client.close)
            return a, b

        (a, b), exit_code, daemon = _run_with_daemon(config, scenario)
        assert exit_code == EXIT_DRAINED
        assert a["ok"] and b["ok"]
        assert daemon.metrics.n_checkpointed == 2
        assert daemon.metrics.n_lost == 0
        assert daemon.admission.outstanding == 0
        path = config.effective_checkpoint_path
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8").read().splitlines()
        ]
        assert lines[0]["kind"] == "service-checkpoint"
        entries = {e["request_id"]: e for e in lines[1:]}
        assert set(entries) == {a["request_id"], b["request_id"]}
        assert entries[a["request_id"]]["state"] == "active"
        assert entries[b["request_id"]]["state"] == "queued"
        report = daemon.drain_report
        assert report["n_checkpointed"] == 2
        assert report["checkpoint_path"] == path
        assert report["metrics"]["n_lost"] == 0

    def test_drain_report_settles_the_ledger(self, tmp_path):
        config = _config(tmp_path)

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                for _ in range(3):
                    await call(client.submit, [1e9], tenant="t", wait=True)
            finally:
                await call(client.close)

        _, exit_code, daemon = _run_with_daemon(config, scenario)
        assert exit_code == EXIT_DRAINED
        report = daemon.drain_report
        assert report["exit_code"] == EXIT_DRAINED
        m = report["metrics"]
        assert m["n_accepted"] == m["n_settled"] == 3
        assert m["n_lost"] == 0
        assert report["checkpoint_path"] is None


# ---------------------------------------------------------------------------
# crash-requeue bookkeeping (the supervisor hook, driven directly)


class TestCrashRequeue:
    def _daemon_with_active_request(self, tmp_path):
        config = _config(tmp_path, max_crash_requeues=1)
        daemon = TransferDaemon(config)
        daemon._queue = asyncio.Queue()
        from repro.gridftp.transfer_service import TransferTask
        from repro.service.daemon import ServiceRequest

        req = ServiceRequest(
            request_id=1,
            tenant="t",
            task=TransferTask(
                task_id=1, src_host=0, dst_host=1, file_sizes=(1e9,),
                submitted_at=0.0,
            ),
            budget=DeadlineBudget(None, lambda: 0.0),
            settled=asyncio.Event(),
        )
        daemon._requests[1] = req
        daemon.metrics.n_accepted = 1
        daemon.admission.try_admit("t")
        daemon.admission.on_start("t")
        req.admission_stage = "in_flight"
        req.state = "active"
        daemon._current["worker-0"] = req
        return daemon, req

    def test_first_crash_requeues_the_held_request(self, tmp_path):
        async def scenario():
            daemon, req = self._daemon_with_active_request(tmp_path)
            daemon._on_loop_crash("worker-0", RuntimeError("boom"))
            assert req.state == "queued"
            assert req.crash_requeues == 1
            assert req.admission_stage == "queued"
            assert daemon.admission.queued == 1
            assert daemon.admission.in_flight == 0
            assert daemon._queue.qsize() == 1
            assert daemon._current["worker-0"] is None
            assert not req.settled.is_set()

        asyncio.run(scenario())

    def test_requeue_budget_exhausts_into_failure(self, tmp_path):
        async def scenario():
            daemon, req = self._daemon_with_active_request(tmp_path)
            daemon._on_loop_crash("worker-0", RuntimeError("boom"))
            # the request goes back in flight and the loop dies again
            req.state = "active"
            req.admission_stage = "in_flight"
            daemon.admission.on_start("t")
            daemon._current["worker-0"] = req
            daemon._on_loop_crash("worker-0", RuntimeError("boom again"))
            assert req.state == "failed"
            assert "crashed" in req.error
            assert req.settled.is_set()
            assert daemon.admission.outstanding == 0
            assert daemon.metrics.n_failed == 1
            assert daemon.metrics.n_lost == 0

        asyncio.run(scenario())

    def test_crash_with_no_held_request_is_a_no_op(self, tmp_path):
        async def scenario():
            daemon, req = self._daemon_with_active_request(tmp_path)
            daemon._current["worker-0"] = None
            daemon._on_loop_crash("worker-0", RuntimeError("idle crash"))
            assert req.state == "active"
            assert daemon.admission.in_flight == 1

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# retry-after lives in wall seconds (the clock-domain regression)


class TestRetryAfterClockDomain:
    def _settled_request(self, tmp_path, queue_wait_real_s, exec_real_s):
        """Settle one request whose queue wait and execution phases are
        simulated by shifting the daemon's epoch — deterministic, no
        real sleeping — and return the admission controller after."""
        config = _config(tmp_path, time_scale=3000.0)
        daemon = TransferDaemon(config)

        async def scenario():
            from repro.gridftp.transfer_service import TransferTask
            from repro.service.daemon import ServiceRequest

            loop = asyncio.get_running_loop()
            daemon._t0 = loop.time()
            req = ServiceRequest(
                request_id=1,
                tenant="t",
                task=TransferTask(
                    task_id=1, src_host=0, dst_host=1, file_sizes=(1e9,),
                    submitted_at=0.0,
                ),
                budget=DeadlineBudget(None, daemon.vnow),
                settled=asyncio.Event(),
            )
            daemon.admission.try_admit("t")
            # queue wait passes: shift the epoch back instead of sleeping
            daemon._t0 -= queue_wait_real_s
            daemon.admission.on_start("t")
            req.admission_stage = "in_flight"
            req.state = "active"
            req.exec_started_vt = daemon.vnow()
            # execution passes
            daemon._t0 -= exec_real_s
            daemon._settle(req, "succeeded")
            assert req.settled.is_set()

        asyncio.run(scenario())
        return daemon.admission

    def test_hint_is_wall_seconds_under_a_scaled_clock(self, tmp_path):
        # 0.05 real s of execution is 150 *virtual* seconds at
        # time_scale=3000.  The pre-fix code fed budget.elapsed()
        # (virtual seconds since submit) straight into the EWMA, so the
        # hint a client would sleep on its wall clock came out hundreds
        # of seconds instead of ~1.
        admission = self._settled_request(
            tmp_path, queue_wait_real_s=0.2, exec_real_s=0.05
        )
        assert admission._ewma_service_s is not None
        assert admission._ewma_service_s < 0.1  # wall, not virtual
        assert admission.retry_after_s() < 2.0

    def test_ewma_measures_execution_not_queue_wait(self, tmp_path):
        # queue wait (0.2 real s) dwarfs execution (0.05 real s): the
        # EWMA must see only the execution phase.  Measuring from submit
        # would read ~0.25 and compound every backlogged rejection.
        admission = self._settled_request(
            tmp_path, queue_wait_real_s=0.2, exec_real_s=0.05
        )
        assert abs(admission._ewma_service_s - 0.05) < 0.02

    def test_rejection_hint_over_the_socket_stays_wall_small(self, tmp_path):
        # end to end: settle a slow request under time_scale=3000, then
        # overflow the queue and read the hint a real client receives
        config = _config(
            tmp_path, workers=1, queue_limit=2, tenant_quota=2
        )

        async def scenario(daemon, call):
            client = await call(ServiceClient, config.socket_path)
            try:
                first = await call(
                    client.submit, [4e9], tenant="t", wait=True
                )
                assert first["ok"] and first["state"] == "succeeded"
                a = await call(client.submit, [8e9, 8e9], tenant="t")
                b = await call(client.submit, [8e9, 8e9], tenant="t")
                assert a["ok"] and b["ok"]
                rej = await call(client.submit, [4e9], tenant="t")
            finally:
                await call(client.close)
            return rej

        rej, exit_code, daemon = _run_with_daemon(config, scenario)
        assert exit_code == EXIT_DRAINED
        assert rej["status"] == "rejected"
        assert rej["reason"] == "queue-full"
        # the settled request ran for tens of *virtual* seconds (batch
        # signalling alone is up to 61); its wall footprint was tens of
        # milliseconds.  The hint must be in the client's clock domain.
        assert 0 < rej["retry_after_s"] < 5.0


# ---------------------------------------------------------------------------
# the soak scenario


class TestServiceSoak:
    def test_soak_contracts_hold_under_a_fault_storm(self):
        result = run_service_soak(
            {
                "n_requests": 16,
                "n_tenants": 2,
                "n_crashes": 1,
                "queue_limit": 8,
                "tenant_quota": 4,
                "time_scale": 3000.0,
            },
            seed=5,
        )
        json.dumps(result)  # cacheable
        assert result["exit_code"] == EXIT_DRAINED
        assert result["n_lost"] == 0
        # the full ledger: every submission is accepted, shed, or invalid
        assert result["n_submitted"] == 16
        assert (
            result["n_accepted"] + result["n_shed"] + result["n_invalid"]
            == 16
        )
        assert result["n_invalid"] == result["n_invalid_client_side"] == 2
        assert result["loop_restarts"] >= 1
        assert result["dead_loops"] == []
        assert result["mid_outstanding"] <= result["max_outstanding_bound"]
        # the bound held at *every* sampled observation of the storm
        assert result["n_outstanding_samples"] > 0
        assert result["outstanding_max"] <= result["max_outstanding_bound"]

    def test_soak_is_registered_as_a_scenario(self):
        from repro.experiments.registry import get_scenario

        assert callable(get_scenario("service_soak"))
