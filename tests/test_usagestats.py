"""Unit tests for the usage-stats UDP collection path."""

import numpy as np
import pytest

from repro.core.sessions import group_sessions
from repro.gridftp.records import ANONYMIZED_HOST, TransferRecord, TransferType
from repro.gridftp.usagestats import (
    PacketError,
    UsageStatsCollector,
    UsageStatsSender,
    decode_packet,
    encode_packet,
    simulate_collection,
)
from repro.workload.synth import ncar_nics


def record(**kw):
    defaults = dict(start=123.5, duration=45.25, size=1e9, streams=8,
                    stripes=2, tcp_buffer=4 << 20, block_size=262144,
                    local_host=3, remote_host=77,
                    transfer_type=TransferType.STOR)
    defaults.update(kw)
    return TransferRecord(**defaults)


class TestPacketCodec:
    def test_roundtrip(self):
        rec = record()
        decoded, seq = decode_packet(encode_packet(rec, seq=42))
        assert seq == 42
        assert decoded.start == rec.start
        assert decoded.duration == rec.duration
        assert decoded.size == rec.size
        assert decoded.streams == rec.streams
        assert decoded.stripes == rec.stripes
        assert decoded.transfer_type is TransferType.STOR

    def test_remote_host_never_encoded(self):
        decoded, _ = decode_packet(encode_packet(record(remote_host=999)))
        assert decoded.remote_host == ANONYMIZED_HOST

    def test_retr_flag(self):
        decoded, _ = decode_packet(
            encode_packet(record(transfer_type=TransferType.RETR))
        )
        assert decoded.transfer_type is TransferType.RETR

    def test_truncated_rejected(self):
        with pytest.raises(PacketError, match="length"):
            decode_packet(encode_packet(record())[:-3])

    def test_bad_magic_rejected(self):
        payload = bytearray(encode_packet(record()))
        payload[0] = ord("X")
        with pytest.raises(PacketError, match="magic"):
            decode_packet(bytes(payload))

    def test_corruption_detected_by_checksum(self):
        payload = bytearray(encode_packet(record()))
        payload[10] ^= 0xFF
        with pytest.raises(PacketError, match="checksum"):
            decode_packet(bytes(payload))

    def test_bad_version_rejected(self):
        payload = bytearray(encode_packet(record()))
        payload[2] = 99
        with pytest.raises(PacketError, match="version"):
            decode_packet(bytes(payload))

    def test_sequence_range(self):
        with pytest.raises(ValueError):
            encode_packet(record(), seq=2**32)


class TestSenderCollector:
    def test_sender_stamps_host_and_sequence(self):
        sender = UsageStatsSender(host_id=5)
        p1 = sender.packet_for(record(local_host=0))
        p2 = sender.packet_for(record(local_host=0))
        r1, s1 = decode_packet(p1)
        r2, s2 = decode_packet(p2)
        assert r1.local_host == r2.local_host == 5
        assert (s1, s2) == (0, 1)

    def test_disabled_sender(self):
        sender = UsageStatsSender(host_id=1, enabled=False)
        assert sender.packet_for(record()) is None

    def test_collector_dedupes(self):
        collector = UsageStatsCollector()
        p = UsageStatsSender(1).packet_for(record())
        assert collector.ingest(p) is True
        assert collector.ingest(p) is False
        assert collector.n_duplicates == 1
        assert collector.n_records == 1

    def test_collector_counts_malformed(self):
        collector = UsageStatsCollector()
        assert collector.ingest(b"garbage") is False
        assert collector.n_malformed == 1

    def test_collector_rebuilds_sorted_log(self):
        sender = UsageStatsSender(1)
        collector = UsageStatsCollector()
        for t in (300.0, 100.0, 200.0):
            collector.ingest(sender.packet_for(record(start=t)))
        log = collector.to_log()
        assert np.all(np.diff(log.start) >= 0)
        assert log.is_anonymized


class TestSimulateCollection:
    def test_lossless_channel_preserves_everything_but_identity(self):
        src = ncar_nics(seed=3, n_transfers=800)
        out, collector = simulate_collection(src)
        assert len(out) == len(src)
        assert out.is_anonymized
        assert out.size.sum() == pytest.approx(src.size.sum())
        # ...which is exactly why session analysis is impossible downstream
        with pytest.raises(ValueError):
            group_sessions(out, 60.0)

    def test_loss_shrinks_the_log(self):
        src = ncar_nics(seed=3, n_transfers=800)
        out, _ = simulate_collection(src, loss_rate=0.3,
                                     rng=np.random.default_rng(1))
        assert 0.5 * len(src) < len(out) < 0.85 * len(src)

    def test_duplicates_do_not_inflate(self):
        src = ncar_nics(seed=3, n_transfers=600)
        out, collector = simulate_collection(src, duplicate_rate=0.5,
                                             rng=np.random.default_rng(1))
        assert len(out) == len(src)
        assert collector.n_duplicates > 50

    def test_corruption_detected_not_ingested(self):
        src = ncar_nics(seed=3, n_transfers=600)
        out, collector = simulate_collection(src, corrupt_rate=0.2,
                                             rng=np.random.default_rng(1))
        assert collector.n_malformed > 20
        assert len(out) == len(src) - collector.n_malformed

    def test_rate_validation(self):
        src = ncar_nics(seed=3, n_transfers=500)
        with pytest.raises(ValueError):
            simulate_collection(src, loss_rate=1.0)


class TestColumnarPacking:
    """Bulk packers are byte-identical to the per-record codec path."""

    def test_emit_log_matches_packet_for(self):
        src = ncar_nics(seed=7, n_transfers=600)
        bulk = UsageStatsSender(host_id=9)
        slow = UsageStatsSender(host_id=9)
        packets = bulk.emit_log(src)
        expected = [slow.packet_for(src.record(i)) for i in range(len(src))]
        assert packets == expected

    def test_emit_log_advances_sequence(self):
        src = ncar_nics(seed=7, n_transfers=500)
        sender = UsageStatsSender(host_id=2)
        first = sender.emit_log(src)
        second = sender.emit_log(src)
        assert first != second  # sequence numbers moved on
        _, seq0 = decode_packet(first[0])
        _, seq_next = decode_packet(second[0])
        assert (seq0, seq_next) == (0, len(src))

    def test_emit_log_packets_decode(self):
        src = ncar_nics(seed=5, n_transfers=500)
        for i, p in enumerate(UsageStatsSender(host_id=4).emit_log(src)):
            rec, seq = decode_packet(p)
            assert seq == i
            assert rec.local_host == 4
            assert rec.start == src.start[i]

    def test_simulate_collection_per_host_sequences(self):
        """Vectorized seq assignment: per-host counters, arrival order."""
        src = ncar_nics(seed=11, n_transfers=900)
        out, collector = simulate_collection(src)
        assert len(out) == len(src)
        assert collector.n_records == len(src)
        assert collector.n_duplicates == 0

    def test_simulate_collection_rng_stream_stable(self):
        """Same seed => identical outcome; the channel rng draw order is
        part of the simulate_collection contract."""
        src = ncar_nics(seed=13, n_transfers=500)
        kw = dict(loss_rate=0.1, corrupt_rate=0.05, duplicate_rate=0.1)
        a, ca = simulate_collection(src, rng=np.random.default_rng(99), **kw)
        b, cb = simulate_collection(src, rng=np.random.default_rng(99), **kw)
        assert a == b
        assert (ca.n_records, ca.n_malformed, ca.n_duplicates) == (
            cb.n_records, cb.n_malformed, cb.n_duplicates
        )
