"""Tests for circuit planning and the IP-vs-VC replay."""

import pytest

from repro.gridftp.client import TransferJob
from repro.net.topology import esnet_like
from repro.sim.replay import compare_ip_vs_vc, plan_circuits, replay_jobs
from repro.sim.scenarios import default_dtns, vc_replay_scenario
from repro.vc.circuits import HardwareSignalling
from repro.vc.oscars import OscarsIDC


def jobs_session(starts, src="NERSC", dst="ORNL", size=10e9):
    return [
        TransferJob(submit_time=t, src=src, dst=dst, size_bytes=size, streams=8)
        for t in starts
    ]


class TestPlanCircuits:
    def test_back_to_back_jobs_share_one_circuit(self):
        topo = esnet_like()
        idc = OscarsIDC(topo, setup_delay=HardwareSignalling())
        # at 2 Gbps a 10 GB job takes 40 s; 50 s spacing leaves 10 s gaps
        jobs = jobs_session([0.0, 50.0, 100.0])
        plan = plan_circuits(jobs, idc, rate_bps=2e9, g_seconds=60.0)
        assert plan.n_circuits == 1
        assert all(vc is plan.assignments[0] or vc.circuit_id ==
                   plan.assignments[0].circuit_id for vc in plan.assignments)

    def test_long_gap_opens_new_circuit(self):
        topo = esnet_like()
        idc = OscarsIDC(topo, setup_delay=HardwareSignalling())
        jobs = jobs_session([0.0, 10_000.0])
        plan = plan_circuits(jobs, idc, rate_bps=2e9, g_seconds=60.0)
        assert plan.n_circuits == 2

    def test_setup_wait_accounted(self):
        topo = esnet_like()
        idc = OscarsIDC(topo)  # batch signalling, ~1 min
        jobs = jobs_session([100.0])
        plan = plan_circuits(jobs, idc, rate_bps=2e9)
        assert plan.total_setup_wait_s > 0

    def test_distinct_pairs_distinct_circuits(self):
        topo = esnet_like()
        idc = OscarsIDC(topo, setup_delay=HardwareSignalling())
        jobs = sorted(
            jobs_session([0.0], dst="ORNL") + jobs_session([1.0], dst="ANL"),
            key=lambda j: j.submit_time,
        )
        plan = plan_circuits(jobs, idc, rate_bps=2e9)
        assert plan.n_circuits == 2

    def test_unsorted_jobs_rejected(self):
        topo = esnet_like()
        idc = OscarsIDC(topo)
        jobs = jobs_session([100.0, 0.0])
        with pytest.raises(ValueError):
            plan_circuits(jobs, idc, rate_bps=1e9)

    def test_rejection_falls_back_to_best_effort(self):
        topo = esnet_like()
        idc = OscarsIDC(topo, reservable_fraction=0.01)
        jobs = jobs_session([0.0])
        plan = plan_circuits(jobs, idc, rate_bps=5e9)
        assert plan.n_rejections == 1
        assert plan.assignments[0] is None


class TestReplay:
    def test_replay_runs_all_jobs(self):
        topo = esnet_like()
        dtns = default_dtns(topo)
        jobs = jobs_session([0.0, 200.0, 400.0])
        result = replay_jobs(topo, dtns, jobs)
        assert len(result.log) == 3

    def test_vc_assignment_delays_submit(self):
        topo = esnet_like()
        dtns = default_dtns(topo)
        idc = OscarsIDC(topo)  # 60 s batch window
        jobs = jobs_session([100.0])
        plan = plan_circuits(jobs, idc, rate_bps=2e9)
        result = replay_jobs(topo, dtns, jobs, circuits=plan.assignments)
        assert result.log.start[0] > 100.0  # pushed to circuit-ready time

    def test_full_comparison_reduces_variance(self):
        sc = vc_replay_scenario(seed=11, n_jobs=25)
        cmp = compare_ip_vs_vc(
            sc.topology, sc.dtns, sc.jobs, OscarsIDC(sc.topology),
            sc.vc_rate_bps, contenders=sc.contenders,
        )
        assert cmp.vc.iqr < cmp.ip.iqr
        assert cmp.iqr_reduction > 0
        assert cmp.plan.n_circuits >= 1
