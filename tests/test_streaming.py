"""Tests for the streaming data plane (repro.core.streaming).

The load-bearing guarantee: the chunked pipeline is byte-identical to
the one-shot pipeline for ANY chunk split — sessions spanning chunk
boundaries, negative/overlapping gaps, and ragged final chunks included.
Plus the memory contract: accumulator/state footprint is O(chunk), not
O(n).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sessions import (
    group_sessions,
    group_sessions_reference,
    sessionize_chunks,
)
from repro.core.streaming import (
    QuantileSketch,
    StreamAnalysis,
    StreamingMoments,
    StreamingSessionizer,
    StreamSummary,
    pair_key_of,
    segmented_cummax,
)
from repro.core.throughput import PathStream, path_report
from repro.gridftp.records import TransferLog
from repro.workload.synth import generate, generate_stream

SESSION_FIELDS = (
    "start", "duration", "total_size", "n_transfers",
    "local_host", "remote_host", "transfer_session",
)


def split_log(log, cuts):
    """Slice a sorted log into chunks at the given row offsets."""
    names = ("start", "duration", "size", "transfer_type", "streams",
             "stripes", "tcp_buffer", "block_size", "local_host", "remote_host")
    chunks = []
    prev = 0
    for c in list(cuts) + [len(log)]:
        chunks.append(TransferLog({n: log.column(n)[prev:c] for n in names}))
        prev = c
    return chunks


def assert_sessions_identical(a, b):
    assert len(a) == len(b)
    for f in SESSION_FIELDS:
        va, vb = getattr(a, f), getattr(b, f)
        assert va.dtype == vb.dtype, f
        assert np.array_equal(va, vb), f
    assert a.source == b.source


class TestSegmentedCummax:
    def test_single_segment_is_plain_cummax(self):
        v = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
        head = np.array([True, False, False, False, False])
        assert np.array_equal(
            segmented_cummax(v, head), np.maximum.accumulate(v)
        )

    def test_restarts_at_segment_heads(self):
        v = np.array([5.0, 1.0, 2.0, 9.0, 1.0])
        head = np.array([True, False, True, False, True])
        assert np.array_equal(
            segmented_cummax(v, head), np.array([5.0, 5.0, 2.0, 9.0, 1.0])
        )

    @given(
        st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=200),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_per_segment_loop(self, values, rnd):
        v = np.asarray(values)
        head = np.array([True] + [rnd.random() < 0.3 for _ in values[1:]])
        out = segmented_cummax(v, head)
        expect = v.copy()
        for i in range(1, v.size):
            if not head[i]:
                expect[i] = max(expect[i], expect[i - 1])
        assert np.array_equal(out, expect)

    def test_rejects_unheaded_first_element(self):
        with pytest.raises(ValueError):
            segmented_cummax(np.ones(3), np.zeros(3, dtype=bool))


class TestStreamingSessionizerEquivalence:
    """Streaming == one-shot, byte for byte, for any chunk split."""

    @pytest.fixture(scope="class")
    def slac(self):
        return generate("slac-bnl", seed=9, n_transfers=12_000).sorted_by_start()

    @pytest.mark.parametrize("g", [0.0, 1.0, 60.0, 3600.0])
    def test_wrapper_matches_reference_slac(self, slac, g):
        assert_sessions_identical(
            group_sessions(slac, g), group_sessions_reference(slac, g)
        )

    def test_wrapper_matches_reference_ncar(self):
        log = generate("ncar-nics", seed=3, n_transfers=4_000)
        for g in (0.0, 60.0, 120.0):
            assert_sessions_identical(
                group_sessions(log, g), group_sessions_reference(log, g)
            )

    @pytest.mark.parametrize("n_cuts", [1, 3, 17])
    def test_chunked_matches_oneshot(self, slac, n_cuts):
        oracle = group_sessions_reference(slac, 60.0)
        rng = np.random.default_rng(n_cuts)
        cuts = np.sort(rng.choice(np.arange(1, len(slac)), n_cuts, replace=False))
        got = sessionize_chunks(split_log(slac, cuts), 60.0)
        assert_sessions_identical(got, oracle)

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_random_splits(self, data):
        """Randomized logs and splits: overlapping transfers, multiple
        pairs, sessions spanning chunk boundaries, ragged final chunk."""
        n = data.draw(st.integers(min_value=1, max_value=120))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        # clustered starts make sessions span cut points often
        starts = np.sort(rng.uniform(0, 40, n) ** 2)
        log = TransferLog(
            {
                "start": starts,
                # long durations => negative gaps / deep overlap
                "duration": rng.uniform(0, 300, n),
                "size": rng.uniform(1, 1e9, n),
                "local_host": rng.integers(0, 3, n),
                "remote_host": rng.integers(5, 8, n),
            }
        ).sorted_by_start()
        g = data.draw(st.sampled_from([0.0, 5.0, 60.0]))
        n_cuts = data.draw(st.integers(min_value=0, max_value=min(6, n - 1)))
        cuts = np.sort(
            rng.choice(np.arange(1, n), size=n_cuts, replace=False)
        ) if n_cuts else []
        oracle = group_sessions_reference(log, g)
        got = sessionize_chunks(split_log(log, cuts), g)
        assert_sessions_identical(got, oracle)

    def test_empty_chunks_are_harmless(self, slac):
        oracle = group_sessions_reference(slac, 60.0)
        empty = split_log(slac, [])[0].select(np.zeros(0, dtype=np.int64))
        chunks = [empty, *split_log(slac, [5_000]), empty]
        assert_sessions_identical(sessionize_chunks(chunks, 60.0), oracle)

    def test_emission_order_is_split_invariant(self, slac):
        def closed_stream(cuts):
            szr = StreamingSessionizer(60.0)
            fields = []
            for chunk in split_log(slac, cuts):
                c = szr.update(chunk).closed
                fields.append((c.pair_key, c.seq))
            f = szr.finalize()
            fields.append((f.pair_key, f.seq))
            return (
                np.concatenate([p for p, _ in fields]),
                np.concatenate([s for _, s in fields]),
            )

        a = closed_stream([4_000, 8_000])
        b = closed_stream([1_000, 2_000, 3_000, 9_000, 11_999])
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_rejects_unsorted_chunk(self):
        szr = StreamingSessionizer(60.0)
        bad = TransferLog(
            {"start": [5.0, 1.0], "duration": [1, 1], "size": [1, 1],
             "remote_host": [3, 3]}
        )
        with pytest.raises(ValueError, match="not sorted"):
            szr.update(bad)

    def test_rejects_time_travel_between_chunks(self):
        szr = StreamingSessionizer(60.0)
        def mk(t):
            return TransferLog(
                {"start": [t], "duration": [1.0], "size": [1.0],
                 "remote_host": [3]}
            )
        szr.update(mk(100.0))
        with pytest.raises(ValueError, match="time-ordered"):
            szr.update(mk(50.0))

    def test_rejects_anonymized(self):
        szr = StreamingSessionizer(60.0)
        anon = TransferLog(
            {"start": [0.0], "duration": [1.0], "size": [1.0],
             "remote_host": [-1]}
        )
        with pytest.raises(ValueError, match="anonymized"):
            szr.update(anon)

    def test_negative_g_rejected(self):
        with pytest.raises(ValueError):
            StreamingSessionizer(-1.0)

    def test_pair_key_round_trip(self):
        local = np.array([0, 7, 2**31 - 1], dtype=np.int64)
        remote = np.array([-1, 3, 2**31 - 1], dtype=np.int64)
        pk = pair_key_of(local, remote)
        assert np.unique(pk).size == 3


class TestStreamingMoments:
    def test_split_invariance_is_bitwise(self):
        rng = np.random.default_rng(1)
        vals = rng.lognormal(3, 2, 50_000)
        m1 = StreamingMoments()
        m1.update(vals)
        m2 = StreamingMoments()
        for part in np.array_split(vals, 13):
            m2.update(part)
        assert m1.total == m2.total
        assert m1.total_sq == m2.total_sq
        assert (m1.count, m1.minimum, m1.maximum) == (m2.count, m2.minimum, m2.maximum)

    def test_matches_numpy(self):
        rng = np.random.default_rng(2)
        vals = rng.lognormal(1, 1.5, 10_000)
        m = StreamingMoments()
        m.update(vals)
        assert math.isclose(m.total, float(vals.sum()), rel_tol=1e-12)
        assert math.isclose(m.mean, float(vals.mean()), rel_tol=1e-12)
        assert math.isclose(m.std, float(vals.std(ddof=1)), rel_tol=1e-9)
        assert math.isclose(
            m.cv, float(vals.std(ddof=1) / vals.mean()), rel_tol=1e-9
        )

    def test_merge_is_exact_at_block_boundaries(self):
        rng = np.random.default_rng(3)
        vals = rng.uniform(0, 1e6, 20_480)  # 5 blocks of 4096
        m1 = StreamingMoments()
        m1.update(vals)
        a, b = StreamingMoments(), StreamingMoments()
        a.update(vals[:8192])
        b.update(vals[8192:])
        a.merge(b)
        assert a.total == m1.total and a.total_sq == m1.total_sq
        assert a.count == m1.count

    def test_degenerate_cv_is_nan(self):
        m = StreamingMoments()
        assert math.isnan(m.cv)
        m.update(np.array([5.0]))
        assert math.isnan(m.cv)

    def test_rejects_non_finite(self):
        m = StreamingMoments()
        with pytest.raises(ValueError):
            m.update(np.array([1.0, np.inf]))

    def test_memory_is_bounded(self):
        m = StreamingMoments()
        rng = np.random.default_rng(4)
        for _ in range(50):
            m.update(rng.uniform(0, 1, 10_000))
        assert m.nbytes < 64 * 1024


class TestQuantileSketch:
    def test_small_sample_is_exact(self):
        vals = np.arange(100.0)
        s = QuantileSketch()
        s.update(vals)
        qs = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        assert np.array_equal(s.quantiles(qs), np.percentile(vals, qs * 100))

    def test_split_invariance_is_bitwise(self):
        rng = np.random.default_rng(5)
        vals = rng.lognormal(2, 1, 40_000)
        s1 = QuantileSketch()
        s1.update(vals)
        s2 = QuantileSketch()
        for part in np.array_split(vals, 11):
            s2.update(part)
        qs = np.linspace(0, 1, 31)
        assert np.array_equal(s1.quantiles(qs), s2.quantiles(qs))

    def test_rank_error_within_tolerance(self):
        """The pinned tolerance: < 2% rank error at the default k."""
        rng = np.random.default_rng(6)
        vals = rng.lognormal(3, 2.5, 500_000)
        s = QuantileSketch()
        for part in np.array_split(vals, 37):
            s.update(part)
        qs = np.linspace(0.01, 0.99, 25)
        sv = np.sort(vals)
        got_rank = np.searchsorted(sv, s.quantiles(qs))
        true_rank = qs * vals.size
        assert np.max(np.abs(got_rank - true_rank)) / vals.size < 0.02

    def test_merge_obeys_tolerance(self):
        rng = np.random.default_rng(7)
        vals = rng.lognormal(3, 2, 200_000)
        a, b = QuantileSketch(), QuantileSketch()
        a.update(vals[:70_000])
        b.update(vals[70_000:])
        a.merge(b)
        assert a.count == vals.size
        qs = np.linspace(0.05, 0.95, 10)
        sv = np.sort(vals)
        err = np.abs(np.searchsorted(sv, a.quantiles(qs)) - qs * vals.size)
        assert err.max() / vals.size < 0.02

    def test_memory_is_bounded_logarithmically(self):
        s = QuantileSketch()
        rng = np.random.default_rng(8)
        for _ in range(100):
            s.update(rng.uniform(0, 1, 50_000))  # 5M total
        assert s.count == 5_000_000
        assert s.nbytes < 1_000_000  # ~dozens of kB expected, 1 MB hard cap

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(0.5)


class TestStreamSummaryAndPathStream:
    def test_summary_matches_one_shot_exact_fields(self):
        rng = np.random.default_rng(9)
        vals = rng.lognormal(2, 1.2, 30_000)
        from repro.core.stats import six_number_summary

        exact = six_number_summary(vals)
        s = StreamSummary()
        for part in np.array_split(vals, 7):
            s.update(part)
        got = s.summary()
        assert got.n == exact.n
        assert got.minimum == exact.minimum
        assert got.maximum == exact.maximum
        assert math.isclose(got.mean, exact.mean, rel_tol=1e-12)
        assert math.isclose(got.std, exact.std, rel_tol=1e-9)
        # quartiles are sketched: value tolerance on a smooth sample
        assert math.isclose(got.median, exact.median, rel_tol=0.05)
        assert math.isclose(got.q1, exact.q1, rel_tol=0.05)
        assert math.isclose(got.q3, exact.q3, rel_tol=0.05)

    def test_path_stream_matches_path_report(self):
        log = generate("slac-bnl", seed=11, n_transfers=8_000)
        slog = log.sorted_by_start()
        one_shot = path_report(slog)
        ps = PathStream()
        for chunk in split_log(slog, [2_000, 5_000]):
            ps.update(chunk)
        got = ps.report()
        assert got.n_transfers == one_shot.n_transfers
        for field in ("throughput", "duration", "size"):
            a, b = getattr(got, field), getattr(one_shot, field)
            assert a.n == b.n
            assert a.minimum == b.minimum and a.maximum == b.maximum
            assert math.isclose(a.mean, b.mean, rel_tol=1e-12)
            assert math.isclose(a.median, b.median, rel_tol=0.05)
        assert math.isclose(
            got.max_throughput_gbps, one_shot.max_throughput_gbps, rel_tol=1e-12
        )


class TestStreamAnalysis:
    def test_census_matches_one_shot(self):
        chunks = list(
            generate_stream("slac-bnl", 40_000, 7_000, seed=5,
                            block_transfers=20_000)
        )
        sa = StreamAnalysis(g=60.0)
        for c in chunks:
            sa.update(c)
        rep = sa.finalize()
        full = TransferLog.concatenate(chunks)
        ses = group_sessions_reference(full, 60.0)
        assert rep.n_transfers == len(full)
        assert rep.n_sessions == len(ses)
        assert rep.n_single == ses.n_single
        assert rep.n_multi == ses.n_multi
        assert rep.max_transfers_in_session == ses.max_transfers()
        assert rep.n_sessions_100_plus == ses.count_with_at_least_transfers(100)
        assert math.isclose(rep.total_bytes, float(full.size.sum()), rel_tol=1e-12)
        exact_dur = ses.duration_summary()
        assert rep.session_duration.n == exact_dur.n
        assert rep.session_duration.minimum == exact_dur.minimum
        assert rep.session_duration.maximum == exact_dur.maximum
        assert math.isclose(rep.session_duration.mean, exact_dur.mean, rel_tol=1e-12)

    def test_report_is_chunk_split_invariant(self):
        def run(chunk_size):
            sa = StreamAnalysis(g=60.0)
            for c in generate_stream("slac-bnl", 30_000, chunk_size, seed=2,
                                     block_transfers=15_000):
                sa.update(c)
            return sa.finalize()

        a, b = run(9_000), run(1_111)
        assert a.n_sessions == b.n_sessions
        assert a.session_duration == b.session_duration
        assert a.session_size == b.session_size
        assert a.transfer_throughput == b.transfer_throughput
        assert a.total_bytes == b.total_bytes

    def test_as_dict_is_json_clean(self):
        import json

        sa = StreamAnalysis(g=60.0)
        for c in generate_stream("nersc-ornl-32gb", 400, 100, seed=1,
                                 block_transfers=1_000):
            sa.update(c)
        d = sa.finalize().as_dict()
        json.dumps(d)
        assert d["n_transfers"] == 400

    def test_memory_bound_state_o_chunk_not_o_n(self):
        """Carried state must not scale with the transfer count."""

        def peak_state(n):
            sa = StreamAnalysis(g=60.0)
            for c in generate_stream("slac-bnl", n, 5_000, seed=1,
                                     block_transfers=10_000):
                sa.update(c)
            return sa.finalize().peak_state_nbytes

        small, large = peak_state(10_000), peak_state(60_000)
        # 6x the transfers must not even double the carried state
        assert large < 2 * small
        assert large < 2_000_000  # absolute sanity: well under the chunk size

    def test_builder_footprint_stays_o_chunk(self):
        """generate_stream's internal builder never holds more than one
        generation block + one chunk."""
        from repro.gridftp.records import TransferLogBuilder

        b = TransferLogBuilder()
        peak = 0
        for c in generate_stream("slac-bnl", 40_000, 2_000, seed=3,
                                 block_transfers=10_000):
            b.append_log(c)
            peak = max(peak, c.nbytes)
            while len(b) >= 2_000:
                b.split_off(2_000)
        # each yielded chunk is O(chunk_size) rows
        assert peak <= 2_000 * 64 * 2  # 10 columns * 8B with slack
