"""Unit tests for HNTES and Lambdastation deployment machinery."""

import numpy as np
import pytest

from repro.core.alpha_flows import AlphaFlowCriteria
from repro.gridftp.records import TransferLog
from repro.net.topology import esnet_like
from repro.vc.circuits import HardwareSignalling
from repro.vc.hntes import HntesController
from repro.vc.lambdastation import LambdaStation, Treatment, TransferIntent
from repro.vc.oscars import OscarsIDC


def day_log(pairs_rates, start=0.0):
    """pairs_rates: list of (local, remote, gbps, n)."""
    rows = []
    t = start
    for local, remote, gbps, n in pairs_rates:
        for _ in range(n):
            size = 10e9
            rows.append((t, size * 8 / (gbps * 1e9), size, local, remote))
            t += 5000.0
    return TransferLog(
        {
            "start": [r[0] for r in rows],
            "duration": [r[1] for r in rows],
            "size": [r[2] for r in rows],
            "local_host": [r[3] for r in rows],
            "remote_host": [r[4] for r in rows],
        }
    )


class TestHntesController:
    def make(self, **kw):
        defaults = dict(
            criteria=AlphaFlowCriteria(min_rate_bps=1e9, min_size_bytes=1e9)
        )
        defaults.update(kw)
        return HntesController(**defaults)

    def test_learning_installs_filters(self):
        ctl = self.make()
        ctl.analyze(day_log([(1, 2, 2.0, 3)]), cycle=0)
        filters = ctl.active_filters()
        assert len(filters) == 1
        assert filters[0].matches(1, 2)

    def test_slow_pairs_not_flagged(self):
        ctl = self.make()
        ctl.analyze(day_log([(1, 2, 0.2, 5)]), cycle=0)
        assert ctl.active_filters() == []

    def test_min_observations_threshold(self):
        ctl = self.make(min_observations=3)
        ctl.analyze(day_log([(1, 2, 2.0, 2)]), cycle=0)
        assert ctl.active_filters() == []
        ctl.analyze(day_log([(1, 2, 2.0, 1)]), cycle=1)
        assert len(ctl.active_filters()) == 1

    def test_filters_expire(self):
        ctl = self.make(expiry_cycles=2)
        ctl.analyze(day_log([(1, 2, 2.0, 1)]), cycle=0)
        assert len(ctl.active_filters(cycle=2)) == 1
        assert ctl.active_filters(cycle=3) == []

    def test_next_day_evaluation(self):
        """Filters learned on day 0 catch day-1 traffic of the same pair."""
        ctl = self.make()
        day0 = day_log([(1, 2, 2.0, 4), (3, 4, 0.1, 4)])
        ctl.analyze(day0, cycle=0)
        day1 = day_log([(1, 2, 2.0, 5), (3, 4, 0.1, 5)], start=1e6)
        report = ctl.apply_filters(day1, cycle=1)
        assert report.recall == pytest.approx(1.0)
        assert report.n_redirected == 5  # only the flagged pair
        assert report.precision == pytest.approx(1.0)

    def test_report_before_learning_catches_nothing(self):
        ctl = self.make()
        report = ctl.apply_filters(day_log([(1, 2, 2.0, 3)]), cycle=0)
        assert report.n_redirected == 0
        assert np.isnan(report.precision)

    def test_render_config(self):
        ctl = self.make()
        ctl.analyze(day_log([(7, 9, 2.0, 1)]), cycle=0)
        config = ctl.render_config()
        assert "redirect-7-9" in config
        assert "lsp lsp-7-9" in config

    def test_cycle_regression_rejected(self):
        ctl = self.make()
        ctl.analyze(day_log([(1, 2, 2.0, 1)]), cycle=5)
        with pytest.raises(ValueError):
            ctl.analyze(day_log([(1, 2, 2.0, 1)]), cycle=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            HntesController(min_observations=0)
        with pytest.raises(ValueError):
            HntesController(expiry_cycles=0)


class TestLambdaStation:
    def make(self, **kw):
        topo = esnet_like()
        idc = OscarsIDC(topo, setup_delay=HardwareSignalling(), **kw)
        return topo, idc, LambdaStation(topo, idc)

    def test_small_transfer_ignored(self):
        _, _, station = self.make()
        intent = TransferIntent("NERSC", "ORNL", 1e8, 1e9, 100.0)
        assert station.announce(intent).treatment is Treatment.IGNORE

    def test_fast_alpha_gets_dynamic_vc(self):
        topo, idc, station = self.make()
        intent = TransferIntent("NERSC", "ORNL", 50e9, 3e9, 100.0)
        ticket = station.announce(intent, now=50.0)
        assert ticket.treatment is Treatment.DYNAMIC_VC
        assert ticket.circuit_id is not None
        assert ticket.go_time >= intent.start_time
        assert idc.circuit(ticket.circuit_id).rate_bps == 3e9

    def test_moderate_alpha_uses_static_lsp(self):
        topo, _, station = self.make()
        station.preconfigure_lsp("NERSC", "ORNL")
        intent = TransferIntent("NERSC", "ORNL", 50e9, 1e9, 100.0)
        ticket = station.announce(intent)
        assert ticket.treatment is Treatment.STATIC_LSP
        assert ticket.lsp_path is not None
        assert ticket.lsp_path[0] == "NERSC" and ticket.lsp_path[-1] == "ORNL"

    def test_vc_rejection_falls_back_to_lsp(self):
        topo = esnet_like()
        idc = OscarsIDC(
            topo, setup_delay=HardwareSignalling(), reservable_fraction=0.01
        )
        station = LambdaStation(topo, idc)
        station.preconfigure_lsp("NERSC", "ORNL")
        intent = TransferIntent("NERSC", "ORNL", 50e9, 3e9, 100.0)
        ticket = station.announce(intent)
        assert ticket.treatment is Treatment.STATIC_LSP
        assert station.n_vc_fallbacks == 1

    def test_no_lsp_no_vc_means_ignore(self):
        topo = esnet_like()
        idc = OscarsIDC(
            topo, setup_delay=HardwareSignalling(), reservable_fraction=0.01
        )
        station = LambdaStation(topo, idc)
        intent = TransferIntent("NERSC", "ORNL", 50e9, 3e9, 100.0)
        assert station.announce(intent).treatment is Treatment.IGNORE

    def test_intent_validation(self):
        with pytest.raises(ValueError):
            TransferIntent("a", "b", 0.0, 1e9, 0.0)
        intent = TransferIntent("a", "b", 8e9, 1e9, 0.0)
        assert intent.expected_duration_s == pytest.approx(64.0)
