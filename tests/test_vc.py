"""Unit tests for circuits, the OSCARS IDC, and IDCP chaining."""

import math

import pytest

from repro.net.topology import esnet_like
from repro.vc.circuits import (
    BatchSignalling,
    CircuitState,
    HardwareSignalling,
    VirtualCircuit,
)
from repro.vc.idcp import DomainSegment, IdcpChain
from repro.vc.oscars import OscarsIDC, ReservationRejected, ReservationRequest


class TestVirtualCircuit:
    def test_lifecycle(self):
        vc = VirtualCircuit(0, ("a", "b"), 1e9, 0.0, 10.0)
        assert vc.state is CircuitState.RESERVED
        vc.activate()
        assert vc.state is CircuitState.ACTIVE
        vc.release()
        assert vc.state is CircuitState.RELEASED

    def test_double_activate_rejected(self):
        vc = VirtualCircuit(0, ("a", "b"), 1e9, 0.0, 10.0)
        vc.activate()
        with pytest.raises(RuntimeError):
            vc.activate()

    def test_double_release_rejected(self):
        vc = VirtualCircuit(0, ("a", "b"), 1e9, 0.0, 10.0)
        vc.release()
        with pytest.raises(RuntimeError):
            vc.release()

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            VirtualCircuit(0, ("a", "b"), 0.0, 0.0, 10.0)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            VirtualCircuit(0, ("a", "b"), 1e9, 10.0, 10.0)

    def test_duration(self):
        assert VirtualCircuit(0, ("a",), 1.0, 2.0, 5.0).duration_s == 3.0


class TestSetupDelayModels:
    def test_batch_waits_for_next_boundary(self):
        m = BatchSignalling(batch_window_s=60.0, signalling_s=1.0)
        assert m.ready_time(30.0) == pytest.approx(61.0)
        assert m.ready_time(59.9) == pytest.approx(61.0)

    def test_batch_on_boundary_waits_full_window(self):
        m = BatchSignalling(batch_window_s=60.0, signalling_s=1.0)
        assert m.ready_time(60.0) == pytest.approx(121.0)

    def test_batch_worst_case(self):
        assert BatchSignalling(60.0, 1.0).worst_case_s() == 61.0

    def test_hardware_fixed_delay(self):
        m = HardwareSignalling(delay_s=0.05)
        assert m.ready_time(100.0) == pytest.approx(100.05)
        assert m.worst_case_s() == 0.05


class TestOscarsIDC:
    def make(self, **kw):
        topo = esnet_like()
        return topo, OscarsIDC(topo, **kw)

    def test_immediate_request_pays_setup_delay(self):
        topo, idc = self.make()
        req = ReservationRequest("NERSC", "ORNL", 1e9, 100.0, 1000.0)
        vc = idc.create_reservation(req, request_time=100.0)
        assert vc.start_time > 100.0  # batch signalling pushed the start
        assert vc.start_time <= 100.0 + idc.setup_delay.worst_case_s()

    def test_advance_reservation_no_delay(self):
        topo, idc = self.make()
        req = ReservationRequest("NERSC", "ORNL", 1e9, 10_000.0, 20_000.0)
        vc = idc.create_reservation(req, request_time=0.0)
        assert vc.start_time == 10_000.0

    def test_request_after_start_rejected(self):
        topo, idc = self.make()
        req = ReservationRequest("NERSC", "ORNL", 1e9, 100.0, 1000.0)
        with pytest.raises(ValueError):
            idc.create_reservation(req, request_time=200.0)

    def test_setup_delay_consuming_window_rejected(self):
        topo, idc = self.make()
        # batch signalling is ready at t=121 > the requested end of 115
        req = ReservationRequest("NERSC", "ORNL", 1e9, 100.0, 115.0)
        with pytest.raises(ReservationRejected):
            idc.create_reservation(req, request_time=100.0)

    def test_over_capacity_rejected_on_all_paths(self):
        topo, idc = self.make(reservable_fraction=0.9)
        req = ReservationRequest("NERSC", "ORNL", 9.5e9, 1000.0, 2000.0)
        with pytest.raises(ReservationRejected):
            idc.create_reservation(req, request_time=0.0)

    def test_second_circuit_takes_alternate_path(self):
        """Path computation avoids the congested default (paper positive #2).

        A NERSC->ORNL circuit loads the southern backbone; a subsequent
        SLAC->NICS circuit (same backbone by default, different access
        links) must be steered around it.
        """
        topo, idc = self.make(reservable_fraction=1.0)
        vc1 = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 6e9, 1000.0, 2000.0),
            request_time=0.0,
        )
        vc2 = idc.create_reservation(
            ReservationRequest("SLAC", "NICS", 6e9, 1000.0, 2000.0),
            request_time=0.0,
        )
        backbone1 = {
            k for k in topo.path_links(list(vc1.path)) if k[0].startswith("rt-")
        }
        backbone2 = {
            k for k in topo.path_links(list(vc2.path)) if k[0].startswith("rt-")
        }
        assert not (backbone1 & backbone2)

    def test_provision_and_teardown(self):
        topo, idc = self.make()
        req = ReservationRequest("NERSC", "ORNL", 1e9, 1000.0, 2000.0)
        vc = idc.create_reservation(req, request_time=0.0)
        idc.provision(vc.circuit_id, now=1000.0)
        assert vc in idc.active_circuits
        idc.teardown(vc.circuit_id, now=1500.0)
        assert idc.active_circuits == []

    def test_provision_too_early(self):
        topo, idc = self.make()
        req = ReservationRequest("NERSC", "ORNL", 1e9, 1000.0, 2000.0)
        vc = idc.create_reservation(req, request_time=0.0)
        with pytest.raises(RuntimeError):
            idc.provision(vc.circuit_id, now=500.0)

    def test_extend(self):
        topo, idc = self.make()
        req = ReservationRequest("NERSC", "ORNL", 1e9, 1000.0, 2000.0)
        vc = idc.create_reservation(req, request_time=0.0)
        new = idc.extend(vc.circuit_id, 3000.0)
        assert new.end_time == 3000.0
        assert idc.circuit(vc.circuit_id).end_time == 3000.0

    def test_explicit_path_honoured(self):
        topo, idc = self.make()
        explicit = topo.path("NERSC", "ORNL")
        req = ReservationRequest("NERSC", "ORNL", 1e9, 1000.0, 2000.0)
        vc = idc.create_reservation(req, request_time=0.0, explicit_path=explicit)
        assert list(vc.path) == explicit

    def test_request_validation(self):
        with pytest.raises(ValueError):
            ReservationRequest("a", "b", -1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            ReservationRequest("a", "b", 1.0, 5.0, 5.0)


class TestIdcpChain:
    def make_chain(self):
        topo = esnet_like()
        west = OscarsIDC(topo, setup_delay=BatchSignalling(60.0, 1.0))
        east = OscarsIDC(topo, setup_delay=BatchSignalling(60.0, 1.0))
        segments = [
            DomainSegment("west", west, "NERSC", "ANL"),
            DomainSegment("east", east, "ANL", "BNL"),
        ]
        return IdcpChain(segments)

    def test_mismatched_stitch_rejected(self):
        topo = esnet_like()
        idc = OscarsIDC(topo)
        with pytest.raises(ValueError):
            IdcpChain(
                [
                    DomainSegment("a", idc, "NERSC", "ANL"),
                    DomainSegment("b", idc, "ORNL", "BNL"),
                ]
            )

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            IdcpChain([])

    def test_sequential_setup_delay_accumulates(self):
        chain = self.make_chain()
        circuit = chain.create_circuit(1e9, request_time=10.0, end_time=10_000.0)
        # two sequential batch windows: usable start is after the second
        assert circuit.usable_start > 60.0 + 1.0
        assert chain.worst_case_setup_s() == pytest.approx(122.0)

    def test_rollback_on_rejection(self):
        topo = esnet_like()
        west = OscarsIDC(topo)
        east = OscarsIDC(topo, reservable_fraction=0.01)  # east rejects
        chain = IdcpChain(
            [
                DomainSegment("west", west, "NERSC", "ANL"),
                DomainSegment("east", east, "ANL", "BNL"),
            ]
        )
        with pytest.raises(ReservationRejected):
            chain.create_circuit(5e9, request_time=0.0, end_time=10_000.0)
        assert west.scheduler.active_reservations == []

    def test_teardown_releases_all_segments(self):
        chain = self.make_chain()
        circuit = chain.create_circuit(1e9, request_time=10.0, end_time=10_000.0)
        chain.teardown(circuit)
        for seg in chain.segments:
            assert seg.idc.scheduler.active_reservations == []


class TestMathConsistency:
    def test_batch_mean_delay_half_window(self):
        """Uniform request times see ~half the batch window on average."""
        m = BatchSignalling(60.0, 0.0)
        delays = [m.ready_time(t) - t for t in [float(x) for x in range(1, 60)]]
        assert 25 < sum(delays) / len(delays) < 35

    def test_hardware_vs_batch_ratio(self):
        assert BatchSignalling().worst_case_s() / HardwareSignalling().worst_case_s() > 1000

    def test_infinite_not_produced(self):
        assert math.isfinite(BatchSignalling().ready_time(1e12))


class TestCrossDomainChain:
    """A true two-domain circuit: ESnet west of the exchange, Internet2 east."""

    def make_domains(self):
        from repro.net.topology import internet2_like

        esnet = esnet_like()
        esnet.add_site("EXCHANGE")
        esnet.add_link("EXCHANGE", "rt-chic", capacity_bps=10e9, delay_s=0.001)
        i2 = internet2_like()
        return esnet, i2

    def test_circuit_spans_both_providers(self):
        esnet, i2 = self.make_domains()
        chain = IdcpChain(
            [
                DomainSegment("esnet", OscarsIDC(esnet), "NERSC", "EXCHANGE"),
                DomainSegment("internet2", OscarsIDC(i2), "EXCHANGE", "UMICH"),
            ]
        )
        circuit = chain.create_circuit(2e9, request_time=0.0, end_time=7200.0)
        by_name = dict(circuit.segments)
        assert by_name["esnet"].path[0] == "NERSC"
        assert by_name["esnet"].path[-1] == "EXCHANGE"
        assert by_name["internet2"].path[0] == "EXCHANGE"
        assert by_name["internet2"].path[-1] == "UMICH"
        # both domains carry the reservation on their own links
        assert OscarsIDC  # (construction above would have raised otherwise)
        chain.teardown(circuit)

    def test_domain_capacities_independent(self):
        """Saturating ESnet does not consume Internet2 capacity."""
        esnet, i2 = self.make_domains()
        es_idc = OscarsIDC(esnet, reservable_fraction=1.0)
        i2_idc = OscarsIDC(i2, reservable_fraction=1.0)
        # fill the ESnet side of the exchange
        es_idc.create_reservation(
            ReservationRequest("NERSC", "EXCHANGE", 9e9, 1000.0, 2000.0),
            request_time=0.0,
        )
        # Internet2 still admits freely
        vc = i2_idc.create_reservation(
            ReservationRequest("EXCHANGE", "UMICH", 9e9, 1000.0, 2000.0),
            request_time=0.0,
        )
        assert vc.rate_bps == 9e9


class TestMessageSignalling:
    """Section IV's second provisioning option: explicit createPath."""

    def make(self):
        topo = esnet_like()
        idc = OscarsIDC(topo)
        vc = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 1000.0, 2000.0),
            request_time=0.0,
        )
        return idc, vc

    def test_create_path_activates_inside_window(self):
        idc, vc = self.make()
        active = idc.create_path(vc.circuit_id, now=1500.0)
        assert active.state is CircuitState.ACTIVE

    def test_create_path_before_window_rejected(self):
        idc, vc = self.make()
        with pytest.raises(RuntimeError, match="before"):
            idc.create_path(vc.circuit_id, now=500.0)

    def test_create_path_after_window_rejected(self):
        idc, vc = self.make()
        with pytest.raises(RuntimeError, match="closed"):
            idc.create_path(vc.circuit_id, now=2500.0)

    def test_message_beats_batch_for_immediate_use(self):
        """Explicit signalling activates in ~1 s; batch waits for the
        minute boundary — the Section IV trade-off."""
        from repro.sim.engine import EventLoop
        from repro.vc.provisioner import AutoProvisioner

        topo = esnet_like()
        idc = OscarsIDC(topo, setup_delay=HardwareSignalling(0.0))
        vc_msg = idc.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 61.0, 10_000.0),
            request_time=0.0,
        )
        idc.create_path(vc_msg.circuit_id, now=61.0)  # active at ~62 s

        idc2 = OscarsIDC(topo, setup_delay=HardwareSignalling(0.0))
        vc_auto = idc2.create_reservation(
            ReservationRequest("NERSC", "ORNL", 1e9, 61.0, 10_000.0),
            request_time=0.0,
        )
        loop = EventLoop(0.0)
        prov = AutoProvisioner(idc2, loop, batch_window_s=60.0)
        prov.start()
        loop.run(until=300.0)
        auto_time = next(
            a.time for a in prov.actions
            if a.circuit_id == vc_auto.circuit_id and a.action == "provisioned"
        )
        assert auto_time == 120.0  # waited for the boundary
        # message signalling was usable ~58 s earlier
        assert auto_time - 62.0 > 50.0
