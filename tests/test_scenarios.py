"""Tests for the prebuilt mechanistic scenarios (small-scale runs)."""

import numpy as np
import pytest

from repro.core.concurrency import concurrency_analysis
from repro.core.snmp_correlation import correlation_tables, link_load_table
from repro.core.throughput import categorized_throughput
from repro.net.crosstraffic import CrossTrafficConfig, generate_cross_traffic
from repro.net.snmp import SnmpCollector
from repro.net.topology import esnet_like
from repro.sim.scenarios import (
    anl_nersc_mechanistic,
    default_dtns,
    nersc_ornl_snmp_experiment,
    vc_replay_scenario,
)


@pytest.fixture(scope="module")
def snmp_exp():
    # 10 days, 50 tests: enough structure, fast enough for CI
    return nersc_ornl_snmp_experiment(seed=5, n_tests=50, days=10)


class TestSnmpExperiment:
    def test_all_tests_complete(self, snmp_exp):
        assert len(snmp_exp.test_log) == 50

    def test_five_monitored_links(self, snmp_exp):
        assert set(snmp_exp.links) == {"rt1", "rt2", "rt3", "rt4", "rt5"}

    def test_throughput_variance_present(self, snmp_exp):
        tput = snmp_exp.test_log.throughput_bps
        assert tput.max() > 1.2 * tput.min()

    def test_alpha_flows_dominate_clean_links(self, snmp_exp):
        total, other = correlation_tables(snmp_exp.test_log, snmp_exp.links)
        # upstream links (rt1/rt2) carry only the tests plus light noise
        assert total.per_quartile[4]["rt1"] > 0.5
        assert abs(other.overall["rt1"]) < 0.5

    def test_link_loads_below_capacity(self, snmp_exp):
        loads = link_load_table(snmp_exp.test_log, snmp_exp.links)
        for summary in loads.values():
            assert summary.maximum < 10e9
            assert summary.mean > 0.5e9  # the transfers themselves

    def test_cross_traffic_optional(self):
        exp = nersc_ornl_snmp_experiment(
            seed=1, n_tests=6, days=2, cross_traffic=False
        )
        assert len(exp.test_log) == 6


class TestMechanisticAnl:
    @pytest.fixture(scope="class")
    def mech(self):
        return anl_nersc_mechanistic(seed=7, n_batches=60)

    def test_counts(self, mech):
        assert len(mech.log) == 334
        assert sum(int(m.sum()) for m in mech.masks.values()) == 334

    def test_disk_bottleneck_emerges(self, mech):
        cats = {c.category: c for c in categorized_throughput(
            {k: mech.category(k) for k in mech.masks}
        )}
        assert cats["mem-mem"].summary.median > cats["disk-disk"].summary.median

    def test_eq2_correlation_positive(self, mech):
        a = concurrency_analysis(
            mech.log, subset=mech.mm_indices(), capacity_bps=3.5e9
        )
        assert a.correlation > 0.2


class TestCrossTraffic:
    def test_flows_deposit_bytes(self):
        topo = esnet_like()
        col = SnmpCollector()
        flows = generate_cross_traffic(
            topo, 0.0, 3600.0,
            config=CrossTrafficConfig(arrival_rate_per_s=0.05),
            rng=np.random.default_rng(0), collector=col,
        )
        assert len(flows) > 50
        total_link_bytes = sum(
            col.counter(k).total_bytes() for k in col.keys()
        )
        offered = sum(f.nbytes for f in flows)
        assert total_link_bytes >= offered  # each flow hits >= 1 link

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            generate_cross_traffic(esnet_like(), 10.0, 10.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CrossTrafficConfig(arrival_rate_per_s=0.0)
        with pytest.raises(ValueError):
            CrossTrafficConfig(min_rate_bps=0.0)


class TestReplayScenario:
    def test_scenario_shape(self):
        sc = vc_replay_scenario(seed=1, n_jobs=10)
        assert len(sc.jobs) == 10
        assert len(sc.contenders) == 60
        assert sc.vc_rate_bps > 0
        assert all(j.src == "NERSC" for j in sc.jobs)


class TestDiurnalCrossTraffic:
    def test_profile_modulates_arrivals(self):
        from repro.workload.diurnal import DiurnalProfile, hourly_histogram

        topo = esnet_like()
        flows = generate_cross_traffic(
            topo, 0.0, 7 * 86_400.0,
            config=CrossTrafficConfig(arrival_rate_per_s=0.02),
            rng=np.random.default_rng(5),
            diurnal_profile=DiurnalProfile.business_hours(),
        )
        hist = hourly_histogram(np.array([f.start for f in flows]))
        assert hist[10] > 2 * hist[4]  # business-hours pulse survives
