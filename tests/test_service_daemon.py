"""The daemon as a real process: SIGTERM drain with a killed subprocess.

``test_service.py`` exercises the daemon in-process; this file pins the
*process* contracts with the CLI entry point running as an actual child:

* the daemon serves through a fault storm (flaps, rejections,
  signalling timeouts) and a deliberately-panicked work loop, and
  ``/health`` stays ok (supervision restarts are not ill health);
* SIGTERM drains gracefully — exit code 75, a machine-readable drain
  report on stdout, and *every* accepted task settled (``n_lost == 0``);
* work still in flight at SIGTERM is checkpointed to the journal, not
  dropped.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.api import ServiceClient

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="Unix sockets and SIGTERM semantics"
)


def _spawn_daemon(tmp_path, *extra_args):
    socket_path = str(tmp_path / "svc.sock")
    env = dict(os.environ)
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src")
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", socket_path,
            "--seed", "3",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while not os.path.exists(socket_path):
        if child.poll() is not None:
            raise AssertionError(
                f"daemon died at startup: {child.communicate()[1]}"
            )
        if time.monotonic() > deadline:
            child.kill()
            raise AssertionError("daemon never opened its socket")
        time.sleep(0.05)
    return child, socket_path


def _terminate(child) -> tuple[int, dict]:
    """SIGTERM the daemon, return (exit code, parsed drain report)."""
    child.send_signal(signal.SIGTERM)
    out, err = child.communicate(timeout=60)
    lines = [line for line in out.strip().splitlines() if line]
    assert lines, f"no drain report on stdout; stderr:\n{err}"
    report = json.loads(lines[-1])
    assert report["event"] == "drain-report", report
    return child.returncode, report


class TestDaemonProcess:
    def test_fault_storm_soak_survives_and_drains_clean(self, tmp_path):
        child, socket_path = _spawn_daemon(
            tmp_path,
            "--time-scale", "3000",
            "--flaps-per-hour", "20",
            "--reject-prob", "0.3",
            "--timeout-prob", "0.2",
            "--chaos-ops",
        )
        try:
            with ServiceClient(socket_path, timeout=60.0) as client:
                # a transfer completes while circuits flap underneath it
                first = client.submit([4e9, 2e9], tenant="ci", wait=True)
                assert first["ok"] and first["state"] == "succeeded"

                # panic a work loop mid-storm; supervision restarts it
                assert client.crash()["ok"]
                second = client.submit([8e9], tenant="ci", wait=True)
                assert second["ok"] and second["state"] == "succeeded"

                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    status = client.status()["status"]
                    if status["health"]["n_restarts"] >= 1:
                        break
                    time.sleep(0.1)
                assert status["health"]["n_restarts"] >= 1
                assert status["health"]["ok"], status
                assert not any(
                    loop["dead"] for loop in status["loops"].values()
                ), status
        finally:
            code, report = _terminate(child)

        assert code == 75
        metrics = report["metrics"]
        assert metrics["n_accepted"] == 2
        assert metrics["n_settled"] == 2
        assert metrics["n_lost"] == 0
        assert report["exit_code"] == 75
        # restart survived into the final supervision records
        assert any(
            loop["restarts"] >= 1 for loop in report["loops"].values()
        ), report
        # the daemon removed its socket on the way out
        assert not os.path.exists(socket_path)

    def test_sigterm_checkpoints_in_flight_work(self, tmp_path):
        # a glacial clock (1 virtual s per real s) guarantees the 8 GB
        # transfers cannot finish inside the short drain grace window
        child, socket_path = _spawn_daemon(
            tmp_path,
            "--time-scale", "1",
            "--workers", "1",
            "--drain-grace", "0.2",
        )
        try:
            with ServiceClient(socket_path, timeout=30.0) as client:
                active = client.submit([8e9], tenant="ci")
                queued = client.submit([8e9], tenant="ci")
                assert active["ok"] and queued["ok"]
                time.sleep(0.3)  # let the worker pick up the first one
        finally:
            code, report = _terminate(child)

        assert code == 75
        metrics = report["metrics"]
        assert metrics["n_accepted"] == 2
        assert metrics["n_checkpointed"] == 2
        assert metrics["n_lost"] == 0
        checkpoint_path = report["checkpoint_path"]
        assert checkpoint_path == str(tmp_path / "svc.sock.ckpt.jsonl")
        lines = [
            json.loads(line)
            for line in open(checkpoint_path, encoding="utf-8")
            .read().splitlines()
        ]
        assert lines[0]["kind"] == "service-checkpoint"
        entries = sorted(lines[1:], key=lambda e: e["request_id"])
        assert {e["request_id"] for e in entries} == {
            active["request_id"], queued["request_id"]
        }
        states = {e["state"] for e in entries}
        assert "active" in states and "queued" in states

    def test_rejected_request_exits_75_via_cli(self, tmp_path):
        # the `request` subcommand maps an admission rejection to the
        # retryable exit code, mirroring the daemon's own drain contract
        # glacial clock: the first request stays in flight (and holds
        # the whole queue_limit=1 bound) while the CLI child starts up
        child, socket_path = _spawn_daemon(
            tmp_path,
            "--time-scale", "1",
            "--workers", "1",
            "--queue-limit", "1",
            "--drain-grace", "0.2",
        )
        env = dict(os.environ)
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "src")
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        try:
            with ServiceClient(socket_path, timeout=30.0) as client:
                assert client.submit([8e9], tenant="ci")["ok"]
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "request",
                    "--socket", socket_path,
                    "submit", "--sizes", "1e9",
                ],
                env=env, capture_output=True, text=True, timeout=30,
            )
            assert proc.returncode == 75, proc.stdout + proc.stderr
            resp = json.loads(proc.stdout)
            assert resp["status"] == "rejected"
            assert resp["retry_after_s"] > 0
        finally:
            code, _ = _terminate(child)
        assert code == 75
