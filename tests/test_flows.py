"""Unit and property tests for the max-min fair allocator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flows import FlowSpec, max_min_fair

L1 = ("a", "b")
L2 = ("b", "c")


class TestBasics:
    def test_single_flow_takes_link(self):
        rates = max_min_fair([FlowSpec(0, (L1,))], {L1: 10.0})
        assert rates[0] == pytest.approx(10.0)

    def test_equal_split(self):
        flows = [FlowSpec(i, (L1,)) for i in range(4)]
        rates = max_min_fair(flows, {L1: 8.0})
        assert all(rates[i] == pytest.approx(2.0) for i in range(4))

    def test_demand_cap_respected(self):
        flows = [FlowSpec(0, (L1,), demand_bps=1.0), FlowSpec(1, (L1,))]
        rates = max_min_fair(flows, {L1: 10.0})
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(9.0)

    def test_weighted_split(self):
        flows = [FlowSpec(0, (L1,), weight=1.0), FlowSpec(1, (L1,), weight=3.0)]
        rates = max_min_fair(flows, {L1: 8.0})
        assert rates[0] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(6.0)

    def test_classic_three_flow_example(self):
        """Textbook max-min: flows (A on L1), (B on L2), (C on L1+L2)."""
        flows = [
            FlowSpec(0, (L1,)),
            FlowSpec(1, (L2,)),
            FlowSpec(2, (L1, L2)),
        ]
        rates = max_min_fair(flows, {L1: 10.0, L2: 4.0})
        # C and B share L2 -> 2 each; A then fills L1 to 8
        assert rates[2] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(2.0)
        assert rates[0] == pytest.approx(8.0)

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            max_min_fair([FlowSpec(0, (("x", "y"),))], {L1: 1.0})

    def test_no_flows(self):
        assert max_min_fair([], {L1: 5.0}) == {}

    def test_linkless_flow_gets_demand(self):
        rates = max_min_fair([FlowSpec(0, (), demand_bps=3.0)], {})
        assert rates[0] == 3.0

    def test_linkless_uncapped_flow_infinite(self):
        rates = max_min_fair([FlowSpec(0, ())], {})
        assert rates[0] == math.inf

    def test_zero_demand_flow(self):
        flows = [FlowSpec(0, (L1,), demand_bps=0.0), FlowSpec(1, (L1,))]
        rates = max_min_fair(flows, {L1: 6.0})
        assert rates[0] == pytest.approx(0.0)
        assert rates[1] == pytest.approx(6.0)


class TestSpecValidation:
    def test_negative_demand(self):
        with pytest.raises(ValueError):
            FlowSpec(0, (L1,), demand_bps=-1)

    def test_zero_weight(self):
        with pytest.raises(ValueError):
            FlowSpec(0, (L1,), weight=0)


@st.composite
def allocation_problem(draw):
    n_links = draw(st.integers(min_value=1, max_value=5))
    links = [(f"n{i}", f"n{i+1}") for i in range(n_links)]
    caps = {
        link: draw(st.floats(min_value=1.0, max_value=100.0)) for link in links
    }
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for fid in range(n_flows):
        k = draw(st.integers(min_value=1, max_value=n_links))
        start = draw(st.integers(min_value=0, max_value=n_links - k))
        demand = draw(
            st.one_of(
                st.just(math.inf),
                st.floats(min_value=0.1, max_value=50.0),
            )
        )
        weight = draw(st.floats(min_value=0.5, max_value=8.0))
        flows.append(
            FlowSpec(fid, tuple(links[start : start + k]), demand, weight)
        )
    return flows, caps


class TestAllocationProperties:
    @given(allocation_problem())
    @settings(max_examples=100)
    def test_feasibility(self, problem):
        """No link is oversubscribed and no demand is exceeded."""
        flows, caps = problem
        rates = max_min_fair(flows, caps)
        used = {link: 0.0 for link in caps}
        for f in flows:
            assert rates[f.flow_id] <= f.demand_bps + 1e-6
            assert rates[f.flow_id] >= 0.0
            for link in f.links:
                used[link] += rates[f.flow_id]
        for link, total in used.items():
            assert total <= caps[link] * (1 + 1e-6)

    @given(allocation_problem())
    @settings(max_examples=100)
    def test_pareto_no_free_capacity(self, problem):
        """Every flow is blocked: at demand, or on a saturated link."""
        flows, caps = problem
        rates = max_min_fair(flows, caps)
        used = {link: 0.0 for link in caps}
        for f in flows:
            for link in f.links:
                used[link] += rates[f.flow_id]
        for f in flows:
            at_demand = rates[f.flow_id] >= f.demand_bps - 1e-6
            on_saturated = any(
                used[link] >= caps[link] * (1 - 1e-6) for link in f.links
            )
            assert at_demand or on_saturated

    @given(allocation_problem())
    @settings(max_examples=60)
    def test_equal_flows_equal_rates(self, problem):
        """Flows with identical links/demand/weight receive identical rates."""
        flows, caps = problem
        # duplicate the first flow under a fresh id
        twin = FlowSpec(
            9999, flows[0].links, flows[0].demand_bps, flows[0].weight
        )
        rates = max_min_fair(list(flows) + [twin], caps)
        assert rates[9999] == pytest.approx(rates[flows[0].flow_id], rel=1e-6)
