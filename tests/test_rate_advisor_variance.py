"""Unit tests for the circuit-rate advisor and variance decomposition."""

import numpy as np
import pytest

from repro.core.rate_advisor import RateAdvisor
from repro.core.variance import decompose_throughput_variance, eta_squared
from repro.gridftp.records import TransferLog
from repro.workload.synth import ncar_nics


def history_log(seed=0, n=2000):
    """Synthetic history: stripes strongly determine throughput."""
    rng = np.random.default_rng(seed)
    stripes = rng.integers(1, 4, n)
    sizes = rng.uniform(1e9, 20e9, n)  # large: past the ramp regime
    tput = stripes * 400e6 * rng.lognormal(0.0, 0.2, n)
    return TransferLog(
        {
            "start": np.arange(n) * 100.0,
            "duration": sizes * 8 / tput,
            "size": sizes,
            "stripes": stripes,
            "streams": np.full(n, 8),
            "local_host": rng.integers(0, 2, n),
            "remote_host": rng.integers(10, 12, n),
        }
    )


class TestRateAdvisor:
    def test_conditional_quantile_tracks_stripes(self):
        advisor = RateAdvisor(history_log())
        q1, n1, _ = advisor.conditional_quantile(0.5, stripes=1, size=5e9)
        q3, n3, _ = advisor.conditional_quantile(0.5, stripes=3, size=5e9)
        assert n1 >= advisor.MIN_SUPPORT and n3 >= advisor.MIN_SUPPORT
        assert q3 == pytest.approx(3 * q1, rel=0.15)

    def test_fallback_when_cell_thin(self):
        advisor = RateAdvisor(history_log())
        # an unseen pair: the pair condition must be dropped, not fail
        value, support, cell = advisor.conditional_quantile(
            0.75, local=999, remote=888, stripes=2, size=5e9
        )
        assert support >= advisor.MIN_SUPPORT
        assert cell[0] is None  # pair was dropped

    def test_advise_duration_consistent(self):
        advisor = RateAdvisor(history_log())
        advice = advisor.advise(100e9, stripes=2, streams=8,
                                rate_quantile=0.75, safety_factor=1.25)
        assert advice.duration_s == pytest.approx(
            100e9 * 8 / advice.rate_bps * 1.25
        )
        assert advice.support >= advisor.MIN_SUPPORT
        assert advice.reservation_bytes > 100e9  # padding reserves extra

    def test_higher_quantile_higher_rate(self):
        advisor = RateAdvisor(history_log())
        lo = advisor.advise(10e9, stripes=2, rate_quantile=0.25)
        hi = advisor.advise(10e9, stripes=2, rate_quantile=0.9)
        assert hi.rate_bps > lo.rate_bps
        assert hi.duration_s < lo.duration_s

    def test_outcome_scoring(self):
        advisor = RateAdvisor(history_log())
        advice = advisor.advise(10e9, stripes=2)
        fast = advisor.outcome_against(advice, advice.rate_bps * 2)
        slow = advisor.outcome_against(advice, advice.rate_bps * 0.5)
        assert fast["throttled"] and not slow["throttled"]
        assert fast["waste_fraction"] == pytest.approx(0.0)
        assert slow["waste_fraction"] == pytest.approx(0.5)

    def test_works_on_realistic_history(self):
        advisor = RateAdvisor(ncar_nics(seed=2, n_transfers=5000))
        advice = advisor.advise(200e9, stripes=2, streams=4)
        assert 1e8 < advice.rate_bps < 5e9

    def test_validation(self):
        advisor = RateAdvisor(history_log())
        with pytest.raises(ValueError):
            advisor.advise(0.0)
        with pytest.raises(ValueError):
            advisor.advise(1e9, safety_factor=0.5)
        with pytest.raises(ValueError):
            advisor.conditional_quantile(1.5)
        with pytest.raises(ValueError):
            RateAdvisor(TransferLog())


class TestEtaSquared:
    def test_fully_explained(self):
        values = np.array([1.0, 1.0, 5.0, 5.0])
        groups = np.array([0, 0, 1, 1])
        assert eta_squared(values, groups) == pytest.approx(1.0)

    def test_unexplained(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=400)
        groups = rng.integers(0, 2, 400)
        assert eta_squared(values, groups) < 0.05

    def test_single_group_nan(self):
        assert np.isnan(eta_squared(np.array([1.0, 2.0]), np.array([0, 0])))

    def test_zero_variance_nan(self):
        assert np.isnan(eta_squared(np.array([3.0, 3.0]), np.array([0, 1])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            eta_squared(np.zeros(3), np.zeros(2))


class TestDecomposition:
    def test_stripes_dominate_when_constructed_to(self):
        effects = decompose_throughput_variance(
            history_log(), include_concurrency=False
        )
        assert effects[0].factor == "stripes"
        assert effects[0].eta_squared > 0.5

    def test_ncar_ranking_matches_paper_narrative(self):
        """On NCAR-like data: stripes matter, time-of-day does not."""
        log = ncar_nics(seed=2, n_transfers=6000)
        effects = {
            e.factor: e.eta_squared
            for e in decompose_throughput_variance(log, include_concurrency=False)
        }
        assert effects["stripes"] > 3 * effects.get("hour", 0.0)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            decompose_throughput_variance(history_log(n=3))
