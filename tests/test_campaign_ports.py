"""The ported campaigns must report exactly what they did pre-refactor.

The chaos, profile, mechanistic, SNMP, and managed-service campaigns now
run through the experiment framework (spec -> Runner -> scenario).  These
tests pin the contract of that port: for fixed seeds, going through the
framework produces results identical to calling the underlying campaign
functions directly, reports survive the JSON round-trip losslessly, and
the old ``repro.sim.scenarios`` import surface still resolves.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ChaosConfig,
    ExperimentSpec,
    ManagedChaosConfig,
    ResultCache,
    Runner,
    chaos_config_from_params,
    chaos_params_from_config,
    chaos_sweep,
    get_scenario,
    report_from_dict,
    report_to_dict,
    run_chaos,
    run_managed_chaos,
)
from repro.faults.recovery import BackoffPolicy
from repro.gridftp.reliability import RestartPolicy
from repro.vc.policy import FallbackPolicy

SMALL = ChaosConfig(
    n_jobs=3,
    job_bytes=4e9,
    rejection_prob=0.3,
    setup_timeout_prob=0.2,
    flaps_per_hour=20.0,
)


class TestChaosConfigParams:
    def test_params_round_trip_exact(self):
        config = ChaosConfig(
            n_jobs=4,
            rejection_prob=0.5,
            fallback=FallbackPolicy(setup_deadline_s=60.0),
            backoff=BackoffPolicy(max_retries=2),
            restart=RestartPolicy(marker_interval_bytes=32e6, reconnect_s=2.0),
        )
        params = chaos_params_from_config(config)
        assert chaos_config_from_params(params) == config
        # and the flattening is JSON-safe (what the spec/cache require)
        assert json.loads(json.dumps(params)) == params

    def test_report_json_round_trip_lossless(self):
        report = run_chaos(SMALL, seed=2)
        wire = json.loads(json.dumps(report_to_dict(report)))
        assert report_from_dict(wire) == report

    def test_report_round_trip_with_incomplete_jobs(self):
        # a hostile-enough config leaves inf walls; Infinity must survive
        config = ChaosConfig(
            n_jobs=2, job_bytes=4e9, flaps_per_hour=0.0, rejection_prob=1.0,
            backoff=BackoffPolicy(max_retries=1),
        )
        report = run_chaos(config, seed=0)
        wire = json.loads(json.dumps(report_to_dict(report)))
        assert report_from_dict(wire) == report


class TestChaosSweepPort:
    def test_sweep_equals_direct_product_loop(self):
        rejections = [0.0, 0.3]
        timeouts = [0.2]
        rates = [0.0, 30.0]
        via_runner = chaos_sweep(
            rates,
            config=SMALL,
            seed=11,
            rejection_probs=rejections,
            timeout_probs=timeouts,
        )
        import dataclasses

        direct = []
        for rej in rejections:
            for to in timeouts:
                for rate in rates:
                    cfg = dataclasses.replace(
                        SMALL,
                        rejection_prob=rej,
                        setup_timeout_prob=to,
                        flaps_per_hour=rate,
                    )
                    direct.append(run_chaos(cfg, seed=11))
        assert via_runner == direct

    def test_single_axis_keeps_historical_order(self):
        reports = chaos_sweep([0.0, 30.0], config=SMALL, seed=4)
        assert [r.flaps_per_hour for r in reports] == [0.0, 30.0]
        # omitted axes stay pinned at the config's values
        assert all(r.rejection_prob == SMALL.rejection_prob for r in reports)
        assert all(r.setup_timeout_prob == SMALL.setup_timeout_prob for r in reports)

    def test_sweep_through_cache_is_stable(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        first = chaos_sweep(
            [0.0, 30.0], config=SMALL, seed=11, runner=Runner(cache=cache)
        )
        n_artifacts = len(cache)
        assert n_artifacts == 2
        second = chaos_sweep(
            [0.0, 30.0], config=SMALL, seed=11, runner=Runner(cache=cache)
        )
        assert second == first
        assert len(cache) == n_artifacts  # nothing recomputed or re-keyed


class TestScenarioRegistryPorts:
    def test_chaos_scenario_matches_run_chaos(self):
        params = chaos_params_from_config(SMALL)
        via_registry = get_scenario("chaos")(params, 7)
        assert report_from_dict(via_registry) == run_chaos(SMALL, seed=7)

    def test_mechanistic_scenario_matches_direct(self):
        from repro.sim.scenarios import anl_nersc_mechanistic

        summary = get_scenario("mechanistic")({"n_batches": 12}, 3)
        mech = anl_nersc_mechanistic(seed=3, n_batches=12)
        assert summary["n_transfers"] == len(mech.log)
        assert sorted(summary["categories"]) == sorted(mech.masks)
        for name, cat_summary in summary["categories"].items():
            assert cat_summary["n"] == len(mech.category(name))

    def test_snmp_scenario_matches_direct(self):
        import numpy as np

        from repro.sim.scenarios import nersc_ornl_snmp_experiment

        params = {"n_tests": 20, "days": 3, "cross_traffic": False}
        summary = get_scenario("snmp")(params, 5)
        exp = nersc_ornl_snmp_experiment(
            seed=5, n_tests=20, days=3, cross_traffic=False
        )
        assert summary["n_tests"] == len(exp.test_log)
        assert summary["n_transfers"] == len(exp.full_log)
        assert summary["median_test_tput_bps"] == pytest.approx(
            float(np.median(exp.test_log.throughput_bps))
        )

    def test_managed_scenario_matches_direct(self):
        config = ManagedChaosConfig(
            n_tasks=2,
            files_per_task=3,
            file_bytes=2e9,
            flaps_per_hour=40.0,
        )
        import dataclasses

        params = dataclasses.asdict(config)
        via_registry = get_scenario("managed_service")(params, 9)
        assert via_registry == run_managed_chaos(config, seed=9).as_dict()

    def test_synth_scenario_runs(self):
        summary = get_scenario("synth")(
            {"dataset": "ncar-nics", "n_transfers": 600}, 3
        )
        assert summary["dataset"] == "ncar-nics"
        assert summary["n_transfers"] > 0
        assert summary["p95_tput_mbps"] >= summary["p50_tput_mbps"]


class TestManagedChaosDeterminism:
    def test_same_seed_same_report(self):
        config = ManagedChaosConfig(
            n_tasks=2, files_per_task=3, file_bytes=2e9, flaps_per_hour=60.0
        )
        assert run_managed_chaos(config, seed=4) == run_managed_chaos(config, seed=4)

    def test_clean_run_has_unit_inflation(self):
        config = ManagedChaosConfig(
            n_tasks=2, files_per_task=3, file_bytes=2e9, flaps_per_hour=0.0
        )
        report = run_managed_chaos(config, seed=0)
        assert report.n_succeeded == 2
        assert report.n_files_moved == 6
        assert report.n_flaps_injected == 0
        assert report.inflation == pytest.approx(1.0)


class TestLegacyImportSurface:
    def test_scenarios_module_lazy_reexports(self):
        import repro.experiments.campaigns as campaigns
        import repro.sim.scenarios as scenarios

        assert scenarios.ChaosConfig is campaigns.ChaosConfig
        assert scenarios.run_chaos is campaigns.run_chaos
        assert scenarios.chaos_sweep is campaigns.chaos_sweep
        assert scenarios.ProfileReport is campaigns.ProfileReport
        assert scenarios.profile_campaign is campaigns.profile_campaign

    def test_from_import_still_works(self):
        from repro.sim.scenarios import ChaosConfig as LegacyConfig

        assert LegacyConfig is ChaosConfig

    def test_unknown_attribute_still_raises(self):
        import repro.sim.scenarios as scenarios

        with pytest.raises(AttributeError):
            scenarios.definitely_not_a_symbol
