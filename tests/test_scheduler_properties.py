"""Property tests for the admission scheduler (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import esnet_like
from repro.vc.scheduler import AdmissionError, BandwidthScheduler

_TOPO = esnet_like()
_PATHS = [
    _TOPO.path("NERSC", "ORNL"),
    _TOPO.path("SLAC", "BNL"),
    _TOPO.path("NCAR", "ANL"),
]


@st.composite
def reservation_sequence(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    out = []
    for _ in range(n):
        path_idx = draw(st.integers(min_value=0, max_value=len(_PATHS) - 1))
        rate = draw(st.floats(min_value=0.1e9, max_value=6e9))
        start = draw(st.floats(min_value=0.0, max_value=5_000.0))
        length = draw(st.floats(min_value=1.0, max_value=3_000.0))
        out.append((path_idx, rate, start, start + length))
    return out


class TestSchedulerProperties:
    @given(reservation_sequence())
    @settings(max_examples=60, deadline=None)
    def test_never_oversubscribed(self, seq):
        """Whatever gets admitted, no instant commits more than the limit."""
        sched = BandwidthScheduler(_TOPO, reservable_fraction=0.9)
        admitted = []
        for path_idx, rate, start, end in seq:
            try:
                sched.reserve(_PATHS[path_idx], rate, start, end)
                admitted.append((path_idx, rate, start, end))
            except AdmissionError:
                pass
        # check commitment at every event boundary on every used link
        boundaries = sorted(
            {t for _, _, s, e in admitted for t in (s, e)}
        )
        for t in boundaries:
            committed = sched.committed_now(t + 1e-6)
            for key, level in committed.items():
                assert level <= 0.9 * _TOPO.link_capacity(key) + 1e-3

    @given(reservation_sequence(), st.floats(min_value=0.1e9, max_value=5e9),
           st.floats(min_value=10.0, max_value=1_000.0))
    @settings(max_examples=40, deadline=None)
    def test_earliest_slot_always_admissible(self, seq, rate, duration):
        """find_earliest_slot's answer must survive actual admission."""
        sched = BandwidthScheduler(_TOPO, reservable_fraction=0.9)
        for path_idx, r, start, end in seq:
            try:
                sched.reserve(_PATHS[path_idx], r, start, end)
            except AdmissionError:
                pass
        slot = sched.find_earliest_slot(_PATHS[0], rate, duration, not_before=0.0)
        if slot is not None:
            sched.reserve(_PATHS[0], rate, slot, slot + duration)

    @given(reservation_sequence())
    @settings(max_examples=40, deadline=None)
    def test_release_restores_full_capacity(self, seq):
        sched = BandwidthScheduler(_TOPO, reservable_fraction=1.0)
        ids = []
        for path_idx, rate, start, end in seq:
            try:
                res = sched.reserve(_PATHS[path_idx], rate, start, end)
                ids.append(res.reservation_id)
            except AdmissionError:
                pass
        for rid in ids:
            sched.release(rid)
        for p in _PATHS:
            assert sched.available_rate(p, 0.0, 10_000.0) == pytest.approx(
                10e9
            )
