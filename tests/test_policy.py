"""Unit tests for VC usage policies (session hold, α redirection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alpha_flows import AlphaFlowCriteria
from repro.core.sessions import group_sessions
from repro.gridftp.records import TransferLog
from repro.vc.policy import AlphaRedirector, SessionHoldPolicy


def feed(policy, rows):
    for start, dur in rows:
        policy.on_transfer(start, dur)
    return policy.finish()


class TestSessionHoldPolicy:
    def test_single_episode(self):
        eps = feed(SessionHoldPolicy(60.0), [(0, 10), (30, 10)])
        assert len(eps) == 1
        assert eps[0].n_transfers == 2

    def test_gap_opens_new_circuit(self):
        p = SessionHoldPolicy(60.0)
        assert p.on_transfer(0, 10) is True
        assert p.on_transfer(200, 10) is True
        eps = p.finish()
        assert len(eps) == 2

    def test_within_gap_reuses(self):
        p = SessionHoldPolicy(60.0)
        p.on_transfer(0, 10)
        assert p.on_transfer(30, 10) is False

    def test_hold_tail_extends_episode(self):
        eps = feed(SessionHoldPolicy(60.0, hold_tail=True), [(0, 10), (200, 10)])
        assert eps[0].end == pytest.approx(10 + 60)
        # final episode flushed without tail
        assert eps[1].end == pytest.approx(210)

    def test_no_hold_tail(self):
        eps = feed(SessionHoldPolicy(60.0, hold_tail=False), [(0, 10), (200, 5)])
        assert eps[0].end == pytest.approx(10)

    def test_busy_time_union(self):
        # overlapping transfers: union, not sum
        eps = feed(SessionHoldPolicy(60.0, hold_tail=False), [(0, 10), (5, 10)])
        assert eps[0].busy_s == pytest.approx(15)

    def test_idle_fraction(self):
        eps = feed(SessionHoldPolicy(10.0, hold_tail=False), [(0, 10), (15, 5)])
        ep = eps[0]
        assert ep.duration_s == pytest.approx(20)
        assert ep.idle_fraction == pytest.approx(1 - 15 / 20)

    def test_out_of_order_rejected(self):
        p = SessionHoldPolicy(60.0)
        p.on_transfer(100, 1)
        with pytest.raises(ValueError):
            p.on_transfer(50, 1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SessionHoldPolicy(60.0).on_transfer(0, -1)

    def test_negative_g_rejected(self):
        with pytest.raises(ValueError):
            SessionHoldPolicy(-1)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=50),
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0, max_value=120),
    )
    @settings(max_examples=60)
    def test_episode_count_matches_session_grouping(self, increments, g):
        """The online policy and the offline analysis agree on boundaries."""
        starts = np.cumsum([inc for inc, _ in increments])
        rows = [(float(s), float(d)) for s, (_, d) in zip(starts, increments)]
        policy = SessionHoldPolicy(g)
        episodes = feed(policy, rows)
        log = TransferLog(
            {
                "start": [r[0] for r in rows],
                "duration": [r[1] for r in rows],
                "size": [1.0] * len(rows),
                "remote_host": [3] * len(rows),
            }
        )
        sessions = group_sessions(log, g)
        assert len(episodes) == len(sessions)
        assert sorted(e.n_transfers for e in episodes) == sorted(
            sessions.n_transfers.tolist()
        )


class TestAlphaRedirector:
    def make_log(self, rates_gbps, pair=(1, 2)):
        n = len(rates_gbps)
        sizes = np.full(n, 10e9)
        durations = sizes * 8 / (np.array(rates_gbps) * 1e9)
        starts = np.arange(n) * 1e4
        return TransferLog(
            {
                "start": starts,
                "duration": durations,
                "size": sizes,
                "local_host": [pair[0]] * n,
                "remote_host": [pair[1]] * n,
            }
        )

    def test_first_alpha_not_redirected_rest_are(self):
        log = self.make_log([2.0, 2.0, 2.0])
        decision = AlphaRedirector().decide(log)
        assert decision.redirected.tolist() == [False, True, True]
        assert decision.n_redirected == 2

    def test_slow_flows_never_flag_pair(self):
        log = self.make_log([0.1, 0.1, 0.1])
        decision = AlphaRedirector().decide(log)
        assert decision.n_redirected == 0

    def test_pairs_independent(self):
        fast = self.make_log([2.0, 2.0], pair=(1, 2))
        slow = self.make_log([0.1, 0.1], pair=(3, 4))
        log = TransferLog.concatenate([fast, slow]).sorted_by_start()
        decision = AlphaRedirector().decide(log)
        assert decision.n_redirected == 1

    def test_byte_fraction(self):
        log = self.make_log([2.0, 2.0, 2.0, 2.0])
        decision = AlphaRedirector().decide(log)
        assert decision.byte_fraction == pytest.approx(3 / 4)

    def test_custom_criteria(self):
        log = self.make_log([0.6, 0.6, 0.6])
        strict = AlphaRedirector(AlphaFlowCriteria(min_rate_bps=1e9))
        loose = AlphaRedirector(AlphaFlowCriteria(min_rate_bps=0.5e9))
        assert strict.decide(log).n_redirected == 0
        assert loose.decide(log).n_redirected == 2
