"""The open-loop load-test harness: generators, SLO report, both drivers.

Bottom-up over :mod:`repro.service.loadtest` — the arrival-process
generators (Poisson, interrupted-Poisson bursts, the Fig. 6 diurnal
shape), the request mix, the latency recorder, and the
:class:`LoadTestReport` contract checks — then the two drivers:

* the **deterministic twin** (:func:`run_loadtest_sim`): two runs with
  one seed produce byte-identical censuses and quantiles, overload
  sheds against the admission bound, underload settles everything;
* the **live driver** (:func:`run_loadtest`): a real in-process daemon
  under a genuinely open-loop storm — the ledger balances against the
  daemon's own counters and the report validates.
"""

import json
import math

import numpy as np
import pytest

from repro.service.loadtest import (
    FIG6_HOURLY,
    LatencyRecorder,
    RequestMix,
    build_schedule,
    diurnal_schedule,
    fig6_profile,
    onoff_schedule,
    poisson_schedule,
    run_loadtest,
    run_loadtest_sim,
)
from repro.workload.diurnal import hourly_histogram


# ---------------------------------------------------------------------------
# arrival-process generators


class TestPoissonSchedule:
    def test_shape_and_order(self):
        times = poisson_schedule(200, 0.5, np.random.default_rng(1))
        assert times.shape == (200,)
        assert np.all(times > 0)
        assert np.all(np.diff(times) >= 0)

    def test_seeded_replay(self):
        a = poisson_schedule(100, 0.2, np.random.default_rng(7))
        b = poisson_schedule(100, 0.2, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_mean_gap_tracks_the_rate(self):
        times = poisson_schedule(5000, 0.25, np.random.default_rng(3))
        mean_gap = float(times[-1]) / 5000
        assert 3.5 < mean_gap < 4.5  # 1/rate = 4 s

    @pytest.mark.parametrize("kwargs", [
        {"n": 0, "rate_per_s": 1.0},
        {"n": 10, "rate_per_s": 0.0},
        {"n": 10, "rate_per_s": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            poisson_schedule(**kwargs)


class TestOnOffSchedule:
    def test_shape_and_order(self):
        times = onoff_schedule(
            300, on_rate_per_s=2.0, mean_on_s=30.0, mean_off_s=120.0,
            rng=np.random.default_rng(5),
        )
        assert times.shape == (300,)
        assert np.all(np.diff(times) >= 0)

    def test_seeded_replay(self):
        kw = dict(on_rate_per_s=1.0, mean_on_s=50.0, mean_off_s=150.0)
        a = onoff_schedule(80, rng=np.random.default_rng(2), **kw)
        b = onoff_schedule(80, rng=np.random.default_rng(2), **kw)
        np.testing.assert_array_equal(a, b)

    def test_burstier_than_poisson(self):
        # the interrupted-Poisson process packs the same count into ON
        # bursts: its inter-arrival gaps have a higher coefficient of
        # variation than the memoryless stream (CV 1 for exponential)
        rng = np.random.default_rng(9)
        bursty = onoff_schedule(
            2000, on_rate_per_s=2.0, mean_on_s=60.0, mean_off_s=240.0,
            rng=rng,
        )
        steady = poisson_schedule(2000, 0.4, np.random.default_rng(9))
        def cv(times):
            gaps = np.diff(times)
            return float(np.std(gaps) / np.mean(gaps))
        assert cv(bursty) > 1.5 > 1.2 > cv(steady)

    def test_validation(self):
        with pytest.raises(ValueError):
            onoff_schedule(10, on_rate_per_s=0.0, mean_on_s=1.0,
                           mean_off_s=1.0)
        with pytest.raises(ValueError):
            onoff_schedule(10, on_rate_per_s=1.0, mean_on_s=0.0,
                           mean_off_s=1.0)
        with pytest.raises(ValueError):
            onoff_schedule(10, on_rate_per_s=1.0, mean_on_s=1.0,
                           mean_off_s=1.0, off_rate_per_s=-0.1)


class TestDiurnalSchedule:
    def test_fig6_shape_is_normalizable(self):
        assert len(FIG6_HOURLY) == 24
        profile = fig6_profile()
        # the cron spikes dominate the curve
        assert FIG6_HOURLY[2] == max(FIG6_HOURLY)
        assert profile.intensity_at(2.5 * 3600.0) > profile.intensity_at(
            22.5 * 3600.0
        )

    def test_arrivals_concentrate_at_the_cron_spikes(self):
        # a full-day storm anchored at midnight: hour 2 (the nightly
        # test cron) must collect far more arrivals than a quiet hour
        times = diurnal_schedule(
            2000, 2000.0 / 86400.0, start_hour=0.0,
            rng=np.random.default_rng(11),
        )
        hist = hourly_histogram(times)
        assert hist[2] > 3 * max(hist[22], 1)
        assert hist[8] > 2 * max(hist[22], 1)

    def test_start_hour_offsets_are_relative(self):
        times = diurnal_schedule(
            50, 0.05, start_hour=1.5, rng=np.random.default_rng(4)
        )
        assert times[0] >= 0.0
        assert np.all(np.diff(times) >= 0)

    def test_seeded_replay(self):
        a = diurnal_schedule(60, 0.02, rng=np.random.default_rng(6))
        b = diurnal_schedule(60, 0.02, rng=np.random.default_rng(6))
        np.testing.assert_array_equal(a, b)


class TestBuildSchedule:
    @pytest.mark.parametrize("kind", ["poisson", "onoff", "diurnal"])
    def test_dispatch(self, kind):
        times = build_schedule(
            {"arrivals": kind, "n_requests": 40, "rate_per_s": 0.5},
            np.random.default_rng(1),
        )
        assert times.shape == (40,)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            build_schedule({"arrivals": "nope"}, np.random.default_rng(0))


# ---------------------------------------------------------------------------
# the request mix


class TestRequestMix:
    def test_seeded_replay(self):
        a = RequestMix(50, np.random.default_rng(3), invalid_frac=0.2)
        b = RequestMix(50, np.random.default_rng(3), invalid_frac=0.2)
        assert a.items == b.items

    def test_invalid_frac_marks_negative_sizes(self):
        mix = RequestMix(200, np.random.default_rng(1), invalid_frac=0.25)
        n_invalid = sum(1 for item in mix.items if item["invalid"])
        assert 20 < n_invalid < 80
        for item in mix.items:
            if item["invalid"]:
                assert item["file_sizes"][0] < 0
            else:
                assert all(s > 0 for s in item["file_sizes"])

    def test_extremes(self):
        none = RequestMix(30, np.random.default_rng(2), invalid_frac=0.0)
        assert not any(item["invalid"] for item in none.items)
        every = RequestMix(30, np.random.default_rng(2), invalid_frac=1.0)
        assert all(item["invalid"] for item in every.items)

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestMix(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            RequestMix(5, np.random.default_rng(0), invalid_frac=1.5)


# ---------------------------------------------------------------------------
# the latency recorder


class TestLatencyRecorder:
    def test_quantiles_on_known_data(self):
        rec = LatencyRecorder()
        for v in np.random.default_rng(0).permutation(1000):
            rec.record(float(v))
        s = rec.summary()
        assert rec.count == 1000
        assert abs(s["p50"] - 500) < 25
        assert abs(s["p99"] - 990) < 25
        assert s["p50"] <= s["p95"] <= s["p99"] <= s["max"] == 999
        assert abs(s["mean"] - 499.5) < 1e-6

    def test_empty_summary_is_all_none(self):
        assert all(v is None for v in LatencyRecorder().summary().values())

    def test_rejects_bad_values(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.record(-1.0)
        with pytest.raises(ValueError):
            rec.record(float("nan"))
        with pytest.raises(ValueError):
            rec.record(float("inf"))


# ---------------------------------------------------------------------------
# the deterministic twin


def _sim(params=None, seed=11):
    base = {
        "arrivals": "poisson",
        "n_requests": 300,
        "rate_per_s": 0.5,
        "queue_limit": 12,
        "tenant_quota": 6,
        "workers": 4,
        "invalid_frac": 0.05,
    }
    base.update(params or {})
    return run_loadtest_sim(base, seed)


class TestSimLoadtest:
    def test_same_seed_same_census(self):
        a, b = _sim(), _sim()
        a.validate(), b.validate()
        assert a.census() == b.census()
        # not just the censuses: every latency quantile is bit-identical
        da, db = a.as_dict(), b.as_dict()
        for key in da:
            if key in ("wall_s", "harness_rps"):
                continue  # the only wall-clock-dependent fields
            assert da[key] == db[key], key
        json.dumps(da)  # strict-JSON cacheable

    def test_different_seeds_differ(self):
        assert _sim(seed=11).census() != _sim(seed=12).census()

    def test_overload_sheds_against_the_bound(self):
        # offered far above service capacity: the open-loop stream keeps
        # arriving, the admission bound holds, the excess sheds loudly
        report = _sim({"rate_per_s": 5.0, "n_requests": 400})
        report.validate()
        assert report.n_shed > 50
        assert report.shed_fraction > 0.1
        assert report.outstanding_max <= report.outstanding_bound
        assert sum(report.shed.values()) == report.n_shed
        assert report.retry_after_max_s is not None
        # the hint is in wall seconds: bounded by queue rounds of the
        # wall-domain EWMA, never hundreds of virtual seconds
        assert report.retry_after_max_s < 60.0

    def test_underload_settles_everything(self):
        report = _sim({
            "rate_per_s": 0.005, "n_requests": 40, "invalid_frac": 0.0,
            "tight_deadline_frac": 0.0,
        })
        report.validate()
        assert report.n_shed == 0
        assert report.n_accepted == report.n_succeeded == 40
        assert report.latency_p99_s is not None
        assert report.paths.get("vc", 0) == 40  # nothing forced off the VC

    def test_tight_deadlines_degrade_to_ip(self):
        report = _sim({
            "rate_per_s": 0.005, "n_requests": 60, "invalid_frac": 0.0,
            "tight_deadline_frac": 1.0, "tight_deadline_s": 45.0,
        })
        report.validate()
        # a 45 s budget usually cannot absorb the batch-signalling wait
        # (up to 61 s) — most requests leave the VC rung; the few that
        # arrive just before a batch boundary still squeeze onto it
        assert report.paths.get("ip-degraded", 0) > report.paths.get("vc", 0)
        assert sum(report.paths.values()) == report.n_accepted

    def test_invalid_submissions_enter_the_ledger(self):
        report = _sim({"invalid_frac": 0.3, "rate_per_s": 0.01,
                       "n_requests": 100})
        report.validate()
        assert report.n_invalid > 10
        assert (
            report.n_offered
            == report.n_accepted + report.n_shed + report.n_invalid
        )

    def test_latency_domain_is_virtual(self):
        report = _sim()
        assert report.mode == "sim"
        assert report.latency_domain == "virtual"
        assert report.duration_s > 0
        assert report.n_outstanding_samples > 0


# ---------------------------------------------------------------------------
# the live open-loop driver


class TestLiveLoadtest:
    def test_in_process_storm_validates(self):
        report = run_loadtest(
            {
                "arrivals": "poisson",
                "n_requests": 30,
                "rate_per_s": 0.08,
                "queue_limit": 8,
                "tenant_quota": 4,
                "workers": 2,
                "time_scale": 3000.0,
                "invalid_frac": 0.1,
            },
            seed=7,
        )
        report.validate()  # ledger, bound, monotone quantiles
        assert report.mode == "live"
        assert report.latency_domain == "wall"
        assert report.n_offered == 30
        # run_loadtest itself cross-checks the client censuses against
        # the daemon's counters; spot-check the interesting slices here
        assert report.n_accepted > 0
        assert report.n_settled == report.n_accepted
        assert report.latency_p99_s is not None
        assert math.isfinite(report.latency_p99_s)
        assert report.n_outstanding_samples > 0
        assert report.outstanding_max <= report.outstanding_bound
        if report.retry_after_max_s is not None:
            # the headline fix: hints come back in *wall* seconds even
            # at time_scale=3000 — never minutes of virtual backoff
            assert report.retry_after_max_s < 30.0
        json.dumps(report.as_dict())

    def test_registered_as_a_scenario(self):
        from repro.experiments.registry import get_scenario

        fn = get_scenario("service_loadtest")
        assert callable(fn)
        result = fn(
            {"mode": "sim", "n_requests": 20, "rate_per_s": 0.02},
            seed=3,
        )
        json.dumps(result)
        assert result["mode"] == "sim"
        assert (
            result["n_offered"]
            == result["n_accepted"] + result["n_shed"] + result["n_invalid"]
        )
