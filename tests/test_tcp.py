"""Unit and property tests for the TCP throughput model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.tcp import MATHIS_C, TcpPathModel
from repro.workload.synth import vector_transfer_duration


def model(**kw):
    defaults = dict(rtt_s=0.07, bottleneck_bps=10e9)
    defaults.update(kw)
    return TcpPathModel(**defaults)


class TestConstruction:
    def test_bad_rtt(self):
        with pytest.raises(ValueError):
            TcpPathModel(rtt_s=0.0)

    def test_bad_bottleneck(self):
        with pytest.raises(ValueError):
            TcpPathModel(rtt_s=0.1, bottleneck_bps=0)

    def test_bad_loss(self):
        with pytest.raises(ValueError):
            TcpPathModel(rtt_s=0.1, loss_rate=1.0)


class TestSteadyRate:
    def test_lossless_uncapped_hits_bottleneck(self):
        m = model(loss_rate=0.0, max_window_bytes=None)
        assert m.steady_rate_bps(1) == 10e9
        assert m.steady_rate_bps(8) == 10e9

    def test_mathis_formula(self):
        m = model(loss_rate=1e-4)
        expected = (1460 * 8 / 0.07) * MATHIS_C / math.sqrt(1e-4)
        assert m.mathis_rate_bps() == pytest.approx(expected)

    def test_loss_capped_scales_with_streams(self):
        m = model(loss_rate=1e-3)
        assert m.steady_rate_bps(8) == pytest.approx(8 * m.steady_rate_bps(1))

    def test_window_cap(self):
        m = model(max_window_bytes=875_000)  # 875 KB / 70 ms = 100 Mbps
        assert m.window_rate_bps() == pytest.approx(100e6)
        assert m.steady_rate_bps(1) == pytest.approx(100e6)

    def test_bottleneck_caps_aggregate(self):
        m = model(max_window_bytes=87.5e6)  # 10 Gbps per stream
        assert m.steady_rate_bps(8) == 10e9

    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError):
            model().steady_rate_bps(0)


class TestSlowStart:
    def test_no_ramp_when_initial_exceeds_target(self):
        m = model()
        tiny_target = 1 * 1460 * 8 / 0.07  # exactly the 1-stream initial rate
        assert m.slow_start_rtts(tiny_target, 1) == 0.0
        assert m.slow_start_bytes(tiny_target, 1) == 0.0

    def test_more_streams_fewer_rtts(self):
        m = model()
        assert m.slow_start_rtts(1e9, 8) == pytest.approx(
            m.slow_start_rtts(1e9, 1) - 3.0
        )

    def test_ramp_bytes_geometric_sum(self):
        m = model(ssthresh_bytes=None)
        target = 4 * (1460 * 8 / 0.07)  # 2 doublings for 1 stream
        assert m.slow_start_bytes(target, 1) == pytest.approx(1460 * 3)

    def test_startup_penalty_positive(self):
        m = model()
        assert m.startup_penalty_s(1e9, 1) > 0

    def test_startup_penalty_decreases_with_streams(self):
        m = model()
        assert m.startup_penalty_s(1e9, 8) < m.startup_penalty_s(1e9, 1)

    def test_penalty_zero_for_zero_target(self):
        assert model().startup_penalty_s(0.0, 1) == 0.0


class TestCongestionAvoidance:
    def test_ss_exit_rate(self):
        m = model(ssthresh_bytes=1.2e6)
        assert m.ss_exit_rate_bps(1) == pytest.approx(1.2e6 * 8 / 0.07)
        assert m.ss_exit_rate_bps(8) == pytest.approx(8 * 1.2e6 * 8 / 0.07)

    def test_disabled_threshold_is_infinite(self):
        assert model(ssthresh_bytes=None).ss_exit_rate_bps(1) == math.inf

    def test_linear_slope(self):
        m = model()
        assert m.linear_slope_bps_per_s(2) == pytest.approx(2 * 1460 * 8 / 0.07**2)

    def test_single_stream_much_slower_for_medium_files(self):
        """The Fig. 3 effect: 8 streams beat 1 stream on medium files."""
        m = model()
        t1 = m.transfer_throughput_bps(100e6, 1, rate_cap_bps=1e9)
        t8 = m.transfer_throughput_bps(100e6, 8, rate_cap_bps=1e9)
        assert t8 > 1.3 * t1

    def test_streams_converge_for_huge_files(self):
        """The Fig. 4 effect: stream count stops mattering for large files."""
        m = model()
        t1 = m.transfer_throughput_bps(200e9, 1, rate_cap_bps=1e9)
        t8 = m.transfer_throughput_bps(200e9, 8, rate_cap_bps=1e9)
        assert abs(t8 - t1) / t8 < 0.1


class TestTransferDuration:
    def test_zero_size(self):
        assert model().transfer_duration_s(0.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            model().transfer_duration_s(-1.0)

    def test_large_file_dominated_by_steady_rate(self):
        m = model(ssthresh_bytes=None)
        d = m.transfer_duration_s(100e9, 8, rate_cap_bps=2e9)
        assert d == pytest.approx(100e9 * 8 / 2e9, rel=0.02)

    def test_tiny_file_inside_slow_start(self):
        m = model()
        # one MSS with one stream: delivered in the first RTT
        d = m.transfer_duration_s(1460.0, 1)
        assert d == pytest.approx(math.log2(2.0) * 0.07)

    def test_duration_monotone_in_size(self):
        m = model()
        sizes = [1e4, 1e6, 1e8, 1e10]
        durations = [m.transfer_duration_s(s, 4, rate_cap_bps=1e9) for s in sizes]
        assert durations == sorted(durations)

    def test_duration_continuous_at_phase_boundaries(self):
        """No jump where the transfer just exits slow start / the linear phase."""
        m = model()
        steady = 1e9
        r0 = min(steady, m.ss_exit_rate_bps(1))
        ramp = m.slow_start_bytes(r0, 1)
        below = m.transfer_duration_s(ramp * 0.999, 1, rate_cap_bps=steady)
        above = m.transfer_duration_s(ramp * 1.001, 1, rate_cap_bps=steady)
        assert above - below < 0.01

    def test_throughput_never_exceeds_steady(self):
        m = model()
        for size in (1e5, 1e7, 1e9, 1e11):
            tput = m.transfer_throughput_bps(size, 8, rate_cap_bps=2e9)
            assert tput <= 2e9 * (1 + 1e-9)

    @given(
        st.floats(min_value=1e3, max_value=1e12),
        st.integers(min_value=1, max_value=32),
        st.floats(min_value=1e6, max_value=9e9),
    )
    @settings(max_examples=100)
    def test_vectorized_matches_scalar(self, size, n, steady):
        """The million-row generator kernel must agree with the scalar model."""
        m = model()
        d_scalar = m.transfer_duration_s(size, n, rate_cap_bps=steady)
        d_vec = float(
            vector_transfer_duration(
                np.array([size]), np.array([n]), np.array([min(steady, 10e9)]), 0.07
            )[0]
        )
        assert d_vec == pytest.approx(d_scalar, rel=1e-9)

    @given(
        st.floats(min_value=1e3, max_value=1e12),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60)
    def test_duration_positive_and_finite(self, size, n):
        d = model().transfer_duration_s(size, n, rate_cap_bps=3e9)
        assert 0 < d < math.inf

    @given(st.integers(min_value=1, max_value=15))
    @settings(max_examples=15)
    def test_more_streams_never_slower(self, n):
        m = model()
        d_n = m.transfer_duration_s(5e8, n, rate_cap_bps=2e9)
        d_n1 = m.transfer_duration_s(5e8, n + 1, rate_cap_bps=2e9)
        assert d_n1 <= d_n * (1 + 1e-9)
