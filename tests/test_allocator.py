"""Incremental allocator vs the max_min_fair oracle.

The contract pinned here: after ANY sequence of add_flow / remove_flow /
update_capacity / update_flow calls, the allocator's rates match a fresh
oracle solve of the same flow set within 1e-6 relative — and recompute()
touches only the connected component of the change.
"""

import math

import numpy as np
import pytest

from repro.net.allocator import MaxMinAllocator
from repro.net.flows import FlowSpec, max_min_fair
from repro.sim.probe import SimProbe


def oracle_rates(alloc: MaxMinAllocator) -> dict[int, float]:
    """Solve the allocator's current flow set with the reference oracle."""
    specs = [
        FlowSpec(
            flow_id=fid,
            links=alloc.flow_links(fid),
            demand_bps=alloc._flows[fid].demand_bps,
            weight=alloc._flows[fid].weight,
        )
        for fid in sorted(alloc._flows)
    ]
    caps = dict(alloc._cap)
    return max_min_fair(specs, caps)


def assert_matches_oracle(alloc: MaxMinAllocator, rel=1e-6):
    alloc.recompute()
    expected = oracle_rates(alloc)
    got = alloc.rates()
    assert set(got) == set(expected)
    for fid, want in expected.items():
        if math.isinf(want):
            assert math.isinf(got[fid])
        else:
            assert got[fid] == pytest.approx(want, rel=rel, abs=1e-3)


class TestBasics:
    def test_empty_recompute_is_noop(self):
        alloc = MaxMinAllocator({("a", "b"): 10.0})
        assert alloc.recompute() == {}
        assert not alloc.dirty

    def test_single_flow_gets_capacity(self):
        alloc = MaxMinAllocator({("a", "b"): 10.0})
        alloc.add_flow(1, [("a", "b")])
        changed = alloc.recompute()
        assert changed == {1: pytest.approx(10.0)}
        assert alloc.rate(1) == pytest.approx(10.0)

    def test_demand_cap_binds(self):
        alloc = MaxMinAllocator({("a", "b"): 10.0})
        alloc.add_flow(1, [("a", "b")], demand_bps=3.0)
        alloc.recompute()
        assert alloc.rate(1) == pytest.approx(3.0)

    def test_weighted_split_matches_oracle(self):
        alloc = MaxMinAllocator({("a", "b"): 9.0})
        alloc.add_flow(1, [("a", "b")], weight=1.0)
        alloc.add_flow(2, [("a", "b")], weight=2.0)
        assert_matches_oracle(alloc)
        assert alloc.rate(2) == pytest.approx(2 * alloc.rate(1))

    def test_no_links_unbounded_demand_is_inf(self):
        alloc = MaxMinAllocator()
        alloc.add_flow(1, [])
        alloc.recompute()
        assert math.isinf(alloc.rate(1))

    def test_zero_capacity_zero_rate(self):
        alloc = MaxMinAllocator({("a", "b"): 0.0})
        alloc.add_flow(1, [("a", "b")])
        alloc.recompute()
        assert alloc.rate(1) == 0.0


class TestValidation:
    def test_unknown_link_rejected(self):
        alloc = MaxMinAllocator({("a", "b"): 10.0})
        with pytest.raises(KeyError):
            alloc.add_flow(1, [("x", "y")])

    def test_duplicate_flow_rejected(self):
        alloc = MaxMinAllocator({("a", "b"): 10.0})
        alloc.add_flow(1, [("a", "b")])
        with pytest.raises(ValueError):
            alloc.add_flow(1, [("a", "b")])

    def test_remove_unknown_flow_raises(self):
        alloc = MaxMinAllocator()
        with pytest.raises(KeyError):
            alloc.remove_flow(99)

    def test_negative_capacity_rejected(self):
        alloc = MaxMinAllocator()
        with pytest.raises(ValueError):
            alloc.update_capacity(("a", "b"), -1.0)

    def test_bad_weight_and_demand_rejected(self):
        alloc = MaxMinAllocator({("a", "b"): 10.0})
        with pytest.raises(ValueError):
            alloc.add_flow(1, [("a", "b")], weight=0.0)
        with pytest.raises(ValueError):
            alloc.add_flow(1, [("a", "b")], demand_bps=-1.0)

    def test_rate_of_unknown_flow_raises(self):
        alloc = MaxMinAllocator()
        with pytest.raises(KeyError):
            alloc.rate(7)


class TestIncrementality:
    def test_clean_recompute_returns_empty(self):
        alloc = MaxMinAllocator({("a", "b"): 10.0})
        alloc.add_flow(1, [("a", "b")])
        alloc.recompute()
        assert alloc.recompute() == {}

    def test_disjoint_component_untouched(self):
        """A change in one component must not re-solve the other."""
        probe = SimProbe()
        alloc = MaxMinAllocator({("a", "b"): 10.0, ("c", "d"): 4.0}, probe=probe)
        alloc.add_flow(1, [("a", "b")])
        alloc.add_flow(2, [("c", "d")])
        alloc.recompute()
        # change only the (c, d) side: the touched set is exactly flow 2
        alloc.update_capacity(("c", "d"), 6.0)
        changed = alloc.recompute()
        assert set(changed) == {2}
        assert changed[2] == pytest.approx(6.0)
        assert alloc.rate(1) == pytest.approx(10.0)
        assert probe.max_flows_touched == 2  # the initial joint add
        assert probe.n_flows_touched == 3  # 2 (initial) + 1 (the update)

    def test_component_closure_through_shared_links(self):
        """Dirtying one flow re-solves everything transitively coupled."""
        caps = {("a", "b"): 10.0, ("b", "c"): 10.0, ("c", "d"): 10.0}
        alloc = MaxMinAllocator(caps)
        alloc.add_flow(1, [("a", "b"), ("b", "c")])
        alloc.add_flow(2, [("b", "c"), ("c", "d")])
        alloc.add_flow(3, [("c", "d")])
        alloc.recompute()
        # removing flow 1 frees (b, c); flows 2 and 3 are both in the closure
        alloc.remove_flow(1)
        changed = alloc.recompute()
        assert set(changed) == {2, 3}
        assert_matches_oracle(alloc)

    def test_capacity_update_without_flows_stays_clean(self):
        alloc = MaxMinAllocator({("a", "b"): 10.0})
        alloc.update_capacity(("a", "b"), 5.0)
        assert not alloc.dirty

    def test_noop_capacity_update_stays_clean(self):
        alloc = MaxMinAllocator({("a", "b"): 10.0})
        alloc.add_flow(1, [("a", "b")])
        alloc.recompute()
        alloc.update_capacity(("a", "b"), 10.0)
        assert not alloc.dirty

    def test_update_flow_dirties_old_and_new_links(self):
        caps = {("a", "b"): 10.0, ("c", "d"): 10.0}
        alloc = MaxMinAllocator(caps)
        alloc.add_flow(1, [("a", "b")])
        alloc.add_flow(2, [("a", "b")])
        alloc.add_flow(3, [("c", "d")])
        alloc.recompute()
        alloc.update_flow(1, links=[("c", "d")])
        changed = alloc.recompute()
        # old neighbour (2) gains headroom; new neighbour (3) loses it
        assert set(changed) == {1, 2, 3}
        assert_matches_oracle(alloc)

    def test_unbounded_component_raises(self):
        alloc = MaxMinAllocator({("a", "b"): 10.0})
        alloc.add_flow(1, [("a", "b")])
        alloc.add_flow(2, [])  # no links, no demand: unbounded
        alloc.add_flow(3, [("a", "b")])
        alloc.recompute()  # flow 2 is its own component: rate inf, fine
        assert math.isinf(alloc.rate(2))
        assert_matches_oracle(alloc)


def random_sequence(alloc: MaxMinAllocator, rng: np.random.Generator, n_ops: int,
                    links: list[tuple[str, str]]) -> None:
    """Apply a random mutation sequence, recomputing at random points."""

    def random_links():
        k = int(rng.integers(1, min(4, len(links)) + 1))
        idx = rng.choice(len(links), size=k, replace=False)
        return [links[int(i)] for i in idx]

    for _ in range(n_ops):
        op = rng.random()
        fids = list(alloc._flows)
        if op < 0.35 or not fids:
            demand = float(rng.choice([math.inf, rng.uniform(0.5, 20.0)]))
            weight = float(rng.choice([1.0, 2.0, 4.0, 8.0]))
            fid = max(alloc._flows, default=999) + 1
            alloc.add_flow(fid, random_links(), demand_bps=demand,
                           weight=weight)
        elif op < 0.55:
            alloc.remove_flow(int(rng.choice(fids)))
        elif op < 0.75:
            key = links[int(rng.integers(0, len(links)))]
            alloc.update_capacity(key, float(rng.uniform(0.0, 30.0)))
        elif op < 0.9:
            fid = int(rng.choice(fids))
            alloc.update_flow(fid, demand_bps=float(rng.uniform(0.5, 25.0)))
        else:
            fid = int(rng.choice(fids))
            alloc.update_flow(fid, links=random_links())
        if rng.random() < 0.4:
            alloc.recompute()


@pytest.mark.parametrize("seed", range(8))
def test_randomized_sequences_match_oracle(seed):
    """Seeded random add/remove/capacity churn: rates track the oracle."""
    rng = np.random.default_rng(seed)
    links = [(f"n{i}", f"n{i + 1}") for i in range(6)]
    caps = {key: float(rng.uniform(5.0, 25.0)) for key in links}
    alloc = MaxMinAllocator(caps)
    for checkpoint in range(5):
        random_sequence(alloc, rng, n_ops=12, links=links)
        assert_matches_oracle(alloc)


@pytest.mark.parametrize("seed", [100, 101])
def test_randomized_vs_full_recompute(seed):
    """Incremental recompute equals a forced full recompute, bit for bit."""
    rng = np.random.default_rng(seed)
    links = [(f"n{i}", f"n{i + 1}") for i in range(5)]
    caps = {key: float(rng.uniform(5.0, 25.0)) for key in links}
    alloc = MaxMinAllocator(caps)
    random_sequence(alloc, rng, n_ops=30, links=links)
    alloc.recompute()
    incremental = alloc.rates()
    alloc.full_recompute()
    assert alloc.rates() == pytest.approx(incremental, rel=1e-9)


def test_matches_oracle_bitwise_on_chain():
    """Same arithmetic order as the oracle: exact equality, not approx."""
    caps = {(f"n{i}", f"n{i + 1}"): 10.0 + i for i in range(8)}
    links = list(caps)
    alloc = MaxMinAllocator(caps)
    specs = []
    for fid in range(12):
        flow_links = tuple(links[fid % 4 : fid % 4 + 3])
        demand = math.inf if fid % 3 else 4.0 + fid
        weight = float(1 + fid % 4)
        alloc.add_flow(fid, flow_links, demand_bps=demand, weight=weight)
        specs.append(
            FlowSpec(flow_id=fid, links=flow_links, demand_bps=demand,
                     weight=weight)
        )
    got = alloc.recompute()
    want = max_min_fair(specs, dict(caps))
    assert got == want  # exact, including every last bit


# -- level-frontier bound ----------------------------------------------------


def _clustered(rng, n_clusters=6, flows_per=8):
    """Disjoint chain clusters bridged by one shared backbone link.

    Every flow crosses the backbone, so the whole population is ONE
    connected component — the worst case for component-closure dirty
    sets, and exactly where the level-frontier bound has to earn its
    keep.
    """
    caps = {("b0", "b1"): 1e10}
    for c in range(n_clusters):
        for i in range(3):
            caps[(f"c{c}n{i}", f"c{c}n{i + 1}")] = float(
                rng.uniform(1e9, 5e9)
            )
    alloc = MaxMinAllocator(caps, level_frontier=True)
    fid = 0
    for c in range(n_clusters):
        for _ in range(flows_per):
            start = int(rng.integers(0, 3))
            length = int(rng.integers(1, 4 - start))
            links = [("b0", "b1")] + [
                (f"c{c}n{i}", f"c{c}n{i + 1}")
                for i in range(start, start + length)
            ]
            alloc.add_flow(
                fid,
                links,
                demand_bps=float(rng.choice([math.inf, rng.uniform(1e8, 4e9)])),
                weight=float(rng.choice([1.0, 2.0, 4.0])),
            )
            fid += 1
    alloc.recompute()
    return alloc


class TestLevelFrontier:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_perturbations_match_oracle(self, seed):
        """Frontier-bounded re-solves track the oracle through churn."""
        rng = np.random.default_rng(200 + seed)
        alloc = _clustered(rng)
        for _ in range(15):
            fids = sorted(alloc._flows)
            op = rng.random()
            if op < 0.3:
                alloc.remove_flow(int(rng.choice(fids)))
            elif op < 0.6:
                new = max(fids) + 1
                c = int(rng.integers(0, 6))
                alloc.add_flow(
                    new,
                    [("b0", "b1"), (f"c{c}n0", f"c{c}n1")],
                    demand_bps=float(rng.uniform(1e8, 4e9)),
                    weight=2.0,
                )
            elif op < 0.8:
                alloc.update_flow(
                    int(rng.choice(fids)),
                    demand_bps=float(rng.uniform(1e8, 4e9)),
                )
            else:
                c = int(rng.integers(0, 6))
                alloc.update_capacity(
                    (f"c{c}n0", f"c{c}n1"), float(rng.uniform(1e9, 5e9))
                )
            assert_matches_oracle(alloc)

    def test_clean_build_is_bit_exact_vs_oracle(self):
        """A from-scratch solve replays the oracle's exact arithmetic."""
        rng = np.random.default_rng(42)
        caps = {(f"n{i}", f"n{i + 1}"): float(rng.uniform(5.0, 25.0))
                for i in range(8)}
        links = list(caps)
        alloc = MaxMinAllocator(caps, level_frontier=True)
        specs = []
        for fid in range(20):
            k = int(rng.integers(1, 4))
            start = int(rng.integers(0, len(links) - k))
            flow_links = tuple(links[start:start + k])
            demand = float(rng.choice([math.inf, rng.uniform(0.5, 20.0)]))
            weight = float(rng.choice([1.0, 2.0, 4.0]))
            alloc.add_flow(fid, flow_links, demand_bps=demand, weight=weight)
            specs.append(FlowSpec(flow_id=fid, links=flow_links,
                                  demand_bps=demand, weight=weight))
        assert alloc.recompute() == max_min_fair(specs, dict(caps))

    def test_frontier_off_matches_frontier_on(self):
        rng = np.random.default_rng(7)
        caps = {(f"n{i}", f"n{i + 1}"): float(rng.uniform(5.0, 25.0))
                for i in range(6)}
        on = MaxMinAllocator(dict(caps), level_frontier=True)
        off = MaxMinAllocator(dict(caps), level_frontier=False)
        links = list(caps)
        for alloc in (on, off):
            r = np.random.default_rng(7)  # identical sequences
            random_sequence(alloc, r, n_ops=40, links=links)
            alloc.recompute()
        assert on.rates() == pytest.approx(off.rates(), rel=1e-6, abs=1e-3)

    def test_single_flow_perturbation_touches_less_than_component(self):
        """The frontier is strictly smaller than the connected component.

        One shared backbone link makes all 48 flows one component; a
        demand tweak on one low-level flow must re-solve only flows at
        or above its level, not the whole population.
        """
        rng = np.random.default_rng(3)
        probe = SimProbe()
        alloc = _clustered(rng)
        alloc.probe = probe
        alloc.measure_component = True
        # perturb one finite-demand flow's demand slightly downward —
        # only levels >= its own can move
        victim = next(
            fid for fid in sorted(alloc._flows)
            if math.isfinite(alloc._flows[fid].demand_bps)
        )
        alloc.update_flow(
            victim, demand_bps=alloc._flows[victim].demand_bps * 0.9
        )
        alloc.recompute()
        assert probe.n_measured_passes == 1
        assert probe.n_component_flows == len(alloc._flows)
        assert 0 < probe.n_flows_touched < probe.n_component_flows
        assert probe.frontier_fraction < 1.0
        assert_matches_oracle(alloc)

    def test_capacity_increase_of_unsaturated_link_is_free(self):
        """Raising headroom nobody uses re-solves zero flows."""
        caps = {("a", "b"): 10.0, ("b", "c"): 100.0}
        probe = SimProbe()
        alloc = MaxMinAllocator(caps, probe=probe)
        alloc.add_flow(1, [("a", "b"), ("b", "c")])
        alloc.add_flow(2, [("a", "b")])
        alloc.recompute()
        before = probe.n_flows_touched
        # (b,c) carried 5.0 of 100.0: recorded unsaturated, so growing
        # it cannot move any freeze level
        alloc.update_capacity(("b", "c"), 200.0)
        alloc.recompute()
        assert probe.n_flows_touched == before
        assert_matches_oracle(alloc)
