"""Unit and property tests for fault recovery / restart markers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.injector import merge_intervals
from repro.gridftp.reliability import (
    FaultModel,
    ReliableTransferService,
    RestartPolicy,
    expected_overhead_factor,
)


class TestFaultModel:
    def test_fault_free_never_faults(self):
        m = FaultModel(0.0)
        assert m.time_to_fault_s(np.random.default_rng(0)) == math.inf

    def test_rate_scales_interarrival(self):
        rng = np.random.default_rng(1)
        fast = np.mean([FaultModel(10.0).time_to_fault_s(rng) for _ in range(500)])
        rng = np.random.default_rng(1)
        slow = np.mean([FaultModel(1.0).time_to_fault_s(rng) for _ in range(500)])
        assert slow == pytest.approx(10 * fast, rel=0.2)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(-1.0)


class TestRestartPolicy:
    def test_resume_rounds_down_to_marker(self):
        p = RestartPolicy(marker_interval_bytes=100.0)
        assert p.resume_point(250.0) == 200.0
        assert p.resume_point(99.0) == 0.0

    def test_no_markers_resume_from_zero(self):
        p = RestartPolicy(marker_interval_bytes=None)
        assert p.resume_point(1e12) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(marker_interval_bytes=0.0)
        with pytest.raises(ValueError):
            RestartPolicy(reconnect_s=-1.0)


class TestService:
    def test_fault_free_single_attempt(self):
        svc = ReliableTransferService(FaultModel(0.0))
        result = svc.execute(1e9, 1e9)
        assert result.succeeded
        assert len(result.attempts) == 1
        assert result.total_wall_s == pytest.approx(8.0)
        assert result.overhead_factor == pytest.approx(1.0)
        assert result.wire_overhead_factor == pytest.approx(1.0)

    def test_faulty_transfer_retries_and_succeeds(self):
        svc = ReliableTransferService(
            FaultModel(faults_per_hour=30.0),
            RestartPolicy(marker_interval_bytes=64e6, reconnect_s=2.0),
            max_attempts=50,
        )
        result = svc.execute(10e9, 1e9, rng=np.random.default_rng(3))
        assert result.succeeded
        assert result.n_faults >= 1
        assert result.total_wall_s > result.clean_wall_s
        assert result.wire_bytes >= result.size_bytes

    def test_retry_budget_exhaustion(self):
        # guaranteed fault every ~0.36 s on an 80 s transfer, 2 attempts
        svc = ReliableTransferService(
            FaultModel(faults_per_hour=10_000.0), max_attempts=2
        )
        result = svc.execute(10e9, 1e9, rng=np.random.default_rng(0))
        assert not result.succeeded
        assert result.overhead_factor == math.inf

    def test_markers_beat_full_restart(self):
        """The reason GridFTP has restart markers (Section II)."""
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        fault = FaultModel(faults_per_hour=60.0)
        with_markers = ReliableTransferService(
            fault, RestartPolicy(marker_interval_bytes=64e6), max_attempts=1000
        )
        without = ReliableTransferService(
            fault, RestartPolicy(marker_interval_bytes=None), max_attempts=1000
        )
        sizes = np.full(30, 8e9)
        t_marked = sum(r.total_wall_s for r in with_markers.execute_many(sizes, 1e9, rng_a))
        t_naive = sum(r.total_wall_s for r in without.execute_many(sizes, 1e9, rng_b))
        assert t_naive > 1.3 * t_marked

    def test_validation(self):
        svc = ReliableTransferService(FaultModel(0.0))
        with pytest.raises(ValueError):
            svc.execute(0.0, 1e9)
        with pytest.raises(ValueError):
            svc.execute(1e9, 0.0)
        with pytest.raises(ValueError):
            ReliableTransferService(FaultModel(0.0), max_attempts=0)

    @given(
        st.floats(min_value=1e6, max_value=1e11),
        st.floats(min_value=0.0, max_value=120.0),
    )
    @settings(max_examples=40)
    def test_useful_bytes_property(self, size, fault_rate):
        """When a task succeeds, wire bytes >= size and wall >= clean time."""
        svc = ReliableTransferService(
            FaultModel(fault_rate),
            RestartPolicy(marker_interval_bytes=32e6, reconnect_s=1.0),
            max_attempts=500,
        )
        result = svc.execute(size, 2e9, rng=np.random.default_rng(11))
        if result.succeeded:
            assert result.wire_bytes >= size - 1e-6
            assert result.total_wall_s >= result.clean_wall_s - 1e-9
        assert len(result.attempts) <= 500


class TestExpectedOverhead:
    def test_fault_free_is_one(self):
        assert expected_overhead_factor(
            1e9, 1e9, FaultModel(0.0), RestartPolicy()
        ) == 1.0

    def test_matches_monte_carlo(self):
        fault = FaultModel(faults_per_hour=40.0)
        policy = RestartPolicy(marker_interval_bytes=64e6, reconnect_s=2.0)
        svc = ReliableTransferService(fault, policy, max_attempts=10_000)
        rng = np.random.default_rng(5)
        sims = [svc.execute(16e9, 1e9, rng).overhead_factor for _ in range(300)]
        predicted = expected_overhead_factor(16e9, 1e9, fault, policy)
        assert np.mean(sims) == pytest.approx(predicted, rel=0.15)

    def test_no_markers_overhead_grows_with_size(self):
        fault = FaultModel(faults_per_hour=60.0)
        naive = RestartPolicy(marker_interval_bytes=None)
        small = expected_overhead_factor(1e9, 1e9, fault, naive)
        large = expected_overhead_factor(64e9, 1e9, fault, naive)
        assert large > 2 * small

    def test_markers_bound_overhead(self):
        fault = FaultModel(faults_per_hour=60.0)
        marked = RestartPolicy(marker_interval_bytes=64e6)
        small = expected_overhead_factor(1e9, 1e9, fault, marked)
        large = expected_overhead_factor(64e9, 1e9, fault, marked)
        # per-segment overhead is size-independent: the factor is flat
        assert large == pytest.approx(small, rel=0.05)

    def test_matches_monte_carlo_at_high_fault_rate(self):
        """λd ≈ 1.7 per segment: deep in the retry-heavy regime."""
        fault = FaultModel(faults_per_hour=1200.0)  # one fault per 3 s
        policy = RestartPolicy(marker_interval_bytes=64e6, reconnect_s=0.0)
        # segment duration d = 64e6*8/1e8 = 5.12 s -> λd ≈ 1.71
        svc = ReliableTransferService(fault, policy, max_attempts=100_000)
        rng = np.random.default_rng(17)
        sims = [svc.execute(1e9, 1e8, rng).overhead_factor for _ in range(400)]
        predicted = expected_overhead_factor(1e9, 1e8, fault, policy)
        lam_d = (1200.0 / 3600.0) * (64e6 * 8.0 / 1e8)
        assert lam_d > 1.0
        assert predicted > 2.0  # (e^{λd}-1)/(λd) blows past linear growth
        assert np.mean(sims) == pytest.approx(predicted, rel=0.15)

    def test_no_marker_restart_from_zero_matches_closed_form(self):
        """Whole file = one segment: E[T] = (e^{λT0} − 1)/λ."""
        fault = FaultModel(faults_per_hour=180.0)  # λT0 = 0.8 on a 16 s file
        policy = RestartPolicy(marker_interval_bytes=None, reconnect_s=0.0)
        svc = ReliableTransferService(fault, policy, max_attempts=100_000)
        rng = np.random.default_rng(23)
        sims = [svc.execute(2e9, 1e9, rng).overhead_factor for _ in range(400)]
        predicted = expected_overhead_factor(2e9, 1e9, fault, policy)
        assert predicted > 1.3
        assert np.mean(sims) == pytest.approx(predicted, rel=0.15)

    def test_no_marker_never_finishes_regime(self):
        """λT0 >> 1 without markers: success within any retry budget ~ 0.

        Per attempt P(success) = e^{-λT0}; at λT0 = 20 even 50 attempts
        leave overall success probability below 1e-7 — the "may *never*
        finish" bound restart markers exist to break.
        """
        rate = 1e9
        size = 10e9  # T0 = 80 s
        lam_T0 = 20.0
        fault = FaultModel(faults_per_hour=lam_T0 / 80.0 * 3600.0)
        svc = ReliableTransferService(
            fault, RestartPolicy(marker_interval_bytes=None), max_attempts=50
        )
        result = svc.execute(size, rate, rng=np.random.default_rng(1))
        assert not result.succeeded
        assert len(result.attempts) == 50
        assert all(a.faulted for a in result.attempts)
        # the same environment WITH markers finishes fine: per-segment
        # λd = 20 * 64e6/10e9 = 0.128
        marked = ReliableTransferService(
            fault, RestartPolicy(marker_interval_bytes=64e6), max_attempts=10_000
        )
        assert marked.execute(size, rate, rng=np.random.default_rng(1)).succeeded


class TestExecuteWithOutages:
    def test_no_outages_equals_plain_execute(self):
        svc = ReliableTransferService(FaultModel(0.0))
        a = svc.execute_with_outages(1e9, 1e9, [])
        assert a.succeeded
        assert a.total_wall_s == pytest.approx(8.0)
        assert a.n_faults == 0

    def test_outage_interrupts_and_resumes_from_marker(self):
        svc = ReliableTransferService(
            FaultModel(0.0),
            RestartPolicy(marker_interval_bytes=100e6, reconnect_s=2.0),
        )
        # 1 GB at 1 Gbps: 8 s clean; outage hits at t=3 (375 MB done,
        # marker at 300 MB), path dark until t=10
        r = svc.execute_with_outages(1e9, 1e9, [(3.0, 10.0)])
        assert r.succeeded
        assert r.n_faults == 1
        # wall: 3 (until fault) + wait to 10 + 2 reconnect + 5.6 (700 MB)
        assert r.total_wall_s == pytest.approx(10.0 + 2.0 + 0.7 * 8.0)
        assert r.wire_bytes == pytest.approx(1e9 + 75e6)

    def test_back_to_back_outages_consume_attempts(self):
        svc = ReliableTransferService(
            FaultModel(0.0),
            RestartPolicy(marker_interval_bytes=100e6, reconnect_s=1.0),
            max_attempts=3,
        )
        # three outages, only three attempts: third outage kills it
        r = svc.execute_with_outages(
            10e9, 1e9, [(2.0, 4.0), (8.0, 9.0), (14.0, 15.0)]
        )
        assert not r.succeeded
        assert len(r.attempts) == 3

    def test_outage_validation(self):
        svc = ReliableTransferService(FaultModel(0.0))
        with pytest.raises(ValueError):
            svc.execute_with_outages(1e9, 1e9, [(5.0, 5.0)])
        with pytest.raises(ValueError):
            svc.execute_with_outages(0.0, 1e9, [])

    def test_zero_length_window_rejected_even_among_valid_ones(self):
        svc = ReliableTransferService(FaultModel(0.0))
        with pytest.raises(ValueError, match="positive duration"):
            svc.execute_with_outages(
                1e9, 1e9, [(1.0, 2.0), (5.0, 5.0), (7.0, 9.0)]
            )
        with pytest.raises(ValueError, match="positive duration"):
            svc.execute_with_outages(1e9, 1e9, [(6.0, 4.0)])  # inverted

    def test_outage_starting_exactly_at_transfer_start(self):
        svc = ReliableTransferService(
            FaultModel(0.0),
            RestartPolicy(marker_interval_bytes=100e6, reconnect_s=2.0),
        )
        # the path is already dark at t=0: the first attempt must move
        # zero bytes, the transfer stalls to t_up, pays the reconnect,
        # and then runs clean — it must NOT sail through the outage
        r = svc.execute_with_outages(1e9, 1e9, [(0.0, 10.0)])
        assert r.succeeded
        assert r.n_faults == 1
        assert r.attempts[0].bytes_moved == 0.0
        assert r.attempts[0].wall_s == 0.0
        assert r.total_wall_s == pytest.approx(10.0 + 2.0 + 8.0)
        assert r.wire_bytes == pytest.approx(1e9)

    def test_outage_starting_exactly_at_resume_point(self):
        svc = ReliableTransferService(
            FaultModel(0.0),
            RestartPolicy(marker_interval_bytes=100e6, reconnect_s=2.0),
        )
        # first outage ends at t=6, reconnect lands the resume at t=8,
        # and a second outage begins exactly there: the resumed attempt
        # is interrupted immediately, not granted a free ride
        r = svc.execute_with_outages(1e9, 1e9, [(3.0, 6.0), (8.0, 11.0)])
        assert r.succeeded
        assert r.n_faults == 2
        assert r.attempts[1].bytes_moved == 0.0
        # 3 dark-until-6 +2 reconnect = 8; dark-until-11 +2 = 13; then
        # the 700 MB past the 300 MB marker run clean
        assert r.total_wall_s == pytest.approx(11.0 + 2.0 + 0.7 * 8.0)

    def test_overlapping_windows_behave_like_their_merge(self):
        # producers (the chaos runner, the daemon) run flap schedules
        # through merge_intervals before binding them; the executor must
        # treat the raw overlapping schedule and its merge identically,
        # so an unmerged schedule slipping through changes nothing
        svc = ReliableTransferService(
            FaultModel(0.0),
            RestartPolicy(marker_interval_bytes=100e6, reconnect_s=2.0),
        )
        raw = [(3.0, 10.0), (5.0, 12.0), (12.0, 14.0), (25.0, 26.0)]
        merged = merge_intervals(raw)
        assert merged == [(3.0, 14.0), (25.0, 26.0)]
        a = svc.execute_with_outages(1e9, 1e9, raw)
        b = svc.execute_with_outages(1e9, 1e9, merged)
        assert a.succeeded and b.succeeded
        assert a.total_wall_s == pytest.approx(b.total_wall_s)
        assert a.n_faults == b.n_faults == 1
        assert a.wire_bytes == pytest.approx(b.wire_bytes)
        # one coalesced outage: dark until 14, reconnect, clean finish
        # (the 25 s window opens after the transfer already ended)
        assert a.total_wall_s == pytest.approx(14.0 + 2.0 + 0.7 * 8.0)

    def test_contained_window_is_absorbed_by_its_container(self):
        svc = ReliableTransferService(
            FaultModel(0.0),
            RestartPolicy(marker_interval_bytes=100e6, reconnect_s=2.0),
        )
        inner = svc.execute_with_outages(1e9, 1e9, [(3.0, 10.0), (4.0, 5.0)])
        plain = svc.execute_with_outages(1e9, 1e9, [(3.0, 10.0)])
        assert inner.n_faults == plain.n_faults == 1
        assert inner.total_wall_s == pytest.approx(plain.total_wall_s)


class TestRngHygiene:
    def test_unseeded_runs_are_not_replays(self):
        """rng=None must draw fresh entropy, not silently seed 0."""
        svc = ReliableTransferService(
            FaultModel(faults_per_hour=600.0),
            RestartPolicy(marker_interval_bytes=64e6),
            max_attempts=10_000,
        )
        walls = {round(svc.execute(8e9, 1e9).total_wall_s, 6) for _ in range(5)}
        assert len(walls) > 1

    def test_seeded_runs_replay(self):
        svc = ReliableTransferService(
            FaultModel(faults_per_hour=600.0),
            RestartPolicy(marker_interval_bytes=64e6),
        )
        a = svc.execute(8e9, 1e9, rng=np.random.default_rng(5))
        b = svc.execute(8e9, 1e9, rng=np.random.default_rng(5))
        assert a.total_wall_s == b.total_wall_s

    def test_ensure_rng_contract(self):
        from repro.core.rng import ensure_rng

        g = np.random.default_rng(3)
        assert ensure_rng(g) is g
        assert ensure_rng(7).random() == np.random.default_rng(7).random()
        assert isinstance(ensure_rng(None), np.random.Generator)
