"""Unit and property tests for fault recovery / restart markers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridftp.reliability import (
    FaultModel,
    ReliableTransferService,
    RestartPolicy,
    expected_overhead_factor,
)


class TestFaultModel:
    def test_fault_free_never_faults(self):
        m = FaultModel(0.0)
        assert m.time_to_fault_s(np.random.default_rng(0)) == math.inf

    def test_rate_scales_interarrival(self):
        rng = np.random.default_rng(1)
        fast = np.mean([FaultModel(10.0).time_to_fault_s(rng) for _ in range(500)])
        rng = np.random.default_rng(1)
        slow = np.mean([FaultModel(1.0).time_to_fault_s(rng) for _ in range(500)])
        assert slow == pytest.approx(10 * fast, rel=0.2)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(-1.0)


class TestRestartPolicy:
    def test_resume_rounds_down_to_marker(self):
        p = RestartPolicy(marker_interval_bytes=100.0)
        assert p.resume_point(250.0) == 200.0
        assert p.resume_point(99.0) == 0.0

    def test_no_markers_resume_from_zero(self):
        p = RestartPolicy(marker_interval_bytes=None)
        assert p.resume_point(1e12) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(marker_interval_bytes=0.0)
        with pytest.raises(ValueError):
            RestartPolicy(reconnect_s=-1.0)


class TestService:
    def test_fault_free_single_attempt(self):
        svc = ReliableTransferService(FaultModel(0.0))
        result = svc.execute(1e9, 1e9)
        assert result.succeeded
        assert len(result.attempts) == 1
        assert result.total_wall_s == pytest.approx(8.0)
        assert result.overhead_factor == pytest.approx(1.0)
        assert result.wire_overhead_factor == pytest.approx(1.0)

    def test_faulty_transfer_retries_and_succeeds(self):
        svc = ReliableTransferService(
            FaultModel(faults_per_hour=30.0),
            RestartPolicy(marker_interval_bytes=64e6, reconnect_s=2.0),
            max_attempts=50,
        )
        result = svc.execute(10e9, 1e9, rng=np.random.default_rng(3))
        assert result.succeeded
        assert result.n_faults >= 1
        assert result.total_wall_s > result.clean_wall_s
        assert result.wire_bytes >= result.size_bytes

    def test_retry_budget_exhaustion(self):
        # guaranteed fault every ~0.36 s on an 80 s transfer, 2 attempts
        svc = ReliableTransferService(
            FaultModel(faults_per_hour=10_000.0), max_attempts=2
        )
        result = svc.execute(10e9, 1e9, rng=np.random.default_rng(0))
        assert not result.succeeded
        assert result.overhead_factor == math.inf

    def test_markers_beat_full_restart(self):
        """The reason GridFTP has restart markers (Section II)."""
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        fault = FaultModel(faults_per_hour=60.0)
        with_markers = ReliableTransferService(
            fault, RestartPolicy(marker_interval_bytes=64e6), max_attempts=1000
        )
        without = ReliableTransferService(
            fault, RestartPolicy(marker_interval_bytes=None), max_attempts=1000
        )
        sizes = np.full(30, 8e9)
        t_marked = sum(r.total_wall_s for r in with_markers.execute_many(sizes, 1e9, rng_a))
        t_naive = sum(r.total_wall_s for r in without.execute_many(sizes, 1e9, rng_b))
        assert t_naive > 1.3 * t_marked

    def test_validation(self):
        svc = ReliableTransferService(FaultModel(0.0))
        with pytest.raises(ValueError):
            svc.execute(0.0, 1e9)
        with pytest.raises(ValueError):
            svc.execute(1e9, 0.0)
        with pytest.raises(ValueError):
            ReliableTransferService(FaultModel(0.0), max_attempts=0)

    @given(
        st.floats(min_value=1e6, max_value=1e11),
        st.floats(min_value=0.0, max_value=120.0),
    )
    @settings(max_examples=40)
    def test_useful_bytes_property(self, size, fault_rate):
        """When a task succeeds, wire bytes >= size and wall >= clean time."""
        svc = ReliableTransferService(
            FaultModel(fault_rate),
            RestartPolicy(marker_interval_bytes=32e6, reconnect_s=1.0),
            max_attempts=500,
        )
        result = svc.execute(size, 2e9, rng=np.random.default_rng(11))
        if result.succeeded:
            assert result.wire_bytes >= size - 1e-6
            assert result.total_wall_s >= result.clean_wall_s - 1e-9
        assert len(result.attempts) <= 500


class TestExpectedOverhead:
    def test_fault_free_is_one(self):
        assert expected_overhead_factor(
            1e9, 1e9, FaultModel(0.0), RestartPolicy()
        ) == 1.0

    def test_matches_monte_carlo(self):
        fault = FaultModel(faults_per_hour=40.0)
        policy = RestartPolicy(marker_interval_bytes=64e6, reconnect_s=2.0)
        svc = ReliableTransferService(fault, policy, max_attempts=10_000)
        rng = np.random.default_rng(5)
        sims = [svc.execute(16e9, 1e9, rng).overhead_factor for _ in range(300)]
        predicted = expected_overhead_factor(16e9, 1e9, fault, policy)
        assert np.mean(sims) == pytest.approx(predicted, rel=0.15)

    def test_no_markers_overhead_grows_with_size(self):
        fault = FaultModel(faults_per_hour=60.0)
        naive = RestartPolicy(marker_interval_bytes=None)
        small = expected_overhead_factor(1e9, 1e9, fault, naive)
        large = expected_overhead_factor(64e9, 1e9, fault, naive)
        assert large > 2 * small

    def test_markers_bound_overhead(self):
        fault = FaultModel(faults_per_hour=60.0)
        marked = RestartPolicy(marker_interval_bytes=64e6)
        small = expected_overhead_factor(1e9, 1e9, fault, marked)
        large = expected_overhead_factor(64e9, 1e9, fault, marked)
        # per-segment overhead is size-independent: the factor is flat
        assert large == pytest.approx(small, rel=0.05)
