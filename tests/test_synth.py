"""Calibration tests for the synthetic dataset generators.

These assert the *paper regimes* (Section 5 of DESIGN.md), not exact
numbers: skewed session sizes, Table IV percentages in the right bands,
the Fig. 3 stream effect, the planted outliers.  SLAC--BNL is exercised
at reduced scale to keep the suite fast.
"""

import numpy as np
import pytest

from repro.core.concurrency import concurrency_analysis
from repro.core.sessions import group_sessions, session_gap_report
from repro.core.streams import GB, MB, stream_comparison
from repro.core.stripes import by_stripes, size_range_slice
from repro.core.throughput import categorized_throughput
from repro.core.vc_suitability import suitability_table
from repro.workload.synth import (
    ncar_nics,
    nersc_anl_tests,
    nersc_ornl_32gb,
    slac_bnl,
)


@pytest.fixture(scope="module")
def ncar():
    return ncar_nics(seed=1)


@pytest.fixture(scope="module")
def slac():
    # 1/10 scale keeps the suite fast; structure is scale-invariant
    return slac_bnl(seed=1, n_transfers=100_000)


@pytest.fixture(scope="module")
def ornl():
    return nersc_ornl_32gb(seed=3)


@pytest.fixture(scope="module")
def anl():
    return nersc_anl_tests(seed=3)


class TestNcarNics:
    def test_transfer_count_exact(self, ncar):
        assert len(ncar) == 52_454

    def test_session_count_regime(self, ncar):
        s = group_sessions(ncar, 60.0)
        assert 180 <= len(s) <= 240  # paper: 211

    def test_monster_session(self, ncar):
        s = group_sessions(ncar, 60.0)
        assert 18_000 <= s.max_transfers() <= 21_000  # paper: ~19,450

    def test_session_sizes_skewed_right(self, ncar):
        s = group_sessions(ncar, 60.0)
        assert s.total_size.mean() > 2 * np.median(s.total_size)

    def test_throughput_regime(self, ncar):
        tput = ncar.throughput_bps
        tput = tput[tput > 0]
        q3 = np.percentile(tput, 75)
        assert 550e6 <= q3 <= 850e6  # paper: 682.2 Mbps
        assert 3.4e9 <= tput.max() <= 4.6e9  # paper: 4.23 Gbps

    def test_table4_regime(self, ncar):
        grid = suitability_table(ncar)
        r = grid[(60.0, 60.0)]
        assert 40 <= r.percent_sessions <= 70  # paper: 56.87
        assert 85 <= r.percent_transfers <= 97  # paper: 90.54
        r50 = grid[(60.0, 0.05)]
        assert r50.percent_sessions >= 88  # paper: 92.89

    def test_gap_report_monotone(self, ncar):
        rows = session_gap_report(ncar, [0.0, 60.0, 120.0])
        counts = [r.n_sessions for r in rows]
        assert counts[0] > 50 * counts[1]  # g=0 fragments massively
        assert counts[1] > counts[2]

    def test_stripes_median_increases(self, ncar):
        sixteen = size_range_slice(ncar, 16 * GB, 17 * GB)
        groups = by_stripes(sixteen)
        medians = [g.throughput.median for g in groups if g.n_transfers >= 10]
        assert len(medians) >= 2
        assert medians == sorted(medians)

    def test_size_slices_populated(self, ncar):
        assert len(size_range_slice(ncar, 16 * GB, 17 * GB)) > 300
        assert len(size_range_slice(ncar, 4 * GB, 5 * GB)) > 800

    def test_years_span(self, ncar):
        years = ncar.start.astype("datetime64[s]").astype("datetime64[Y]")
        assert set(years.astype(int) + 1970) == {2009, 2010, 2011}

    def test_deterministic(self):
        assert ncar_nics(seed=5, n_transfers=2000) == ncar_nics(
            seed=5, n_transfers=2000
        )


class TestSlacBnl:
    def test_transfer_count_exact(self, slac):
        assert len(slac) == 100_000

    def test_single_stripe(self, slac):
        assert np.all(slac.stripes == 1)

    def test_stream_mix(self, slac):
        frac8 = (slac.streams == 8).mean()
        assert 0.80 <= frac8 <= 0.90  # paper: 84.6% multi-stream

    def test_session_sizes_regime(self, slac):
        s = group_sessions(slac, 60.0)
        med = np.median(s.total_size)
        assert 0.3e9 <= med <= 3e9  # paper: ~1.1 GB
        assert s.total_size.mean() > 5 * med  # paper: mean ~24 GB

    def test_table4_structure(self, slac):
        grid = suitability_table(slac)
        r = grid[(60.0, 60.0)]
        # paper: 12.5% of sessions hold 78.4% of transfers
        assert 5 <= r.percent_sessions <= 25
        assert 60 <= r.percent_transfers <= 92
        assert grid[(60.0, 0.05)].percent_sessions >= 88

    def test_fig3_stream_effect(self, slac):
        cmp = stream_comparison(slac, 20 * MB, 0, 1 * GB)
        left, m1, m8 = cmp.common_bins()
        small = (left >= 20e6) & (left <= 120e6)
        # 8-stream medians beat 1-stream medians for small files
        assert np.mean(m8[small] / m1[small]) > 1.2

    def test_fig4_dip_planted(self, slac):
        cmp = stream_comparison(slac, 100 * MB, 0, 4 * GB)
        m8 = cmp.multi_stream
        dip = (m8.bin_left >= 2.3e9) & (m8.bin_left < 3.0e9)
        flat = (m8.bin_left >= 1.2e9) & (m8.bin_left < 2.1e9)
        if dip.any() and flat.any():
            assert np.median(m8.median[dip]) < 0.75 * np.median(m8.median[flat])

    def test_fast_burst_planted(self, slac):
        tput = slac.throughput_bps
        fast = tput > 1.5e9
        assert fast.sum() > 50
        sizes = slac.size[fast]
        assert ((sizes >= 398e6) & (sizes < 399e6)).mean() > 0.8

    def test_throughput_cap(self, slac):
        assert slac.throughput_bps.max() < 2.8e9  # paper max: 2.56 Gbps

    def test_sessions_scale_with_n(self):
        small = slac_bnl(seed=2, n_transfers=30_000)
        s = group_sessions(small, 60.0)
        assert 200 <= len(s) <= 400  # ~10,199 * 30k/1.02M


class TestNerscOrnl:
    def test_count_and_shape(self, ornl):
        assert len(ornl) == 145
        assert np.all(ornl.streams == 8)
        assert np.all(ornl.stripes == 1)
        assert np.all((ornl.size >= 32e9) & (ornl.size < 33e9))

    def test_throughput_range(self, ornl):
        tput = ornl.throughput_bps
        assert tput.min() >= 0.75e9
        assert tput.max() <= 3.65e9
        iqr = np.percentile(tput, 75) - np.percentile(tput, 25)
        assert 450e6 <= iqr <= 950e6  # paper: 695 Mbps

    def test_start_hours(self, ornl):
        hours = (ornl.start % 86_400) // 3600
        assert set(np.unique(hours)) == {2.0, 8.0}

    def test_both_directions(self, ornl):
        assert len(np.unique(ornl.transfer_type)) == 2


class TestNerscAnl:
    def test_category_counts(self, anl):
        assert {k: int(v.sum()) for k, v in anl.masks.items()} == {
            "mem-mem": 84, "mem-disk": 78, "disk-mem": 87, "disk-disk": 85,
        }

    def test_masks_partition(self, anl):
        total = sum(int(v.sum()) for v in anl.masks.values())
        assert total == len(anl.log) == 334

    def test_disk_write_bottleneck_ordering(self, anl):
        cats = {c.category: c for c in categorized_throughput(
            {k: anl.category(k) for k in anl.masks}
        )}
        # Fig. 1: *-disk categories have lower medians than *-mem
        assert cats["mem-mem"].summary.median > cats["mem-disk"].summary.median
        assert cats["disk-mem"].summary.median > cats["disk-disk"].summary.median

    def test_cv_regime(self, anl):
        for c in categorized_throughput({k: anl.category(k) for k in anl.masks}):
            assert 0.15 <= c.cv <= 0.60  # paper: 30.8% - 35.7%

    def test_eq2_weak_positive_correlation(self, anl):
        a = concurrency_analysis(anl.log, subset=anl.mm_indices())
        assert 0.2 <= a.correlation <= 0.7  # paper: 0.458

    def test_mm_indices_match_mask(self, anl):
        idx = anl.mm_indices()
        assert np.all(anl.masks["mem-mem"][idx])
