"""Crash-safe campaign tests: checkpoint journal, resume, signals, timeouts.

Covers the :class:`~repro.experiments.checkpoint.CampaignCheckpoint`
journal format, graceful SIGINT/SIGTERM draining, resume-after-kill
semantics (including a real SIGKILLed subprocess), the
execution-start-based per-cell timeout (a queued cell must not burn its
budget waiting), and the hung-worker pool recycle (one wedged cell must
not serialize the rest of the campaign).
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.experiments import (
    CampaignCheckpoint,
    CampaignInterrupted,
    ExperimentSpec,
    ResultCache,
    Runner,
    canonical_json,
    register_scenario,
    spec_fingerprint,
)

# -- scenarios for these tests (registry is process-global; fork-started
# -- workers inherit them) ----------------------------------------------------


@register_scenario("ck-echo")
def _ck_echo(params, seed):
    return {"x": params["x"], "seed": seed}


@register_scenario("ck-sleep")
def _ck_sleep(params, seed):
    time.sleep(float(params["sleep_s"]))
    return {"slept": params["sleep_s"], "seed": seed}


@register_scenario("ck-die")
def _ck_die(params, seed):
    if params["x"] == int(params.get("die_on", -1)):
        # give batch-mates time to settle, then take the worker down
        # hard enough to break the whole pool
        time.sleep(0.3)
        os._exit(3)
    return {"x": params["x"]}


@register_scenario("ck-kill-parent")
def _ck_kill_parent(params, seed):
    # deliver the drain signal *during* the campaign, deterministically
    if params["x"] == int(params.get("kill_on", 0)):
        os.kill(os.getppid() if params.get("parent") else os.getpid(),
                getattr(signal, params.get("sig", "SIGTERM")))
        time.sleep(0.2)  # give the supervisor time to see the flag
    else:
        time.sleep(float(params.get("sleep_s", 0.05)))
    return {"x": params["x"]}


def _echo_spec(n=4, **overrides) -> ExperimentSpec:
    base = dict(
        name="ck-grid",
        scenario="ck-echo",
        axes={"x": tuple(range(n))},
        seed=5,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


# -- the journal itself ------------------------------------------------------


class TestCheckpointJournal:
    def test_record_flush_load_round_trip(self, tmp_path):
        spec = _echo_spec()
        ck = CampaignCheckpoint.for_spec(tmp_path, spec)
        ck.begin_batch([0, 1])
        ck.record(0, "a" * 64, None, 0.25)
        ck.record(1, "b" * 64, "ValueError: boom", 0.5)
        assert ck.path.exists()
        assert ck.frontier == ()  # both settled

        fresh = CampaignCheckpoint.for_spec(tmp_path, spec)
        assert fresh.load()
        assert fresh.settled[0].key == "a" * 64
        assert fresh.settled[0].error is None
        assert fresh.settled[1].error == "ValueError: boom"
        assert fresh.settled[1].wall_s == 0.5

    def test_frontier_survives_in_journal(self, tmp_path):
        spec = _echo_spec()
        ck = CampaignCheckpoint.for_spec(tmp_path, spec)
        ck.begin_batch([2, 3])
        lines = [json.loads(l) for l in ck.path.read_text().splitlines()]
        header, events = lines[0], lines[1:]
        assert header["spec_fingerprint"] == spec_fingerprint(spec)
        assert header["spec"]["name"] == "ck-grid"
        assert {"f": [2, 3]} in events

    def test_settles_append_instead_of_rewriting(self, tmp_path):
        # the journal must stay O(1) I/O per settled cell: each record()
        # appends one event line, it does not rewrite the whole file
        spec = _echo_spec(n=64)
        ck = CampaignCheckpoint.for_spec(tmp_path, spec)
        ck.begin_batch(range(64))
        ck.record(0, None, None, 0.1)
        header_size = ck.path.stat().st_size
        deltas = []
        for i in range(1, 64):
            before = ck.path.stat().st_size
            ck.record(i, "c" * 64, None, 0.1)
            deltas.append(ck.path.stat().st_size - before)
        # every settle appends the same-sized event line; a full-rewrite
        # journal would grow its delta linearly with cells settled
        assert max(deltas) - min(deltas) <= 4
        assert max(deltas) < header_size

        fresh = CampaignCheckpoint.for_spec(tmp_path, spec)
        assert fresh.load()
        assert len(fresh.settled) == 64
        assert fresh.frontier == ()

    def test_torn_trailing_append_loses_only_that_event(self, tmp_path):
        spec = _echo_spec()
        ck = CampaignCheckpoint.for_spec(tmp_path, spec)
        ck.begin_batch([0, 1])
        ck.record(0, "a" * 64, None, 0.2)
        ck.record(1, None, "ValueError: boom", 0.3)
        # a kill mid-append tears the last line
        torn = ck.path.read_text()[:-9]
        ck.path.write_text(torn)
        fresh = CampaignCheckpoint.for_spec(tmp_path, spec)
        assert fresh.load()
        assert 0 in fresh.settled
        assert 1 not in fresh.settled  # the torn event, nothing else
        assert fresh.frontier == (1,)

    def test_wrong_spec_fingerprint_is_ignored(self, tmp_path):
        ck = CampaignCheckpoint.for_spec(tmp_path, _echo_spec())
        ck.record(0, None, "err", 0.1)
        other = CampaignCheckpoint(ck.path, _echo_spec(seed=99))
        assert not other.load()
        assert other.settled == {}

    def test_corrupt_journal_is_ignored(self, tmp_path):
        ck = CampaignCheckpoint.for_spec(tmp_path, _echo_spec())
        ck.path.parent.mkdir(parents=True, exist_ok=True)
        ck.path.write_text("{ not json")
        assert not ck.load()

    def test_complete_removes_journal(self, tmp_path):
        ck = CampaignCheckpoint.for_spec(tmp_path, _echo_spec())
        ck.record(0, None, None, 0.1)
        assert ck.path.exists()
        ck.complete()
        assert not ck.path.exists()
        ck.complete()  # idempotent

    def test_fingerprint_distinguishes_specs(self):
        assert spec_fingerprint(_echo_spec()) != spec_fingerprint(
            _echo_spec(seed=6)
        )
        assert spec_fingerprint(_echo_spec()) == spec_fingerprint(_echo_spec())


# -- runner integration: journal lifecycle and restore -----------------------


class TestRunnerCheckpoint:
    def test_successful_run_removes_checkpoint(self, tmp_path):
        runner = Runner(
            cache=ResultCache(tmp_path / "c"), checkpoint_dir=tmp_path / "ck"
        )
        campaign = runner.run(_echo_spec())
        assert campaign.n_executed == 4
        assert list((tmp_path / "ck").glob("*.ckpt.jsonl")) == []

    def test_quarantined_cells_restored_verbatim(self, tmp_path):
        spec = _echo_spec()
        ckdir = tmp_path / "ck"
        ck = CampaignCheckpoint.for_spec(ckdir, spec)
        ck.record(1, None, "ValueError: injected by a previous run", 0.125)

        campaign = Runner(
            cache=ResultCache(tmp_path / "c"), checkpoint_dir=ckdir
        ).run(spec)
        bad = campaign.cells[1]
        assert bad.error == "ValueError: injected by a previous run"
        assert bad.wall_s == 0.125
        assert not bad.cached
        # the other three executed; nothing re-ran the restored cell
        assert campaign.n_executed == 3
        assert campaign.n_failed == 1
        # settled everything -> journal gone
        assert not ck.path.exists()

    def test_force_ignores_checkpoint(self, tmp_path):
        spec = _echo_spec()
        ckdir = tmp_path / "ck"
        ck = CampaignCheckpoint.for_spec(ckdir, spec)
        ck.record(1, None, "ValueError: stale", 0.1)
        campaign = Runner(
            cache=ResultCache(tmp_path / "c"), checkpoint_dir=ckdir
        ).run(spec, force=True)
        assert campaign.n_failed == 0
        assert campaign.n_executed == 4
        assert not ck.path.exists()

    def test_serial_journal_matches_parallel(self, tmp_path):
        # both executors journal through the same code path
        for jobs, sub in ((1, "s"), (2, "p")):
            ckdir = tmp_path / f"ck-{sub}"
            runner = Runner(
                jobs=jobs,
                cache=ResultCache(tmp_path / f"c-{sub}"),
                checkpoint_dir=ckdir,
            )
            campaign = runner.run(_echo_spec())
            assert campaign.n_executed == 4
            assert list(ckdir.glob("*.ckpt.jsonl")) == []


# -- graceful signal handling ------------------------------------------------


class TestGracefulSignals:
    def _kill_spec(self, n=5, *, parent, kill_on=1, sig="SIGTERM"):
        return ExperimentSpec(
            name="ck-kill",
            scenario="ck-kill-parent",
            params={
                "parent": parent,
                "kill_on": kill_on,
                "sig": sig,
                "sleep_s": 0.05,
            },
            axes={"x": tuple(range(n))},
            seed=2,
        )

    def test_serial_sigterm_drains_and_raises_resumable(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = self._kill_spec(n=5, parent=False, kill_on=1)
        runner = Runner(cache=cache, checkpoint_dir=tmp_path / "ck")
        with pytest.raises(CampaignInterrupted) as info:
            runner.run(spec)
        exc = info.value
        assert exc.signum == signal.SIGTERM
        # the killing cell itself finished (the signal only sets a flag)
        assert exc.n_settled == 2
        assert exc.n_executed == 2
        assert "resume" in str(exc)
        assert exc.checkpoint_path is not None and exc.checkpoint_path.exists()

        # resume: settled cells come back from the cache, the rest execute
        resumed = Runner(cache=cache, checkpoint_dir=tmp_path / "ck").run(spec)
        assert resumed.n_cached == 2
        assert resumed.n_executed == 3
        assert resumed.n_failed == 0
        assert not exc.checkpoint_path.exists()

    def test_parallel_sigterm_drains_and_raises_resumable(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = self._kill_spec(n=6, parent=True, kill_on=0)
        runner = Runner(
            jobs=2, chunk_size=1, cache=cache, checkpoint_dir=tmp_path / "ck"
        )
        with pytest.raises(CampaignInterrupted) as info:
            runner.run(spec)
        exc = info.value
        assert exc.signum == signal.SIGTERM
        # the in-flight batch drained; later batches never submitted
        assert 1 <= exc.n_settled <= 2
        assert exc.n_failed == 0

        resumed = Runner(
            jobs=2, chunk_size=1, cache=cache, checkpoint_dir=tmp_path / "ck"
        ).run(spec)
        assert resumed.n_cached == exc.n_settled
        assert resumed.n_executed == 6 - exc.n_settled
        assert resumed.n_failed == 0

    def test_sigint_also_drains(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = self._kill_spec(n=4, parent=False, kill_on=0, sig="SIGINT")
        with pytest.raises(CampaignInterrupted) as info:
            Runner(cache=cache, checkpoint_dir=tmp_path / "ck").run(spec)
        assert info.value.signum == signal.SIGINT

    def test_handlers_restored_after_run(self, tmp_path):
        before = (
            signal.getsignal(signal.SIGINT),
            signal.getsignal(signal.SIGTERM),
        )
        Runner().run(_echo_spec())
        spec = self._kill_spec(n=3, parent=False, kill_on=0)
        with pytest.raises(CampaignInterrupted):
            Runner(cache=ResultCache(tmp_path / "c")).run(spec)
        after = (
            signal.getsignal(signal.SIGINT),
            signal.getsignal(signal.SIGTERM),
        )
        assert before == after

    def test_interrupt_without_checkpoint_still_resumes_via_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = self._kill_spec(n=5, parent=False, kill_on=1)
        with pytest.raises(CampaignInterrupted) as info:
            Runner(cache=cache).run(spec)
        assert info.value.checkpoint_path is None
        resumed = Runner(cache=cache).run(spec)
        assert resumed.n_cached == 2
        assert resumed.n_executed == 3


# -- resume after a hard SIGKILL (real subprocess, no graceful path) ---------


_CHILD_SCRIPT = textwrap.dedent(
    """
    import sys, time
    from repro.experiments import ExperimentSpec, ResultCache, Runner, register_scenario

    @register_scenario("ck-subproc")
    def _s(params, seed):
        time.sleep(0.4)
        return {"x": params["x"], "seed": seed}

    spec = ExperimentSpec(
        name="ck-subproc-grid",
        scenario="ck-subproc",
        axes={"x": list(range(8))},
        seed=3,
    )
    runner = Runner(
        jobs=2,
        chunk_size=2,
        cache=ResultCache(sys.argv[1]),
        checkpoint_dir=sys.argv[2],
    )
    print("READY", flush=True)
    runner.run(spec)
    print("DONE", flush=True)
    """
)


@register_scenario("ck-subproc")
def _ck_subproc(params, seed):
    time.sleep(0.4)
    return {"x": params["x"], "seed": seed}


class TestSigkillResume:
    def test_sigkilled_run_resumes_without_recomputation(self, tmp_path):
        spec = ExperimentSpec(
            name="ck-subproc-grid",
            scenario="ck-subproc",
            axes={"x": tuple(range(8))},
            seed=3,
        )
        # uninterrupted reference, fresh cache
        reference = Runner(cache=ResultCache(tmp_path / "ref")).run(spec)

        script = tmp_path / "child.py"
        script.write_text(_CHILD_SCRIPT)
        cache_dir = tmp_path / "cache"
        ck_dir = tmp_path / "ck"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        child = subprocess.Popen(
            [sys.executable, str(script), str(cache_dir), str(ck_dir)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            # wait for the campaign to actually start, then let a couple
            # of batches settle before the hard kill
            assert child.stdout.readline().strip() == "READY"
            time.sleep(1.3)
        finally:
            child.kill()
            child.wait()

        cache = ResultCache(cache_dir)
        n_settled_before = len(cache)
        assert n_settled_before < 8  # the kill landed mid-campaign

        resumed = Runner(
            jobs=2, chunk_size=2, cache=cache, checkpoint_dir=ck_dir
        ).run(spec)
        # zero recomputation of settled cells, and only unfinished ran
        assert resumed.n_cached == n_settled_before
        assert resumed.n_executed == 8 - n_settled_before
        assert resumed.n_failed == 0
        # byte-identical payload to the uninterrupted run
        assert canonical_json(resumed.results()) == canonical_json(
            reference.results()
        )
        # journal consumed, nothing left pending
        assert list(ck_dir.glob("*.ckpt.jsonl")) == []

    def test_resume_equivalence_when_cache_is_partial(self, tmp_path):
        # deterministic variant of the same contract: drop artifacts to
        # fake a partially settled run, resume must fill exactly the gap
        spec = _echo_spec(n=6)
        cache = ResultCache(tmp_path / "c")
        full = Runner(cache=cache).run(spec)
        paths = list(cache.iter_artifacts())
        assert len(paths) == 6
        for path in paths[:2]:
            path.unlink()
        resumed = Runner(cache=cache).run(spec)
        assert resumed.n_cached == 4
        assert resumed.n_executed == 2
        assert resumed.results() == full.results()
        assert [
            dataclasses.replace(c, cached=False, wall_s=0.0)
            for c in resumed.cells
        ] == [
            dataclasses.replace(c, cached=False, wall_s=0.0)
            for c in full.cells
        ]


# -- per-cell timeouts measured from execution start -------------------------


class TestTimeoutFromExecutionStart:
    def test_queued_cells_do_not_burn_budget_waiting(self):
        # 4 cells of ~0.7 s on 2 workers, 1.2 s budget: cells 2-3 queue
        # behind 0-1 for a full execution before they start.  A budget
        # measured from *submission* (the old bug) expires while they are
        # still blameless in the queue; measured from execution start
        # they finish with ~0.5 s to spare.
        spec = ExperimentSpec(
            name="ck-queue",
            scenario="ck-sleep",
            axes={"sleep_s": (0.7, 0.71, 0.72, 0.73)},
            seed=0,
        )
        campaign = Runner(jobs=2, chunk_size=2, cell_timeout_s=1.2).run(spec)
        assert campaign.n_failed == 0, [
            c.error for c in campaign.cells if not c.ok
        ]

    def test_single_worker_queue_is_the_sharpest_pin(self):
        # with one worker the second cell waits out the whole first cell
        # before starting; jobs=1 routes serial in run(), so drive the
        # parallel executor directly to pin its budget clock
        from repro.experiments.runner import _RunContext, _SignalDrain

        spec = ExperimentSpec(
            name="ck-queue-1w",
            scenario="ck-sleep",
            axes={"sleep_s": (0.6, 0.61)},
            seed=0,
        )
        runner = Runner(jobs=1, chunk_size=2, cell_timeout_s=1.0)
        settled = {}
        pending = [(cell, None) for cell in spec.cells()]
        with _SignalDrain() as drain:
            runner._run_parallel(
                _RunContext(spec=spec), pending, settled, None, drain
            )
        assert len(settled) == 2
        assert all(r.ok for r in settled.values()), {
            i: r.error for i, r in settled.items() if not r.ok
        }

    def test_genuinely_slow_cell_still_quarantined(self):
        spec = ExperimentSpec(
            name="ck-slow",
            scenario="ck-sleep",
            axes={"sleep_s": (0.05, 30.0)},
            seed=0,
        )
        t0 = time.perf_counter()
        campaign = Runner(jobs=2, cell_timeout_s=0.5).run(spec)
        wall = time.perf_counter() - t0
        assert campaign.cells[0].ok
        slow = campaign.cells[1]
        assert not slow.ok
        assert "TimeoutError" in slow.error and "0.5 s budget" in slow.error
        # the wedged worker must not stall campaign teardown
        assert wall < 15.0


class TestHungWorkerRecycle:
    def test_hung_cell_does_not_serialize_later_batches(self):
        # first batch contains a cell that hangs far past its budget;
        # Future.cancel() can't stop it, so the old code left the worker
        # wedged in its slot and the final shutdown(wait=True) blocked on
        # the 30 s sleep.  The pool recycle must terminate it instead.
        spec = ExperimentSpec(
            name="ck-hang",
            scenario="ck-sleep",
            axes={"sleep_s": (30.0, 0.05, 0.06, 0.07, 0.08, 0.09)},
            seed=0,
        )
        t0 = time.perf_counter()
        campaign = Runner(jobs=2, chunk_size=1, cell_timeout_s=0.5).run(spec)
        wall = time.perf_counter() - t0
        assert campaign.n_failed == 1
        assert "TimeoutError" in campaign.cells[0].error
        assert all(c.ok for c in campaign.cells[1:])
        # 5 fast cells + pool recycle must come nowhere near the 30 s
        # sleep the wedged worker was holding
        assert wall < 15.0, f"campaign took {wall:.1f} s - worker leak?"

    def test_saturated_batch_of_hung_cells_does_not_deadlock(self):
        # BOTH workers wedge on the first two cells of a single batch:
        # the queued cells 2-3 never start, never stamp an execution
        # start, and under the old code never timed out — the drain spun
        # forever and the campaign hung despite cell_timeout_s.  The
        # wedged-slot bailout must pull them back, recycle the pool, and
        # execute them there.
        spec = ExperimentSpec(
            name="ck-hang-saturated",
            scenario="ck-sleep",
            axes={"sleep_s": (30.0, 30.01, 0.05, 0.06)},
            seed=0,
        )
        t0 = time.perf_counter()
        campaign = Runner(jobs=2, chunk_size=2, cell_timeout_s=0.5).run(spec)
        wall = time.perf_counter() - t0
        assert campaign.n_failed == 2
        assert "TimeoutError" in campaign.cells[0].error
        assert "TimeoutError" in campaign.cells[1].error
        # the queued cells were innocent and must have executed
        assert campaign.cells[2].ok and campaign.cells[3].ok
        assert wall < 15.0, f"campaign took {wall:.1f} s - drain deadlock?"

    def test_worker_killing_cell_settles_not_keyerror(self, tmp_path):
        # a cell that exits its worker breaks the pool mid-batch; the
        # old code abandoned the batch's unsettled cells and run() then
        # crashed with a bare KeyError building the result tuple.  Now
        # innocent batch-mates are resubmitted on the recycled pool and
        # the killer is quarantined after the retry cap.
        spec = ExperimentSpec(
            name="ck-die-grid",
            scenario="ck-die",
            params={"die_on": 0},
            axes={"x": (0, 1, 2, 3)},
            seed=0,
        )
        campaign = Runner(
            jobs=2,
            chunk_size=2,
            cache=ResultCache(tmp_path / "c"),
            checkpoint_dir=tmp_path / "ck",
        ).run(spec)
        assert campaign.n_cells == 4  # settled everything, no KeyError
        killer = campaign.cells[0]
        assert not killer.ok
        assert "BrokenProcessPool" in killer.error
        assert all(c.ok for c in campaign.cells[1:])
        # every cell settled -> journal consumed
        assert list((tmp_path / "ck").glob("*.ckpt.jsonl")) == []

    def test_hung_cells_journal_as_quarantined_for_resume(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = ExperimentSpec(
            name="ck-hang-journal",
            scenario="ck-sleep",
            axes={"sleep_s": (30.0, 0.05)},
            seed=0,
        )
        campaign = Runner(
            jobs=2, cell_timeout_s=0.4, cache=cache,
            checkpoint_dir=tmp_path / "ck",
        ).run(spec)
        assert campaign.n_failed == 1
        # campaign settled every cell -> journal consumed
        assert list((tmp_path / "ck").glob("*.ckpt.jsonl")) == []
        # warm re-run: fast cell cached, hung cell retried (and re-fails)
        again = Runner(
            jobs=2, cell_timeout_s=0.4, cache=cache,
            checkpoint_dir=tmp_path / "ck",
        ).run(spec)
        assert again.n_cached == 1
        assert again.n_failed == 1
