"""Unit and property tests for repro.core.sessions (the gap-g grouper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sessions import group_sessions, session_gap_report
from repro.gridftp.records import TransferLog


def log_from(rows, local=0, remote=5):
    """rows: list of (start, duration[, size])."""
    return TransferLog(
        {
            "start": [r[0] for r in rows],
            "duration": [r[1] for r in rows],
            "size": [r[2] if len(r) > 2 else 1e6 for r in rows],
            "local_host": [local] * len(rows),
            "remote_host": [remote] * len(rows),
        }
    )


class TestBasicGrouping:
    def test_single_transfer_single_session(self):
        s = group_sessions(log_from([(0, 10)]), g=60)
        assert len(s) == 1
        assert s.n_transfers[0] == 1
        assert s.duration[0] == 10

    def test_back_to_back_within_gap(self):
        s = group_sessions(log_from([(0, 10), (30, 10)]), g=60)
        assert len(s) == 1
        assert s.n_transfers[0] == 2

    def test_gap_exceeding_g_breaks(self):
        s = group_sessions(log_from([(0, 10), (80, 10)]), g=60)
        assert len(s) == 2

    def test_gap_exactly_g_does_not_break(self):
        # the rule is gap > g breaks, so gap == g stays together
        s = group_sessions(log_from([(0, 10), (70, 10)]), g=60)
        assert len(s) == 1

    def test_g_zero_breaks_on_any_positive_gap(self):
        s = group_sessions(log_from([(0, 10), (10.5, 10)]), g=0)
        assert len(s) == 2

    def test_g_zero_keeps_contiguous(self):
        s = group_sessions(log_from([(0, 10), (10.0, 10)]), g=0)
        assert len(s) == 1

    def test_negative_gap_same_session(self):
        # overlapping (concurrent) transfers always share a session
        s = group_sessions(log_from([(0, 100), (50, 10)]), g=0)
        assert len(s) == 1

    def test_long_transfer_bridges_later_short_ones(self):
        # transfer 0 runs [0, 1000]; transfer 1 [10, 20]; transfer 2 at 500
        # is within the *running max end*, so all one session even at g=0
        s = group_sessions(log_from([(0, 1000), (10, 10), (500, 10)]), g=0)
        assert len(s) == 1

    def test_session_duration_spans_max_end(self):
        s = group_sessions(log_from([(0, 100), (10, 10)]), g=60)
        assert s.duration[0] == 100

    def test_total_size_sums(self):
        s = group_sessions(log_from([(0, 1, 5.0), (2, 1, 7.0)]), g=60)
        assert s.total_size[0] == 12.0

    def test_unsorted_input_handled(self):
        rows = [(80, 10), (0, 10)]
        s = group_sessions(log_from(rows), g=60)
        assert len(s) == 2

    def test_empty_log(self):
        s = group_sessions(TransferLog(), g=60)
        assert len(s) == 0
        assert s.n_single == 0

    def test_negative_g_rejected(self):
        with pytest.raises(ValueError):
            group_sessions(log_from([(0, 1)]), g=-1)


class TestPairSeparation:
    def test_different_pairs_never_merge(self):
        a = log_from([(0, 10), (20, 10)], local=0, remote=5)
        b = log_from([(5, 10), (25, 10)], local=0, remote=6)
        merged = TransferLog.concatenate([a, b])
        s = group_sessions(merged, g=60)
        assert len(s) == 2
        assert set(zip(s.local_host, s.remote_host)) == {(0, 5), (0, 6)}

    def test_interleaved_pairs(self):
        a = log_from([(0, 1), (100, 1), (200, 1)], remote=5)
        b = log_from([(50, 1), (150, 1)], remote=6)
        s = group_sessions(TransferLog.concatenate([a, b]), g=120)
        # within each pair, gaps are ~99s <= 120 -> one session per pair
        assert len(s) == 2

    def test_anonymized_log_rejected(self):
        log = log_from([(0, 1)]).anonymize_remote()
        with pytest.raises(ValueError, match="anonymized"):
            group_sessions(log, g=60)


class TestSessionSetStats:
    def test_single_multi_counts(self):
        log = log_from([(0, 1), (200, 1), (201, 1)])
        s = group_sessions(log, g=60)
        assert s.n_single == 1
        assert s.n_multi == 1

    def test_effective_throughput(self):
        s = group_sessions(log_from([(0, 10, 10e6), (5, 5, 10e6)]), g=60)
        assert s.effective_throughput_bps[0] == pytest.approx(20e6 * 8 / 10)

    def test_percent_with_at_most(self):
        log = log_from([(0, 1), (200, 1), (201, 1), (400, 1), (401, 1), (402, 1)])
        s = group_sessions(log, g=60)  # sessions of 1, 2 and 3 transfers
        assert s.percent_with_at_most_transfers(2) == pytest.approx(100 * 2 / 3)

    def test_max_transfers(self):
        log = log_from([(0, 1), (1, 1), (2, 1), (500, 1)])
        s = group_sessions(log, g=60)
        assert s.max_transfers() == 3

    def test_count_at_least(self):
        log = log_from([(i * 2.0, 1.0) for i in range(120)])
        s = group_sessions(log, g=60)
        assert s.count_with_at_least_transfers(100) == 1

    def test_summaries(self):
        log = log_from([(0, 10, 1e9), (300, 10, 2e9)])
        s = group_sessions(log, g=60)
        assert s.size_summary().n == 2
        assert s.duration_summary().maximum == 10

    def test_transfer_session_mapping(self):
        log = log_from([(0, 1), (2, 1), (500, 1)])
        s = group_sessions(log, g=60)
        assert s.transfer_session.shape == (3,)
        counts = np.bincount(s.transfer_session)
        assert np.array_equal(np.sort(counts), [1, 2])


class TestGapReport:
    def test_report_rows(self):
        log = log_from([(0, 1), (30, 1), (120, 1)])
        rows = session_gap_report(log, [0.0, 60.0, 120.0])
        assert [r.g for r in rows] == [0.0, 60.0, 120.0]
        # g=0: three singles; g=60: {0,30} merge; g=120: all merge
        assert rows[0].n_single == 3
        assert rows[1].n_sessions == 2
        assert rows[2].n_sessions == 1

    def test_monotone_session_count_in_g(self):
        rng = np.random.default_rng(7)
        starts = np.cumsum(rng.uniform(0, 100, 60))
        log = log_from([(float(t), 1.0) for t in starts])
        rows = session_gap_report(log, [0.0, 30.0, 60.0, 120.0])
        counts = [r.n_sessions for r in rows]
        assert counts == sorted(counts, reverse=True)


@st.composite
def transfer_stream(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    gaps = draw(
        st.lists(
            st.floats(min_value=0, max_value=200, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    durs = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=50, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    starts = np.cumsum(gaps)
    return [(float(s), float(d)) for s, d in zip(starts, durs)]


class TestGroupingProperties:
    @given(transfer_stream(), st.floats(min_value=0, max_value=300))
    @settings(max_examples=60)
    def test_partition_is_complete(self, rows, g):
        s = group_sessions(log_from(rows), g=g)
        assert int(s.n_transfers.sum()) == len(rows)
        assert s.total_size.sum() == pytest.approx(len(rows) * 1e6)

    @given(transfer_stream())
    @settings(max_examples=40)
    def test_larger_g_coarsens(self, rows):
        log = log_from(rows)
        s_small = group_sessions(log, g=10.0)
        s_large = group_sessions(log, g=100.0)
        assert len(s_large) <= len(s_small)

    @given(transfer_stream(), st.floats(min_value=0, max_value=300))
    @settings(max_examples=40)
    def test_sessions_are_time_separated(self, rows, g):
        """Consecutive sessions of one pair are separated by more than g."""
        log = log_from(rows)
        s = group_sessions(log, g=g)
        order = np.argsort(s.start)
        starts = s.start[order]
        ends = starts + s.duration[order]
        for k in range(len(s) - 1):
            assert starts[k + 1] - ends[k] > g


class TestVectorizedMatchesReference:
    """The vectorized group_sessions against the per-pair loop oracle."""

    def _assert_identical(self, a, b):
        for f in ("start", "duration", "total_size", "n_transfers",
                  "local_host", "remote_host", "transfer_session"):
            va, vb = getattr(a, f), getattr(b, f)
            assert va.dtype == vb.dtype, f
            assert np.array_equal(va, vb), f

    def test_single_pair(self):
        from repro.core.sessions import group_sessions_reference

        log = log_from([(0, 5), (10, 5), (100, 5), (101, 2), (500, 1)])
        for g in (0.0, 10.0, 60.0, 1000.0):
            self._assert_identical(
                group_sessions(log, g), group_sessions_reference(log, g)
            )

    def test_many_pairs_interleaved(self):
        from repro.core.sessions import group_sessions_reference

        rng = np.random.default_rng(42)
        n = 3_000
        log = TransferLog(
            {
                "start": np.sort(rng.uniform(0, 5_000, n)),
                "duration": rng.uniform(0, 120, n),
                "size": rng.uniform(1, 1e9, n),
                "local_host": rng.integers(0, 20, n),
                "remote_host": rng.integers(30, 50, n),
            }
        )
        for g in (0.0, 5.0, 60.0):
            self._assert_identical(
                group_sessions(log, g), group_sessions_reference(log, g)
            )

    @given(transfer_stream(), st.floats(min_value=0, max_value=300))
    @settings(max_examples=40)
    def test_property_oracle_agreement(self, rows, g):
        from repro.core.sessions import group_sessions_reference

        log = log_from(rows)
        self._assert_identical(
            group_sessions(log, g), group_sessions_reference(log, g)
        )
