"""Unit tests for the Eq. (2) concurrency analysis."""

import numpy as np
import pytest

from repro.core.concurrency import (
    concurrency_analysis,
    concurrency_profile,
    default_capacity_bps,
    overlap_weighted_load,
    predicted_throughput,
)
from repro.gridftp.records import TransferLog


def log_from(rows):
    """rows: (start, duration, size)."""
    return TransferLog(
        {
            "start": [r[0] for r in rows],
            "duration": [r[1] for r in rows],
            "size": [r[2] for r in rows],
            "remote_host": [1] * len(rows),
        }
    )


class TestConcurrencyProfile:
    def test_lone_transfer(self):
        log = log_from([(0.0, 10.0, 1e9)])
        p = concurrency_profile(log, 0)
        assert p.counts.tolist() == [1]
        assert p.total_duration == pytest.approx(10.0)
        assert p.mean_concurrency() == pytest.approx(1.0)

    def test_step_profile(self):
        # subject [0, 10); competitor [4, 6)
        log = log_from([(0.0, 10.0, 1e9), (4.0, 2.0, 1e8)])
        p = concurrency_profile(log, 0)
        assert p.counts.tolist() == [1, 2, 1]
        assert p.durations.tolist() == [4.0, 2.0, 4.0]

    def test_mean_concurrency_time_weighted(self):
        log = log_from([(0.0, 10.0, 1e9), (0.0, 5.0, 1e8)])
        p = concurrency_profile(log, 0)
        assert p.mean_concurrency() == pytest.approx(1.5)

    def test_partial_overlap_clipped(self):
        log = log_from([(5.0, 10.0, 1e9), (0.0, 7.0, 1e8)])
        p = concurrency_profile(log, 0)
        # competitor active [5, 7) within the subject window
        assert p.counts.tolist() == [2, 1]
        assert p.durations.tolist() == [2.0, 8.0]


class TestOverlapWeightedLoad:
    def test_no_competitors(self):
        log = log_from([(0.0, 10.0, 1e9)])
        load = overlap_weighted_load(log, np.array([0]))
        assert load[0] == 0.0

    def test_full_overlap_equals_competitor_rate(self):
        # competitor at 0.8 Gbps fully covering the subject
        log = log_from([(0.0, 10.0, 1e9), (0.0, 10.0, 1e9)])
        load = overlap_weighted_load(log, np.array([0]))
        assert load[0] == pytest.approx(0.8e9)

    def test_half_overlap_half_rate(self):
        log = log_from([(0.0, 10.0, 1e9), (5.0, 5.0, 0.5e9)])
        # competitor rate 0.8 Gbps, active half the subject's window
        load = overlap_weighted_load(log, np.array([0]))
        assert load[0] == pytest.approx(0.4e9)

    def test_excludes_self(self):
        log = log_from([(0.0, 10.0, 1e9)])
        assert overlap_weighted_load(log, np.array([0]))[0] == 0.0


class TestPrediction:
    def test_leftover_capacity(self):
        log = log_from([(0.0, 10.0, 1e9), (0.0, 10.0, 1e9)])
        pred = predicted_throughput(log, np.array([0]), capacity_bps=2e9)
        assert pred[0] == pytest.approx(2e9 - 0.8e9)

    def test_floor_at_zero(self):
        log = log_from([(0.0, 10.0, 1e9), (0.0, 10.0, 10e9)])
        pred = predicted_throughput(log, np.array([0]), capacity_bps=1e9)
        assert pred[0] == 0.0

    def test_capacity_validation(self):
        log = log_from([(0.0, 1.0, 1.0)])
        with pytest.raises(ValueError):
            predicted_throughput(log, np.array([0]), capacity_bps=0.0)

    def test_default_capacity_percentile(self):
        log = log_from([(i * 100.0, 10.0, r * 1.25e9) for i, r in enumerate(range(1, 11))])
        cap = default_capacity_bps(log)
        tput = log.throughput_bps
        assert cap == pytest.approx(np.percentile(tput, 90))


class TestAnalysis:
    def make_coupled_log(self, seed=0, n=120):
        """Transfers whose actual rate drops with concurrent load."""
        rng = np.random.default_rng(seed)
        starts = np.sort(rng.uniform(0, 5_000.0, n))
        base = rng.uniform(0.8e9, 1.2e9, n)
        durations = 20e9 * 8 / base
        # two-pass coupling, mirroring the workload generator's approach
        for _ in range(2):
            ends = starts + durations
            load = np.zeros(n)
            tput = 20e9 * 8 / durations
            for i in range(n):
                ov = np.clip(np.minimum(ends, ends[i]) - np.maximum(starts, starts[i]), 0, None)
                ov[i] = 0
                load[i] = (tput * ov).sum() / durations[i]
            durations = 20e9 * 8 / (base * np.clip(1 - 0.3 * load / 3e9, 0.3, 1.0))
        return TransferLog(
            {"start": starts, "duration": durations, "size": [20e9] * n,
             "remote_host": [1] * n}
        )

    def test_positive_correlation_when_coupled(self):
        log = self.make_coupled_log()
        a = concurrency_analysis(log, capacity_bps=4e9)
        assert a.correlation > 0.2

    def test_correlation_invariant_to_capacity_when_unfloored(self):
        log = self.make_coupled_log()
        a1 = concurrency_analysis(log, capacity_bps=8e9)
        a2 = concurrency_analysis(log, capacity_bps=16e9)
        assert a1.correlation == pytest.approx(a2.correlation, abs=1e-9)

    def test_subset_selection(self):
        log = self.make_coupled_log()
        subset = np.arange(0, 40)
        a = concurrency_analysis(log, subset=subset, capacity_bps=4e9)
        assert a.actual_bps.shape == (40,)
        assert a.predicted_bps.shape == (40,)

    def test_quartile_correlations_reported(self):
        log = self.make_coupled_log()
        a = concurrency_analysis(log, capacity_bps=4e9)
        assert len(a.quartile_correlations) == 4

    def test_empty_subset_rejected(self):
        log = self.make_coupled_log()
        with pytest.raises(ValueError):
            concurrency_analysis(log, subset=np.array([], dtype=int))
