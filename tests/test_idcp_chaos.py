"""IDCP daisy-chain behaviour under per-domain injected faults.

Multi-domain circuit setup is the paper's scalability substrate
(Section II): a request daisy-chains through each domain's IDC, and any
domain can reject or stall it independently.  These tests wire a
:class:`~repro.faults.injector.FaultInjector` into individual domains of
an :class:`~repro.vc.idcp.IdcpChain` and pin the two contracts that make
the chain usable under faults:

* a rejection anywhere rolls back every already-committed domain — no
  orphaned segment reservations survive a failed end-to-end setup;
* a signalling stall in one domain propagates downstream, pushing the
  stitched circuit's usable start by (at least) the injected delay.
"""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultKind, FaultSpec
from repro.net.topology import esnet_like
from repro.vc.circuits import BatchSignalling
from repro.vc.idcp import DomainSegment, IdcpChain
from repro.vc.oscars import OscarsIDC, ReservationRejected


def _injector(*specs: FaultSpec) -> FaultInjector:
    return FaultInjector(list(specs), seed=0)


def _make_chain(topo, faulty: dict[str, FaultInjector] | None = None) -> IdcpChain:
    """NERSC -> ANL -> ORNL -> BNL over three administrative domains."""
    faulty = faulty or {}
    hops = [("west", "NERSC", "ANL"), ("mid", "ANL", "ORNL"), ("east", "ORNL", "BNL")]
    segments = [
        DomainSegment(
            name,
            OscarsIDC(
                topo,
                setup_delay=BatchSignalling(1.0, 0.0),
                fault_injector=faulty.get(name),
            ),
            ingress,
            egress,
        )
        for name, ingress, egress in hops
    ]
    return IdcpChain(segments)


class TestChainRollbackUnderRejection:
    def test_last_domain_rejection_releases_upstream_reservations(self):
        topo = esnet_like()
        chain = _make_chain(
            topo,
            faulty={
                "east": _injector(
                    FaultSpec(FaultKind.IDC_REJECTION, probability=1.0)
                )
            },
        )
        with pytest.raises(ReservationRejected, match="injected IDC rejection"):
            chain.create_circuit(1e9, request_time=0.0, end_time=10_000.0)
        for seg in chain.segments:
            assert seg.idc.scheduler.active_reservations == []

    def test_middle_domain_signalling_failure_rolls_back_first(self):
        topo = esnet_like()
        chain = _make_chain(
            topo,
            faulty={
                "mid": _injector(
                    FaultSpec(FaultKind.VC_SETUP_FAILURE, probability=1.0)
                )
            },
        )
        with pytest.raises(ReservationRejected, match="signalling failure"):
            chain.create_circuit(1e9, request_time=0.0, end_time=10_000.0)
        for seg in chain.segments:
            assert seg.idc.scheduler.active_reservations == []

    def test_rollback_leaks_no_capacity(self):
        """After a failed setup the full reservable bandwidth is back."""
        topo = esnet_like()
        rejecting = _make_chain(
            topo,
            faulty={
                "east": _injector(
                    FaultSpec(FaultKind.IDC_REJECTION, probability=1.0)
                )
            },
        )
        # a fat request that commits real capacity in west and mid first
        with pytest.raises(ReservationRejected):
            rejecting.create_circuit(8e9, request_time=0.0, end_time=10_000.0)
        # the same domains (fresh chain over the same topology objects
        # would hide a leak, so reuse these IDC instances fault-free)
        for seg in rejecting.segments:
            seg.idc.fault_injector = None
        circuit = rejecting.create_circuit(8e9, request_time=0.0, end_time=10_000.0)
        assert len(circuit.segments) == 3
        rejecting.teardown(circuit)
        for seg in rejecting.segments:
            assert seg.idc.scheduler.active_reservations == []


class TestChainStallPropagation:
    def test_setup_timeout_pushes_usable_start_downstream(self):
        topo = esnet_like()
        clean = _make_chain(topo).create_circuit(
            1e9, request_time=0.0, end_time=10_000.0
        )
        delay = 500.0
        mid_injector = _injector(
            FaultSpec(
                FaultKind.VC_SETUP_TIMEOUT, probability=1.0, extra_delay_s=delay
            )
        )
        stalled_chain = _make_chain(topo, faulty={"mid": mid_injector})
        stalled = stalled_chain.create_circuit(
            1e9, request_time=0.0, end_time=10_000.0
        )
        assert mid_injector.count(FaultKind.VC_SETUP_TIMEOUT) == 1
        # the 1 s batch windows can only add quantization, never absorb
        # the stall: the end-to-end usable start moves by >= delay - 1
        assert stalled.usable_start >= clean.usable_start + delay - 1.0
        # and the stall happened mid-chain: the east segment's window
        # starts after the injected delay too (daisy-chained signalling)
        east_vc = dict(stalled.segments)["east"]
        assert east_vc.start_time >= delay

    def test_stalled_setup_that_eats_the_window_is_rejected_and_rolled_back(self):
        topo = esnet_like()
        chain = _make_chain(
            topo,
            faulty={
                "mid": _injector(
                    FaultSpec(
                        FaultKind.VC_SETUP_TIMEOUT,
                        probability=1.0,
                        extra_delay_s=900.0,
                    )
                )
            },
        )
        # window ends before the stalled signalling completes
        with pytest.raises(ReservationRejected, match="setup delay"):
            chain.create_circuit(1e9, request_time=0.0, end_time=600.0)
        for seg in chain.segments:
            assert seg.idc.scheduler.active_reservations == []
