"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append(5))
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(3.0, lambda: seen.append(3))
        loop.run()
        assert seen == [1, 3, 5]
        assert loop.now == 5.0

    def test_fifo_tie_break(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(1.0, lambda: seen.append("b"))
        loop.run()
        assert seen == ["a", "b"]

    def test_schedule_in_past_rejected(self):
        loop = EventLoop(start_time=10.0)
        with pytest.raises(ValueError):
            loop.schedule(5.0, lambda: None)

    def test_schedule_in_relative(self):
        loop = EventLoop(start_time=10.0)
        seen = []
        loop.schedule_in(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [15.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule_in(-1.0, lambda: None)

    def test_cancel(self):
        loop = EventLoop()
        seen = []
        ev = loop.schedule(1.0, lambda: seen.append("x"))
        ev.cancel()
        loop.run()
        assert seen == []
        assert loop.n_processed == 0

    def test_run_until_leaves_future_events(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(10.0, lambda: seen.append(10))
        loop.run(until=5.0)
        assert seen == [1]
        assert loop.now == 5.0
        loop.run()
        assert seen == [1, 10]

    def test_event_at_until_boundary_runs(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append(5))
        loop.run(until=5.0)
        assert seen == [5]

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule_in(1.0, lambda: seen.append("second"))

        loop.schedule(0.0, first)
        loop.run()
        assert seen == ["first", "second"]

    def test_max_events_guard(self):
        loop = EventLoop()

        def rearm():
            loop.schedule_in(1.0, rearm)

        loop.schedule(0.0, rearm)
        with pytest.raises(RuntimeError):
            loop.run(max_events=50)

    def test_peek_skips_cancelled(self):
        loop = EventLoop()
        ev = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        ev.cancel()
        assert loop.peek_time() == 2.0

    def test_run_until_advances_clock_when_idle(self):
        loop = EventLoop()
        loop.run(until=42.0)
        assert loop.now == 42.0
