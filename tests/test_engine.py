"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append(5))
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(3.0, lambda: seen.append(3))
        loop.run()
        assert seen == [1, 3, 5]
        assert loop.now == 5.0

    def test_fifo_tie_break(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(1.0, lambda: seen.append("b"))
        loop.run()
        assert seen == ["a", "b"]

    def test_schedule_in_past_rejected(self):
        loop = EventLoop(start_time=10.0)
        with pytest.raises(ValueError):
            loop.schedule(5.0, lambda: None)

    def test_schedule_in_relative(self):
        loop = EventLoop(start_time=10.0)
        seen = []
        loop.schedule_in(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [15.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule_in(-1.0, lambda: None)

    def test_cancel(self):
        loop = EventLoop()
        seen = []
        ev = loop.schedule(1.0, lambda: seen.append("x"))
        ev.cancel()
        loop.run()
        assert seen == []
        assert loop.n_processed == 0

    def test_run_until_leaves_future_events(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(10.0, lambda: seen.append(10))
        loop.run(until=5.0)
        assert seen == [1]
        assert loop.now == 5.0
        loop.run()
        assert seen == [1, 10]

    def test_event_at_until_boundary_runs(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append(5))
        loop.run(until=5.0)
        assert seen == [5]

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule_in(1.0, lambda: seen.append("second"))

        loop.schedule(0.0, first)
        loop.run()
        assert seen == ["first", "second"]

    def test_max_events_guard(self):
        loop = EventLoop()

        def rearm():
            loop.schedule_in(1.0, rearm)

        loop.schedule(0.0, rearm)
        with pytest.raises(RuntimeError):
            loop.run(max_events=50)

    def test_peek_skips_cancelled(self):
        loop = EventLoop()
        ev = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        ev.cancel()
        assert loop.peek_time() == 2.0

    def test_run_until_advances_clock_when_idle(self):
        loop = EventLoop()
        loop.run(until=42.0)
        assert loop.now == 42.0


class TestFlushHooks:
    def test_hook_fires_once_per_timestamp_batch(self):
        """Three events at t=1 and one at t=2: two flushes, not four."""
        loop = EventLoop()
        flushes = []
        loop.add_flush_hook(lambda: flushes.append(loop.now))
        for _ in range(3):
            loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        loop.run()
        assert flushes == [1.0, 2.0]

    def test_same_instant_spawned_events_share_the_flush(self):
        """An event scheduling more work at its own timestamp extends the batch."""
        loop = EventLoop()
        flushes = []
        order = []
        loop.add_flush_hook(lambda: flushes.append(loop.now))

        def spawner():
            order.append("spawner")
            loop.schedule(1.0, lambda: order.append("spawned"))

        loop.schedule(1.0, spawner)
        loop.run()
        assert order == ["spawner", "spawned"]
        assert flushes == [1.0]  # one settle for the whole burst

    def test_hooks_fire_in_registration_order(self):
        loop = EventLoop()
        calls = []
        loop.add_flush_hook(lambda: calls.append("a"))
        loop.add_flush_hook(lambda: calls.append("b"))
        loop.schedule(1.0, lambda: None)
        loop.run()
        assert calls == ["a", "b"]

    def test_step_never_flushes(self):
        """Single-stepping callers own their own settle points."""
        loop = EventLoop()
        flushes = []
        loop.add_flush_hook(lambda: flushes.append(loop.now))
        loop.schedule(1.0, lambda: None)
        assert loop.step()
        assert flushes == []

    def test_probe_counts_events_and_flushes(self):
        from repro.sim.probe import SimProbe

        probe = SimProbe()
        loop = EventLoop(probe=probe)
        loop.add_flush_hook(probe.on_flush)
        for t in (1.0, 1.0, 3.0):
            loop.schedule(t, lambda: None)
        loop.run()
        assert probe.n_events == 3
        assert probe.n_flushes == 2
