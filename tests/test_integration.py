"""End-to-end integration tests: generate -> persist -> parse -> analyze."""

import numpy as np

from repro.core.report import format_gap_report, format_suitability_grid
from repro.core.sessions import group_sessions, session_gap_report
from repro.core.vc_suitability import suitability_table
from repro.gridftp.logfmt import (
    read_netlogger_log,
    read_usage_log,
    write_netlogger_log,
    write_usage_log,
)
from repro.sim.scenarios import nersc_ornl_snmp_experiment
from repro.core.snmp_correlation import correlation_tables
from repro.vc.policy import SessionHoldPolicy
from repro.workload.synth import ncar_nics


class TestPipelineRoundtrip:
    def test_generate_persist_analyze(self, tmp_path):
        """The full Table III/IV pipeline through the on-disk format."""
        log = ncar_nics(seed=9, n_transfers=3000)
        path = tmp_path / "ncar.usage"
        write_usage_log(log, path)
        loaded = read_usage_log(path)
        # the text format rounds to microseconds / whole bytes
        assert len(loaded) == len(log)
        assert np.allclose(loaded.start, log.sorted_by_start().start, atol=1e-5)
        assert np.allclose(loaded.size, log.sorted_by_start().size, atol=1.0)

        rows = session_gap_report(loaded, [0.0, 60.0, 120.0])
        assert rows[0].n_sessions > rows[1].n_sessions > 0
        text = format_gap_report("Table III", rows)
        assert "g" in text

        grid = suitability_table(loaded)
        text = format_suitability_grid("Table IV", grid)
        assert "%" in text

    def test_netlogger_pipeline(self, tmp_path):
        log = ncar_nics(seed=9, n_transfers=500)
        path = tmp_path / "gridftp.log"
        write_netlogger_log(log, path)
        loaded = read_netlogger_log(path)
        sessions_orig = group_sessions(log, 60.0)
        sessions_loaded = group_sessions(loaded, 60.0)
        assert len(sessions_orig) == len(sessions_loaded)

    def test_policy_agrees_with_analysis_on_real_workload(self):
        """The online VC hold policy opens exactly one circuit per session
        that the offline analysis identifies, on a realistic workload."""
        log = ncar_nics(seed=4, n_transfers=3000).sorted_by_start()
        sessions = group_sessions(log, 60.0)
        # run the policy per pair, as a deployment would
        total_episodes = 0
        pair_key = log.local_host.astype(np.int64) * 1000 + log.remote_host
        for key in np.unique(pair_key):
            idx = np.flatnonzero(pair_key == key)
            policy = SessionHoldPolicy(60.0)
            for i in idx:
                policy.on_transfer(float(log.start[i]), float(log.duration[i]))
            total_episodes += len(policy.finish())
        assert total_episodes == len(sessions)

    def test_sim_to_analysis(self):
        """Mechanistic experiment output feeds the Eq. 1 analysis directly."""
        exp = nersc_ornl_snmp_experiment(seed=2, n_tests=12, days=3)
        total, other = correlation_tables(exp.test_log, exp.links)
        assert set(total.overall) == set(exp.links)
        assert all(np.isfinite(v) or np.isnan(v) for v in total.overall.values())


class TestOperatorPipeline:
    def test_netflow_to_hntes(self):
        """The operator path end to end: sampled NetFlow records in,
        firewall filters out, next-day traffic steered."""
        from repro.core.alpha_flows import AlphaFlowCriteria
        from repro.net.netflow import aggregate_to_transfers, export_from_transfers
        from repro.vc.hntes import HntesController

        log = ncar_nics(seed=13, n_transfers=4000).sorted_by_start()
        # interleaved split so both "days" sample every host pair's
        # activity (the pairs' calendars barely overlap in this workload)
        idx = np.arange(len(log))
        day0 = log.select(idx[idx % 2 == 0])
        day1 = log.select(idx[idx % 2 == 1])

        ctl = HntesController(
            criteria=AlphaFlowCriteria(min_rate_bps=1e9, min_size_bytes=1e9)
        )
        # the operator never sees the GridFTP log: reconstruct from netflow
        records = export_from_transfers(
            day0, sampling_n=100, rng=np.random.default_rng(2)
        )
        reconstructed = aggregate_to_transfers(records)
        ctl.analyze(reconstructed, cycle=0)
        report = ctl.apply_filters(day1, cycle=1)
        if report.n_alpha > 0:
            assert report.recall > 0.5
        assert "firewall" in ctl.render_config()


class TestReproduceScript:
    def test_one_command_reproduction_runs(self, capsys):
        """The flagship example regenerates every table/figure headline."""
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "reproduce_paper",
            pathlib.Path(__file__).parent.parent / "examples" / "reproduce_paper.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert mod.main([]) == 0
        out = capsys.readouterr().out
        for marker in ("Table IV", "Figures 2-5", "Table XIII", "rho"):
            assert marker in out
