"""Smoke tests for the paper-style text rendering."""

import numpy as np

from repro.core.concurrency import ConcurrencyAnalysis
from repro.core.report import (
    format_box,
    format_category_table,
    format_concurrency,
    format_correlation_table,
    format_gap_report,
    format_series,
    format_suitability_grid,
    format_summary_block,
    format_summary_row,
)
from repro.core.sessions import GapReportRow
from repro.core.snmp_correlation import CorrelationTable
from repro.core.stats import box_stats, six_number_summary
from repro.core.throughput import CategorySummary
from repro.core.vc_suitability import SuitabilityResult


def summary():
    return six_number_summary([1e9, 2e9, 3e9, 4e9])


class TestFormatting:
    def test_summary_row_scaling(self):
        row = format_summary_row("tput", summary(), scale=1e-6)
        assert "tput" in row
        assert "1,000" in row  # 1e9 bps -> 1000 Mbps

    def test_summary_block(self):
        block = format_summary_block("Table V", [("dur", summary(), 1.0)])
        assert block.startswith("Table V")
        assert "Median" in block

    def test_gap_report(self):
        rows = [GapReportRow(60.0, 5, 10, 33.3, 1234, 2)]
        text = format_gap_report("Table III", rows)
        assert "60s" in text and "1,234" in text

    def test_suitability_grid(self):
        grid = {
            (0.0, 60.0): SuitabilityResult(0.0, 60.0, 1e9, 100, 50, 1000, 900),
            (0.0, 0.05): SuitabilityResult(0.0, 0.05, 1e9, 100, 93, 1000, 998),
        }
        text = format_suitability_grid("Table IV", grid)
        assert "50.00%" in text and "90.00%" in text
        assert "setup=60s" in text and "setup=50ms" in text

    def test_category_table(self):
        cats = [
            CategorySummary("mem-mem", summary(), 0.35, box_stats([1e9, 2e9, 3e9]))
        ]
        text = format_category_table("Table VI", cats)
        assert "mem-mem" in text and "35.00%" in text

    def test_correlation_table(self):
        table = CorrelationTable(
            link_names=("rt1", "rt2"),
            per_quartile={q: {"rt1": 0.5, "rt2": 0.6} for q in (1, 2, 3, 4)},
            overall={"rt1": 0.7, "rt2": 0.8},
        )
        text = format_correlation_table("Table XI", table)
        assert "0.700" in text and "rt2" in text

    def test_box(self):
        text = format_box("disk-disk", box_stats([1e9, 2e9, 3e9, 4e9, 50e9]))
        assert "disk-disk" in text and "outliers" in text

    def test_series_downsampling(self):
        x = np.arange(100.0)
        text = format_series("Fig 3", x, {"m8": x * 2}, max_rows=10)
        assert text.count("\n") <= 12

    def test_series_empty(self):
        text = format_series("Fig", np.zeros(0), {"y": np.zeros(0)})
        assert "Fig" in text

    def test_concurrency(self):
        a = ConcurrencyAnalysis(
            capacity_bps=2.19e9,
            actual_bps=np.array([1e9, 2e9]),
            predicted_bps=np.array([1.5e9, 1.8e9]),
            correlation=0.458,
            quartile_correlations=(0.1, 0.2, 0.3, 0.4),
        )
        text = format_concurrency("Fig 8", a)
        assert "0.458" in text and "2.19" in text
