"""Unit and property tests for repro.core.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    BinnedMedians,
    binned_medians,
    box_stats,
    coefficient_of_variation,
    interquartile_range,
    pearson_correlation,
    quartile_labels,
    six_number_summary,
    split_by_quartile,
)

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


class TestSixNumberSummary:
    def test_known_values(self):
        s = six_number_summary([1, 2, 3, 4, 5])
        assert s.minimum == 1 and s.maximum == 5
        assert s.median == 3 and s.mean == 3
        assert s.q1 == 2 and s.q3 == 4
        assert s.n == 5

    def test_iqr(self):
        s = six_number_summary([1, 2, 3, 4, 5])
        assert s.iqr == 2

    def test_single_element(self):
        s = six_number_summary([7.0])
        assert s.minimum == s.maximum == s.median == 7.0
        assert s.std == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            six_number_summary([])

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            six_number_summary([1.0, float("nan")])

    def test_scaled(self):
        s = six_number_summary([10, 20, 30]).scaled(0.1)
        assert s.median == pytest.approx(2.0)
        assert s.n == 3

    def test_as_row_order(self):
        s = six_number_summary([1, 2, 3, 4])
        row = s.as_row()
        assert row == (s.minimum, s.q1, s.median, s.mean, s.q3, s.maximum)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_ordering_invariant(self, xs):
        s = six_number_summary(xs)
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
        # the mean accumulates rounding error; allow a few ulps of slack
        slack = 1e-9 * max(abs(s.minimum), abs(s.maximum), 1.0)
        assert s.minimum - slack <= s.mean <= s.maximum + slack

    @given(st.lists(finite_floats, min_size=2, max_size=50), finite_floats)
    def test_shift_invariance_of_iqr(self, xs, c):
        base = interquartile_range(xs)
        shifted = interquartile_range([x + c for x in xs])
        assert shifted == pytest.approx(base, rel=1e-6, abs=1e-3)


class TestCoefficientOfVariation:
    def test_constant_sample(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        xs = np.array([1.0, 2.0, 3.0])
        assert coefficient_of_variation(xs) == pytest.approx(
            xs.std(ddof=1) / xs.mean()
        )

    def test_single_value_nan(self):
        assert np.isnan(coefficient_of_variation([1.0]))

    def test_zero_mean_nan(self):
        assert np.isnan(coefficient_of_variation([-1.0, 1.0]))

    def test_scale_invariance(self):
        xs = [1.0, 4.0, 9.0]
        assert coefficient_of_variation(xs) == pytest.approx(
            coefficient_of_variation([10 * x for x in xs])
        )


class TestQuartileLabels:
    def test_even_split(self):
        labels = quartile_labels(np.arange(8.0))
        assert np.array_equal(labels, [1, 1, 2, 2, 3, 3, 4, 4])

    def test_rank_based_not_value_based(self):
        # extreme outlier still lands in one quartile, not distorting others
        labels = quartile_labels([1, 2, 3, 1e12])
        assert np.array_equal(labels, [1, 2, 3, 4])

    def test_empty(self):
        assert quartile_labels([]).size == 0

    def test_split_by_quartile_partition(self):
        values = np.random.default_rng(0).normal(size=103)
        parts = split_by_quartile(values)
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(103))
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    @given(st.lists(finite_floats, min_size=4, max_size=100))
    def test_quartiles_ordered_by_value(self, xs):
        parts = split_by_quartile(xs)
        arr = np.asarray(xs)
        # every value in quartile q is <= every value in quartile q+1
        for lo, hi in zip(parts[:-1], parts[1:]):
            if lo.size and hi.size:
                assert arr[lo].max() <= arr[hi].min() + 1e-9


class TestBinnedMedians:
    def test_basic_binning(self):
        x = np.array([0.5, 1.5, 1.7, 2.5])
        y = np.array([10.0, 20.0, 30.0, 40.0])
        bm = binned_medians(x, y, bin_width=1.0, x_min=0.0, x_max=3.0)
        assert np.array_equal(bm.bin_left, [0.0, 1.0, 2.0])
        assert np.array_equal(bm.median, [10.0, 25.0, 40.0])
        assert np.array_equal(bm.count, [1, 2, 1])

    def test_empty_bins_omitted(self):
        bm = binned_medians([0.5, 5.5], [1.0, 2.0], 1.0, 0.0, 10.0)
        assert len(bm) == 2
        assert np.array_equal(bm.bin_left, [0.0, 5.0])

    def test_out_of_range_ignored(self):
        bm = binned_medians([-1.0, 0.5, 99.0], [5, 6, 7], 1.0, 0.0, 1.0)
        assert len(bm) == 1
        assert bm.median[0] == 6

    def test_x_max_boundary_in_last_bin(self):
        bm = binned_medians([2.0], [3.0], 1.0, 0.0, 2.0)
        assert bm.bin_left[0] == 1.0  # last bin is [1, 2]

    def test_where_count_at_least(self):
        bm = BinnedMedians(
            bin_left=np.array([0.0, 1.0]),
            median=np.array([1.0, 2.0]),
            count=np.array([5, 500]),
        )
        filtered = bm.where_count_at_least(300)
        assert len(filtered) == 1
        assert filtered.median[0] == 2.0

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            binned_medians([1.0], [1.0], 0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            binned_medians([1.0, 2.0], [1.0], 1.0)

    def test_empty_input(self):
        bm = binned_medians([], [], 1.0, 0.0, 10.0)
        assert len(bm) == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                finite_floats,
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_counts_sum_to_inrange_samples(self, pairs):
        x = np.array([p[0] for p in pairs])
        y = np.array([p[1] for p in pairs])
        bm = binned_medians(x, y, 7.0, 0.0, 100.0)
        assert bm.count.sum() == len(pairs)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_gives_nan(self):
        assert np.isnan(pearson_correlation([1, 1, 1], [1, 2, 3]))

    def test_short_input_nan(self):
        assert np.isnan(pearson_correlation([1.0], [2.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_matches_numpy(self):
        rng = np.random.default_rng(4)
        x, y = rng.normal(size=50), rng.normal(size=50)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    @given(st.lists(finite_floats, min_size=3, max_size=50))
    @settings(max_examples=50)
    def test_bounded(self, xs):
        ys = list(reversed(xs))
        r = pearson_correlation(xs, ys)
        assert np.isnan(r) or -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestBoxStats:
    def test_no_outliers(self):
        b = box_stats([1, 2, 3, 4, 5])
        assert b.whisker_low == 1 and b.whisker_high == 5
        assert b.outliers == ()

    def test_outlier_detection(self):
        b = box_stats([1, 2, 3, 4, 5, 100])
        assert 100.0 in b.outliers
        assert b.whisker_high <= 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            box_stats([])

    def test_iqr_property(self):
        b = box_stats([1, 2, 3, 4, 5, 6, 7, 8])
        assert b.iqr == pytest.approx(b.q3 - b.q1)

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_whiskers_within_data(self, xs):
        b = box_stats(xs)
        assert min(xs) <= b.whisker_low <= b.whisker_high <= max(xs)
        assert b.n == len(xs)


class TestBinnedMediansVectorized:
    """The vectorized binned_medians against the per-bin loop oracle."""

    def test_matches_reference_on_random_data(self):
        from repro.core.stats import binned_medians_reference

        rng = np.random.default_rng(10)
        x = rng.uniform(0, 100, 5_000)
        y = rng.lognormal(2, 1, 5_000)
        for width in (1.0, 7.5, 33.0):
            a = binned_medians(x, y, bin_width=width)
            b = binned_medians_reference(x, y, bin_width=width)
            assert np.array_equal(a.bin_left, b.bin_left)
            assert np.array_equal(a.median, b.median, equal_nan=True)
            assert np.array_equal(a.count, b.count)

    def test_matches_reference_with_empty_bins(self):
        from repro.core.stats import binned_medians_reference

        x = np.array([0.5, 0.6, 10.5, 10.6, 10.7])
        y = np.array([1.0, 3.0, 2.0, 4.0, 6.0])
        a = binned_medians(x, y, bin_width=1.0)
        b = binned_medians_reference(x, y, bin_width=1.0)
        assert np.array_equal(a.median, b.median, equal_nan=True)
        assert np.array_equal(a.count, b.count)

    def test_nan_y_falls_back_to_reference(self):
        from repro.core.stats import binned_medians_reference

        x = np.array([0.0, 0.5, 1.5])
        y = np.array([1.0, np.nan, 2.0])
        a = binned_medians(x, y, bin_width=1.0)
        b = binned_medians_reference(x, y, bin_width=1.0)
        assert np.array_equal(a.median, b.median, equal_nan=True)

    @given(
        st.lists(finite_floats, min_size=1, max_size=80),
        st.floats(min_value=0.5, max_value=20),
    )
    @settings(max_examples=50)
    def test_property_oracle_agreement(self, xs, width):
        from repro.core.stats import binned_medians_reference

        ys = [x * 2 + 1 for x in reversed(xs)]
        a = binned_medians(xs, ys, bin_width=width)
        b = binned_medians_reference(xs, ys, bin_width=width)
        assert np.array_equal(a.bin_left, b.bin_left)
        assert np.array_equal(a.median, b.median, equal_nan=True)
        assert np.array_equal(a.count, b.count)
