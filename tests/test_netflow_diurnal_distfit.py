"""Unit tests for netflow export, diurnal arrivals, and distribution fits."""

import numpy as np
import pytest

from repro.core.distfit import fit_lognormal, skew_report, tail_index
from repro.core.sessions import group_sessions
from repro.gridftp.records import TransferLog
from repro.net.netflow import (
    aggregate_to_transfers,
    export_from_transfers,
    identify_alpha_from_netflow,
)
from repro.workload.diurnal import DiurnalProfile, hourly_histogram, sample_arrivals
from repro.workload.synth import ncar_nics


def small_log():
    return TransferLog(
        {
            "start": [0.0, 500.0],
            "duration": [100.0, 40.0],
            "size": [20e9, 10e9],
            "streams": [8, 1],
            "local_host": [1, 1],
            "remote_host": [2, 2],
        }
    )


class TestNetflowExport:
    def test_unsampled_export_one_record_per_stream(self):
        records = export_from_transfers(small_log(), sampling_n=1)
        assert len(records) == 9  # 8 + 1 connections
        first = [r for r in records if r.first == 0.0]
        assert len(first) == 8
        assert sum(r.bytes for r in first) == pytest.approx(20e9)

    def test_sampling_unbiased_in_expectation(self):
        log = small_log()
        rng = np.random.default_rng(0)
        totals = []
        for _ in range(60):
            recs = export_from_transfers(log, sampling_n=100, rng=rng)
            totals.append(sum(r.estimated_bytes for r in recs))
        assert np.mean(totals) == pytest.approx(30e9, rel=0.05)

    def test_short_flows_can_vanish(self):
        tiny = TransferLog(
            {"start": [0.0], "duration": [0.1], "size": [3000.0],
             "streams": [1], "local_host": [1], "remote_host": [2]}
        )
        rng = np.random.default_rng(3)
        vanished = 0
        for _ in range(200):
            if not export_from_transfers(tiny, sampling_n=100, rng=rng):
                vanished += 1
        assert vanished > 150  # 2 packets at 1-in-100: usually unseen

    def test_validation(self):
        with pytest.raises(ValueError):
            export_from_transfers(small_log(), sampling_n=0)


class TestNetflowAggregation:
    def test_streams_merge_back_to_movements(self):
        records = export_from_transfers(small_log(), sampling_n=1)
        movements = aggregate_to_transfers(records)
        assert len(movements) == 2
        assert movements.streams[0] == 8
        assert movements.size[0] == pytest.approx(20e9)
        assert movements.size[1] == pytest.approx(10e9)

    def test_alpha_identification_survives_sampling(self):
        # 20 GB in 100 s = 1.6 Gbps: an alpha pair
        records = export_from_transfers(
            small_log(), sampling_n=100, rng=np.random.default_rng(1)
        )
        pairs = identify_alpha_from_netflow(records, min_rate_bps=1e9)
        assert (1, 2) in pairs

    def test_slow_pairs_not_identified(self):
        slow = TransferLog(
            {"start": [0.0], "duration": [1000.0], "size": [10e9],
             "streams": [4], "local_host": [5], "remote_host": [6]}
        )
        records = export_from_transfers(slow, sampling_n=1)
        assert identify_alpha_from_netflow(records, min_rate_bps=1e9) == set()

    def test_roundtrip_on_realistic_log(self):
        log = ncar_nics(seed=6, n_transfers=2000)
        records = export_from_transfers(log, sampling_n=1)
        movements = aggregate_to_transfers(records, gap_s=0.5)
        # overlapping concurrent transfers of one session merge: fewer or
        # equal movements, but byte totals conserve
        assert len(movements) <= len(log)
        assert movements.size.sum() == pytest.approx(log.size.sum(), rel=1e-6)


class TestDiurnal:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=(1.0,) * 23)
        with pytest.raises(ValueError):
            DiurnalProfile(hourly=(0.0,) * 24)

    def test_flat_profile_uniform_rate(self):
        profile = DiurnalProfile()
        t = np.linspace(0, 7 * 86_400, 1000)
        assert np.allclose(profile.intensity_at(t), 1.0)

    def test_business_hours_shape(self):
        profile = DiurnalProfile.business_hours()
        noon = profile.intensity_at(np.array([12.5 * 3600]))[0]
        night = profile.intensity_at(np.array([4.5 * 3600]))[0]
        assert noon > 2 * night

    def test_weekend_factor(self):
        profile = DiurnalProfile(weekend_factor=0.5)
        # epoch day 2 is a Saturday (Jan 3 1970)
        saturday_noon = 2 * 86_400 + 12 * 3600
        thursday_noon = 12 * 3600
        assert profile.intensity_at(np.array([saturday_noon]))[0] == pytest.approx(
            0.5 * profile.intensity_at(np.array([thursday_noon]))[0]
        )

    def test_sampled_arrivals_follow_profile(self):
        profile = DiurnalProfile.business_hours()
        arrivals = sample_arrivals(
            profile, 0.05, 0.0, 14 * 86_400.0, rng=np.random.default_rng(2)
        )
        hist = hourly_histogram(arrivals)
        assert hist[10] > 2 * hist[4]  # mid-morning >> pre-dawn

    def test_mean_rate_preserved(self):
        profile = DiurnalProfile.business_hours()
        span = 28 * 86_400.0
        arrivals = sample_arrivals(
            profile, 0.02, 0.0, span, rng=np.random.default_rng(4)
        )
        # weekend factor < 1 pulls the weekly mean below the base slightly
        assert 0.6 * 0.02 * span < arrivals.size < 1.1 * 0.02 * span

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            sample_arrivals(DiurnalProfile(), 1.0, 10.0, 10.0)
        with pytest.raises(ValueError):
            sample_arrivals(DiurnalProfile(), 0.0, 0.0, 10.0)


class TestDistFit:
    def test_fit_recovers_parameters(self):
        rng = np.random.default_rng(5)
        sample = rng.lognormal(np.log(1e9), 2.0, 5000)
        fit = fit_lognormal(sample)
        assert fit.median == pytest.approx(1e9, rel=0.15)
        assert fit.sigma == pytest.approx(2.0, rel=0.1)
        assert fit.ks_pvalue > 0.01  # the truth should not be rejected

    def test_fit_rejects_wrong_family(self):
        rng = np.random.default_rng(6)
        sample = rng.uniform(1.0, 2.0, 5000)
        fit = fit_lognormal(sample)
        assert fit.ks_pvalue < 0.01

    def test_tail_index_pareto(self):
        rng = np.random.default_rng(7)
        alpha = 1.5
        sample = (1.0 / rng.random(20_000)) ** (1.0 / alpha)
        assert tail_index(sample) == pytest.approx(alpha, rel=0.15)

    def test_skew_report_on_sessions(self):
        """The generator's session sizes are lognormal-ish and right-skewed."""
        log = ncar_nics(seed=8, n_transfers=8000)
        sessions = group_sessions(log, 60.0)
        report = skew_report(sessions.total_size)
        assert report.is_skewed_right
        assert report.fit.sigma > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_lognormal(np.ones(3))
        with pytest.raises(ValueError):
            tail_index(np.ones(100), tail_fraction=0.9)
        with pytest.raises(ValueError):
            skew_report(np.array([1.0]))
