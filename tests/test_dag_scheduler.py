"""The ready-set DAG scheduler: interleavings, cancellation, kill/resume.

The scheduler's core contract is that *scheduling order is not
observable in results*: any legal interleaving of runnable stages'
cells — forced here through ``Runner.schedule_hook`` — must produce
byte-identical artifacts, cache keys, and fingerprints to the serial
``jobs=1`` stage loop.  Wall-clock seconds are the one sanctioned
difference, so comparisons normalize ``wall_s`` away.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.experiments import (
    ExperimentSpec,
    PipelineSpec,
    ResultCache,
    Runner,
    StageSpec,
    canonical_json,
    register_scenario,
)
from repro.experiments.runner import plan_dag_summary

# -- cheap scenarios ---------------------------------------------------------


@register_scenario("dag-src")
def _dag_src(params, seed):
    return {"value": params["x"] * 100 + seed}


@register_scenario("dag-mid", needs_artifacts=True)
def _dag_mid(params, seed, artifacts):
    total = sum(
        a.result["value"] for aset in artifacts.values() for a in aset
    )
    return {"total": total + params["y"], "seed": seed}


@register_scenario("dag-join", needs_artifacts=True)
def _dag_join(params, seed, artifacts):
    return {
        name: sum(a.result["total"] for a in aset)
        for name, aset in sorted(artifacts.items())
    }


def _diamond(xs=(1, 2, 3), ys=(10, 20)):
    """workload -> {chaos, direct} -> pareto, all artifact-consuming."""
    return PipelineSpec(
        name="dia",
        seed=7,
        stages=(
            StageSpec(
                name="workload",
                spec=ExperimentSpec(
                    name="dia/workload", scenario="dag-src",
                    axes={"x": tuple(xs)}, seed=7,
                ),
            ),
            StageSpec(
                name="chaos",
                spec=ExperimentSpec(
                    name="dia/chaos", scenario="dag-mid",
                    axes={"y": tuple(ys)}, seed=7,
                ),
                needs=("workload",),
            ),
            StageSpec(
                name="direct",
                spec=ExperimentSpec(
                    name="dia/direct", scenario="dag-mid",
                    axes={"y": tuple(y * 3 for y in ys)}, seed=7,
                ),
                needs=("workload",),
            ),
            StageSpec(
                name="pareto",
                spec=ExperimentSpec(name="dia/pareto", scenario="dag-join"),
                needs=("chaos", "direct"),
            ),
        ),
    )


def _normalized_cache(root) -> dict[str, str]:
    """Cache payloads keyed by artifact file name, wall_s scrubbed."""
    out = {}
    for path in ResultCache(root).iter_artifacts():
        payload = json.loads(path.read_text())
        payload.pop("wall_s", None)
        out[path.name] = canonical_json(payload)
    return out


def _fingerprint_map(res) -> dict[str, str | None]:
    return {name: c.fingerprint for name, c in res.stages.items()}


def _key_map(res) -> dict[str, tuple]:
    return {
        name: tuple(cell.key for cell in c.cells)
        for name, c in res.stages.items()
    }


# -- interleaving property ---------------------------------------------------


class TestInterleavingInvariance:
    def _serial_reference(self, tmp_path):
        ck = tmp_path / "ref-ck"
        res = Runner(
            cache=ResultCache(tmp_path / "ref"), checkpoint_dir=ck
        ).run_pipeline(_diamond())
        assert res.n_failed == 0
        assert list(ck.glob("*.jsonl")) == []  # journals consumed
        return res

    @pytest.mark.parametrize("variant", ["reversed", "shuffled", "alternate"])
    def test_any_interleaving_matches_serial(self, tmp_path, variant):
        reference = self._serial_reference(tmp_path)

        def hook(order):
            if variant == "reversed":
                return list(reversed(order))
            if variant == "shuffled":
                rng = random.Random(1234 + len(order))
                order = list(order)
                rng.shuffle(order)
                return order
            # alternate: round-robin across stages, so one batch is
            # guaranteed to mix cells from sibling stages
            by_stage: dict[str, list] = {}
            for pair in order:
                by_stage.setdefault(pair[0], []).append(pair)
            out = []
            while any(by_stage.values()):
                for stage in list(by_stage):
                    if by_stage[stage]:
                        out.append(by_stage[stage].pop(0))
            return out

        ck = tmp_path / f"{variant}-ck"
        runner = Runner(
            jobs=2,
            cache=ResultCache(tmp_path / variant),
            checkpoint_dir=ck,
        )
        runner.schedule_hook = hook
        res = runner.run_pipeline(_diamond())
        assert res.n_failed == 0
        assert list(ck.glob("*.jsonl")) == []

        # identical keys, fingerprints, results, and cache bytes
        assert _key_map(res) == _key_map(reference)
        assert _fingerprint_map(res) == _fingerprint_map(reference)
        for name in res.stages:
            assert canonical_json(
                res.stage(name).results()
            ) == canonical_json(reference.stage(name).results())
        assert _normalized_cache(tmp_path / variant) == _normalized_cache(
            tmp_path / "ref"
        )
        # result insertion order is plan order, not execution order
        assert list(res.stages) == list(reference.stages)

    def test_sibling_stages_share_batches(self, tmp_path):
        # with small chunks the scheduler must cut at least one batch
        # containing cells from both middle stages of the diamond
        seen_candidates: list[set[str]] = []

        def hook(order):
            seen_candidates.append({stage for stage, _ in order})
            return order

        runner = Runner(
            jobs=2, chunk_size=1, cache=ResultCache(tmp_path)
        )
        runner.schedule_hook = hook
        res = runner.run_pipeline(_diamond())
        assert res.n_failed == 0
        assert any(
            {"chaos", "direct"} <= stages for stages in seen_candidates
        ), seen_candidates

    def test_plan_summary_of_the_diamond(self, tmp_path):
        runner = Runner(cache=ResultCache(tmp_path))
        summary = plan_dag_summary(runner.dry_run(_diamond()), jobs=4)
        assert summary.depth == 3
        assert summary.width == 2
        assert summary.serial_cells == 8
        assert summary.critical_path[0] == "workload"
        assert summary.critical_path[-1] == "pareto"
        assert summary.parallel_cells >= summary.critical_cells
        # warm plan: everything cached, nothing on the critical path
        runner.run_pipeline(_diamond())
        warm = plan_dag_summary(runner.dry_run(_diamond()), jobs=4)
        assert warm.serial_cells == 0 and warm.critical_cells == 0


# -- cancellation under the DAG scheduler ------------------------------------


@register_scenario("dag-bad")
def _dag_bad(params, seed):
    raise ValueError("broken by design")


class TestDagCancellation:
    def _broken_diamond(self):
        base = _diamond()
        stages = list(base.stages)
        stages[1] = StageSpec(
            name="chaos",
            spec=ExperimentSpec(
                name="dia/chaos", scenario="dag-bad", axes={"y": (10, 20)},
                seed=7,
            ),
            needs=("workload",),
        )
        return PipelineSpec(name="dia", seed=7, stages=tuple(stages))

    def test_quarantined_branch_cancels_join_but_not_sibling(self, tmp_path):
        res = Runner(
            jobs=2, cache=ResultCache(tmp_path)
        ).run_pipeline(self._broken_diamond())
        assert res.stage("workload").n_failed == 0
        assert res.stage("chaos").n_failed == 2
        # the sibling branch is unaffected and ran to completion
        assert res.stage("direct").n_failed == 0
        assert res.stage("direct").n_executed == 2
        # the join settles cancelled, promptly, without raising
        join = res.stage("pareto")
        assert join.n_executed == 0
        assert all(
            c.error == (
                "cancelled: needed stage 'chaos' settled with "
                "2 quarantined cell(s)"
            )
            for c in join.cells
        )

    def test_dag_cancellation_matches_serial(self, tmp_path):
        pipe = self._broken_diamond()
        serial = Runner(cache=ResultCache(tmp_path / "s")).run_pipeline(pipe)
        dag = Runner(
            jobs=2, cache=ResultCache(tmp_path / "d")
        ).run_pipeline(pipe)
        for name in serial.stages:
            s, d = serial.stage(name), dag.stage(name)
            assert [c.error for c in s.cells] == [c.error for c in d.cells]
            assert [c.key for c in s.cells] == [c.key for c in d.cells]


# -- SIGTERM mid-diamond: a real killed subprocess ---------------------------

_DIAMOND_CHILD = textwrap.dedent(
    """
    import sys, time
    from repro.experiments import (
        ExperimentSpec, PipelineSpec, ResultCache, Runner, StageSpec,
        CampaignInterrupted, register_scenario,
    )

    @register_scenario("dag-src")
    def _src(params, seed):
        return {"value": params["x"] * 100 + seed}

    @register_scenario("dag-mid", needs_artifacts=True)
    def _mid(params, seed, artifacts):
        print("MID", params["y"], flush=True)
        # long enough that the parent's post-MID SIGTERM lands inside
        # this batch even on a slow, loaded box
        time.sleep(2.0)
        total = sum(
            a.result["value"] for aset in artifacts.values() for a in aset
        )
        return {"total": total + params["y"], "seed": seed}

    @register_scenario("dag-join", needs_artifacts=True)
    def _join(params, seed, artifacts):
        return {
            name: sum(a.result["total"] for a in aset)
            for name, aset in sorted(artifacts.items())
        }

    pipeline = PipelineSpec(
        name="dia",
        seed=7,
        stages=(
            StageSpec(
                name="workload",
                spec=ExperimentSpec(
                    name="dia/workload", scenario="dag-src",
                    axes={"x": (1, 2, 3)}, seed=7),
            ),
            StageSpec(
                name="chaos",
                spec=ExperimentSpec(
                    name="dia/chaos", scenario="dag-mid",
                    axes={"y": (10, 20)}, seed=7),
                needs=("workload",),
            ),
            StageSpec(
                name="direct",
                spec=ExperimentSpec(
                    name="dia/direct", scenario="dag-mid",
                    axes={"y": (30, 60)}, seed=7),
                needs=("workload",),
            ),
            StageSpec(
                name="pareto",
                spec=ExperimentSpec(name="dia/pareto", scenario="dag-join"),
                needs=("chaos", "direct"),
            ),
        ),
    )
    # chunk_size=1 keeps each batch at two cells: the pool's eager call
    # queue makes submitted futures uncancellable, so a SIGTERM drains
    # the whole in-flight batch — small batches pin the drain inside
    # the diamond's waist
    runner = Runner(
        jobs=2, chunk_size=1, cache=ResultCache(sys.argv[1]),
        checkpoint_dir=sys.argv[2],
    )
    print("READY", flush=True)
    try:
        runner.run_pipeline(pipeline)
    except CampaignInterrupted:
        sys.exit(75)
    print("DONE", flush=True)
    """
)


class TestSigtermMidDiamond:
    def test_kill_mid_middle_stages_then_resume(self, tmp_path):
        reference = Runner(
            cache=ResultCache(tmp_path / "ref")
        ).run_pipeline(_diamond(ys=(10, 20)))

        script = tmp_path / "child.py"
        script.write_text(_DIAMOND_CHILD)
        cache_dir, ck_dir = tmp_path / "cache", tmp_path / "ck"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        child = subprocess.Popen(
            [sys.executable, str(script), str(cache_dir), str(ck_dir)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert child.stdout.readline().strip() == "READY"
            # wait until a middle-stage cell is actually executing, then
            # land the SIGTERM squarely inside the diamond's waist
            line = child.stdout.readline().strip()
            assert line.startswith("MID"), line
            time.sleep(0.2)
        finally:
            child.send_signal(signal.SIGTERM)
            rc = child.wait(timeout=30)
            child.stdout.close()
        assert rc == 75  # drained, journaled, resumable

        cache = ResultCache(cache_dir)
        settled_mid = sum(
            1
            for p in cache.iter_artifacts()
            if '"scenario": "dag-mid"' in p.read_text()
        )
        assert 1 <= settled_mid < 4  # the signal landed mid-diamond
        settled_join = sum(
            1
            for p in cache.iter_artifacts()
            if '"scenario": "dag-join"' in p.read_text()
        )
        assert settled_join == 0  # the join never started

        resumed = Runner(
            jobs=2, cache=cache, checkpoint_dir=ck_dir
        ).run_pipeline(_diamond(ys=(10, 20)))
        assert resumed.n_failed == 0
        # the workload comes back from cache; the middles execute only
        # what the kill left unfinished
        assert resumed.stage("workload").n_executed == 0
        mids = resumed.stage("chaos"), resumed.stage("direct")
        assert sum(m.n_cached for m in mids) == settled_mid
        assert sum(m.n_executed for m in mids) == 4 - settled_mid
        assert canonical_json(
            resumed.stage("pareto").results()
        ) == canonical_json(reference.stage("pareto").results())
        # journals consumed on the successful resume
        assert list(ck_dir.glob("*.jsonl")) == []
