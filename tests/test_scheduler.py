"""Unit tests for the time-bandwidth admission scheduler."""

import pytest

from repro.net.topology import esnet_like
from repro.vc.scheduler import AdmissionError, BandwidthScheduler


@pytest.fixture
def topo():
    return esnet_like()


@pytest.fixture
def sched(topo):
    return BandwidthScheduler(topo, reservable_fraction=1.0)


def path(topo):
    return topo.path("NERSC", "ORNL")


class TestReserve:
    def test_simple_admission(self, sched, topo):
        res = sched.reserve(path(topo), 1e9, 0.0, 100.0)
        assert res.rate_bps == 1e9
        assert sched.active_reservations == [res]

    def test_capacity_exceeded_rejected(self, sched, topo):
        with pytest.raises(AdmissionError):
            sched.reserve(path(topo), 11e9, 0.0, 100.0)

    def test_overlapping_reservations_stack(self, sched, topo):
        sched.reserve(path(topo), 6e9, 0.0, 100.0)
        with pytest.raises(AdmissionError):
            sched.reserve(path(topo), 6e9, 50.0, 150.0)

    def test_disjoint_windows_both_admitted(self, sched, topo):
        sched.reserve(path(topo), 8e9, 0.0, 100.0)
        res = sched.reserve(path(topo), 8e9, 100.0, 200.0)  # starts at prior end
        assert res.rate_bps == 8e9

    def test_atomicity_on_rejection(self, sched, topo):
        p = path(topo)
        sched.reserve(p, 9e9, 0.0, 100.0)
        with pytest.raises(AdmissionError):
            sched.reserve(p, 2e9, 0.0, 100.0)
        # the failed attempt must not have consumed anything
        assert sched.available_rate(p, 0.0, 100.0) == pytest.approx(1e9)

    def test_zero_rate_rejected(self, sched, topo):
        with pytest.raises(ValueError):
            sched.reserve(path(topo), 0.0, 0.0, 1.0)

    def test_empty_window_rejected(self, sched, topo):
        with pytest.raises(ValueError):
            sched.reserve(path(topo), 1e9, 5.0, 5.0)

    def test_reservable_fraction(self, topo):
        sched = BandwidthScheduler(topo, reservable_fraction=0.5)
        with pytest.raises(AdmissionError):
            sched.reserve(path(topo), 6e9, 0.0, 10.0)
        sched.reserve(path(topo), 5e9, 0.0, 10.0)

    def test_bad_fraction(self, topo):
        with pytest.raises(ValueError):
            BandwidthScheduler(topo, reservable_fraction=0.0)


class TestAvailability:
    def test_full_capacity_when_empty(self, sched, topo):
        assert sched.available_rate(path(topo), 0, 10) == pytest.approx(10e9)

    def test_reduced_by_reservation(self, sched, topo):
        sched.reserve(path(topo), 3e9, 0.0, 100.0)
        assert sched.available_rate(path(topo), 50.0, 60.0) == pytest.approx(7e9)

    def test_peak_not_average(self, sched, topo):
        """Two half-window reservations overlapping the query both count at peak."""
        p = path(topo)
        sched.reserve(p, 4e9, 0.0, 50.0)
        sched.reserve(p, 4e9, 25.0, 100.0)
        # instant 25-50 carries 8 Gbps committed
        assert sched.available_rate(p, 0.0, 100.0) == pytest.approx(2e9)

    def test_bad_window(self, sched, topo):
        with pytest.raises(ValueError):
            sched.available_rate(path(topo), 10.0, 10.0)

    def test_committed_now(self, sched, topo):
        p = path(topo)
        sched.reserve(p, 2e9, 0.0, 100.0)
        committed = sched.committed_now(50.0)
        for key in topo.path_links(p):
            assert committed[key] == pytest.approx(2e9)
        committed_after = sched.committed_now(150.0)
        for key in topo.path_links(p):
            assert committed_after[key] == 0.0


class TestReleaseAndExtend:
    def test_release_returns_capacity(self, sched, topo):
        p = path(topo)
        res = sched.reserve(p, 8e9, 0.0, 100.0)
        sched.release(res.reservation_id)
        assert sched.available_rate(p, 0.0, 100.0) == pytest.approx(10e9)

    def test_release_unknown(self, sched):
        with pytest.raises(KeyError):
            sched.release(42)

    def test_early_release_keeps_consumed_head(self, sched, topo):
        p = path(topo)
        res = sched.reserve(p, 8e9, 0.0, 100.0)
        sched.release(res.reservation_id, at=40.0)
        # head [0, 40) still committed; tail returned
        assert sched.available_rate(p, 0.0, 40.0) == pytest.approx(2e9)
        assert sched.available_rate(p, 40.0, 100.0) == pytest.approx(10e9)

    def test_extend_tail_admission(self, sched, topo):
        p = path(topo)
        res = sched.reserve(p, 8e9, 0.0, 100.0)
        new = sched.extend(res.reservation_id, 200.0)
        assert new.end == 200.0
        assert sched.available_rate(p, 150.0, 160.0) == pytest.approx(2e9)

    def test_extend_blocked_by_later_reservation(self, sched, topo):
        p = path(topo)
        res = sched.reserve(p, 8e9, 0.0, 100.0)
        sched.reserve(p, 8e9, 100.0, 200.0)
        with pytest.raises(AdmissionError):
            sched.extend(res.reservation_id, 150.0)

    def test_extend_noop_when_shorter(self, sched, topo):
        res = sched.reserve(path(topo), 1e9, 0.0, 100.0)
        same = sched.extend(res.reservation_id, 50.0)
        assert same.end == 100.0

    def test_extend_unknown(self, sched):
        with pytest.raises(KeyError):
            sched.extend(7, 100.0)


class TestFindEarliestSlot:
    def test_empty_calendar_immediate(self, sched, topo):
        t = sched.find_earliest_slot(path(topo), 5e9, 600.0, not_before=100.0)
        assert t == 100.0

    def test_waits_for_release(self, sched, topo):
        p = path(topo)
        sched.reserve(p, 8e9, 0.0, 1000.0)
        t = sched.find_earliest_slot(p, 5e9, 600.0, not_before=0.0)
        assert t == 1000.0

    def test_fits_in_gap_between_reservations(self, sched, topo):
        p = path(topo)
        sched.reserve(p, 8e9, 0.0, 1000.0)
        sched.reserve(p, 8e9, 2000.0, 3000.0)
        t = sched.find_earliest_slot(p, 5e9, 900.0, not_before=0.0)
        assert t == 1000.0  # the gap [1000, 2000) fits 900 s

    def test_gap_too_short_skipped(self, sched, topo):
        p = path(topo)
        sched.reserve(p, 8e9, 0.0, 1000.0)
        sched.reserve(p, 8e9, 1500.0, 3000.0)
        t = sched.find_earliest_slot(p, 5e9, 900.0, not_before=0.0)
        assert t == 3000.0  # 500 s gap cannot host 900 s

    def test_small_rate_coexists(self, sched, topo):
        p = path(topo)
        sched.reserve(p, 8e9, 0.0, 1000.0)
        t = sched.find_earliest_slot(p, 1e9, 600.0, not_before=0.0)
        assert t == 0.0  # 8 + 1 <= 10: no need to wait

    def test_no_slot_within_horizon(self, sched, topo):
        p = path(topo)
        sched.reserve(p, 8e9, 0.0, 10 * 86_400.0)
        t = sched.find_earliest_slot(
            p, 5e9, 600.0, not_before=0.0, horizon_s=86_400.0
        )
        assert t is None

    def test_slot_is_actually_admissible(self, sched, topo):
        """Whatever the search returns must pass real admission."""
        p = path(topo)
        sched.reserve(p, 6e9, 100.0, 900.0)
        sched.reserve(p, 6e9, 1200.0, 2000.0)
        t = sched.find_earliest_slot(p, 5e9, 250.0, not_before=0.0)
        assert t is not None
        sched.reserve(p, 5e9, t, t + 250.0)  # must not raise

    def test_validation(self, sched, topo):
        with pytest.raises(ValueError):
            sched.find_earliest_slot(path(topo), 0.0, 1.0)
