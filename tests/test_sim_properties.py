"""Property tests for the fluid simulator (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridftp.client import TransferJob
from repro.gridftp.server import DtnCluster, DtnSpec, EndpointKind
from repro.net.topology import esnet_like
from repro.sim.experiment import FluidSimulator

_TOPO = esnet_like()
_PAIRS = [("NERSC", "ORNL"), ("SLAC", "NICS"), ("NCAR", "ANL"), ("LANL", "BNL")]


def make_dtns():
    dtns = DtnCluster()
    for site in _TOPO.sites:
        dtns.add(DtnSpec(site, nic_bps=6e9, disk_read_bps=5e9, disk_write_bps=4e9))
    return dtns


@st.composite
def job_set(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    jobs = []
    for _ in range(n):
        pair = _PAIRS[draw(st.integers(min_value=0, max_value=len(_PAIRS) - 1))]
        jobs.append(
            TransferJob(
                submit_time=draw(st.floats(min_value=0.0, max_value=300.0)),
                src=pair[0],
                dst=pair[1],
                size_bytes=draw(st.floats(min_value=1e6, max_value=20e9)),
                streams=draw(st.integers(min_value=1, max_value=8)),
                src_endpoint=draw(st.sampled_from(list(EndpointKind))),
                dst_endpoint=draw(st.sampled_from(list(EndpointKind))),
            )
        )
    jobs.sort(key=lambda j: j.submit_time)
    return jobs


class TestFluidSimProperties:
    @given(job_set())
    @settings(max_examples=30, deadline=None)
    def test_every_job_completes_and_bytes_conserve(self, jobs):
        sim = FluidSimulator(_TOPO, make_dtns())
        for j in jobs:
            sim.submit(j)
        result = sim.run()
        assert len(result.log) == len(jobs)
        total_logged = result.log.size.sum()
        assert total_logged == pytest.approx(sum(j.size_bytes for j in jobs))

    @given(job_set())
    @settings(max_examples=30, deadline=None)
    def test_durations_at_least_unconstrained_minimum(self, jobs):
        """No transfer finishes faster than its demand cap allows."""
        dtns = make_dtns()
        sim = FluidSimulator(_TOPO, dtns)
        for j in jobs:
            sim.submit(j)
        log = sim.run().log
        for i in range(len(log)):
            rec = log.record(i)
            # the loosest possible bound: the NIC budget
            assert rec.duration >= rec.size * 8.0 / 6e9 * (1 - 1e-6)

    @given(job_set())
    @settings(max_examples=20, deadline=None)
    def test_snmp_source_access_link_conservation(self, jobs):
        sim = FluidSimulator(_TOPO, make_dtns())
        for j in jobs:
            sim.submit(j)
        result = sim.run()
        by_src: dict[str, float] = {}
        for j in jobs:
            by_src[j.src] = by_src.get(j.src, 0.0) + j.size_bytes
        for site, expected in by_src.items():
            # the site's access link is the first hop of any of its paths
            path = _TOPO.path(site, next(d for s, d in _PAIRS if s == site))
            key = _TOPO.path_links(path)[0]
            got = result.snmp.counter(key).total_bytes()
            assert got == pytest.approx(expected, rel=1e-6)
