"""Unit and property tests for workload distribution primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distributions import (
    LogNormal,
    TruncatedLogNormal,
    lognormal_sigma_for_tail,
    split_total,
    weighted_choice,
)


class TestLogNormal:
    def test_median_parameterization(self):
        d = LogNormal(median=100.0, sigma=1.0)
        rng = np.random.default_rng(0)
        samples = d.sample(rng, 50_000)
        assert np.median(samples) == pytest.approx(100.0, rel=0.05)

    def test_mean_formula(self):
        d = LogNormal(median=10.0, sigma=0.5)
        assert d.mean == pytest.approx(10.0 * np.exp(0.125))

    def test_quantile_inverts_tail(self):
        d = LogNormal(median=1.0, sigma=2.0)
        x = d.quantile(0.9)
        assert d.tail_probability(x) == pytest.approx(0.1, rel=1e-6)

    def test_tail_probability_at_median(self):
        assert LogNormal(5.0, 1.0).tail_probability(5.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormal(0.0, 1.0)
        with pytest.raises(ValueError):
            LogNormal(1.0, -1.0)

    @given(
        st.floats(min_value=0.01, max_value=1e6),
        st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=40)
    def test_samples_positive(self, median, sigma):
        d = LogNormal(median, sigma)
        samples = d.sample(np.random.default_rng(1), 100)
        assert np.all(samples > 0)


class TestTruncatedLogNormal:
    def test_support_respected(self):
        d = TruncatedLogNormal(LogNormal(100.0, 2.0), lo=10.0, hi=1000.0)
        samples = d.sample(np.random.default_rng(2), 5000)
        assert samples.min() >= 10.0
        assert samples.max() <= 1000.0

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            TruncatedLogNormal(LogNormal(1.0, 1.0), lo=5.0, hi=5.0)

    def test_degenerate_band_clips(self):
        # band far in the tail: resampling gives up and clips
        d = TruncatedLogNormal(LogNormal(1.0, 0.1), lo=1e6, hi=2e6)
        samples = d.sample(np.random.default_rng(3), 10)
        assert np.all((samples >= 1e6) & (samples <= 2e6))


class TestSigmaForTail:
    def test_calibration_roundtrip(self):
        sigma = lognormal_sigma_for_tail(median=1.1e9, x=30e9, tail_prob=0.125)
        d = LogNormal(1.1e9, sigma)
        assert d.tail_probability(30e9) == pytest.approx(0.125, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            lognormal_sigma_for_tail(10.0, 5.0, 0.1)
        with pytest.raises(ValueError):
            lognormal_sigma_for_tail(1.0, 2.0, 0.6)


class TestWeightedChoice:
    def test_distribution(self):
        rng = np.random.default_rng(4)
        out = weighted_choice(rng, np.array([1, 2]), np.array([0.9, 0.1]), 10_000)
        assert 0.85 < (out == 1).mean() < 0.95

    def test_bad_probs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            weighted_choice(rng, np.array([1, 2]), np.array([0.5, 0.4]), 10)


class TestSplitTotal:
    def test_sum_exact(self):
        rng = np.random.default_rng(5)
        parts = split_total(rng, 1e9, 17)
        assert parts.sum() == pytest.approx(1e9)
        assert parts.shape == (17,)
        assert np.all(parts > 0)

    def test_single_part(self):
        rng = np.random.default_rng(6)
        assert split_total(rng, 42.0, 1)[0] == pytest.approx(42.0)

    def test_validation(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            split_total(rng, 1.0, 0)
        with pytest.raises(ValueError):
            split_total(rng, 0.0, 3)

    @given(
        st.floats(min_value=1.0, max_value=1e12),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=40)
    def test_conservation_property(self, total, n):
        rng = np.random.default_rng(8)
        parts = split_total(rng, total, n)
        assert parts.sum() == pytest.approx(total, rel=1e-9)
