"""Unit tests for repro.gridftp.records."""

import numpy as np
import pytest

from repro.gridftp.records import (
    ANONYMIZED_HOST,
    TransferLog,
    TransferRecord,
    TransferType,
)


def make_log(n=5, seed=0):
    rng = np.random.default_rng(seed)
    return TransferLog(
        {
            "start": np.sort(rng.uniform(0, 1000, n)),
            "duration": rng.uniform(1, 50, n),
            "size": rng.uniform(1e6, 1e9, n),
            "streams": rng.integers(1, 9, n),
            "stripes": rng.integers(1, 4, n),
            "local_host": np.zeros(n, dtype=np.int32),
            "remote_host": np.full(n, 7, dtype=np.int32),
        }
    )


class TestTransferType:
    def test_parse_stor_variants(self):
        for text in ("STOR", "stor", "store", "S"):
            assert TransferType.parse(text) is TransferType.STOR

    def test_parse_retr_variants(self):
        for text in ("RETR", "retr", "retrieve", "r"):
            assert TransferType.parse(text) is TransferType.RETR

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            TransferType.parse("PUT")


class TestTransferRecord:
    def test_end_and_throughput(self):
        rec = TransferRecord(start=10.0, duration=4.0, size=1e9)
        assert rec.end == 14.0
        assert rec.throughput_bps == pytest.approx(2e9)

    def test_zero_duration_throughput_is_zero(self):
        rec = TransferRecord(start=0.0, duration=0.0, size=100.0)
        assert rec.throughput_bps == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TransferRecord(start=0, duration=1, size=-1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TransferRecord(start=0, duration=-1, size=1)

    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError):
            TransferRecord(start=0, duration=1, size=1, streams=0)

    def test_zero_stripes_rejected(self):
        with pytest.raises(ValueError):
            TransferRecord(start=0, duration=1, size=1, stripes=0)


class TestTransferLogConstruction:
    def test_empty_log(self):
        log = TransferLog()
        assert len(log) == 0
        assert list(log) == []

    def test_missing_columns_get_defaults(self):
        log = TransferLog({"start": [1.0], "duration": [2.0], "size": [3.0]})
        assert log.streams[0] == 1
        assert log.remote_host[0] == ANONYMIZED_HOST

    def test_unknown_column_rejected(self):
        with pytest.raises(KeyError):
            TransferLog({"bogus": [1]})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TransferLog({"start": [1.0, 2.0], "size": [1.0]})

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TransferLog({"start": [0.0], "duration": [1.0], "size": [-5.0]})

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(ValueError):
            TransferLog({"start": np.zeros((2, 2))})

    def test_from_records_roundtrip(self):
        recs = [
            TransferRecord(start=1.0, duration=2.0, size=3e6, streams=4),
            TransferRecord(start=5.0, duration=1.0, size=7e6, stripes=2),
        ]
        log = TransferLog.from_records(recs)
        assert len(log) == 2
        assert log.record(0) == recs[0]
        assert log.record(1) == recs[1]

    def test_concatenate(self):
        a, b = make_log(3, seed=1), make_log(4, seed=2)
        cat = TransferLog.concatenate([a, b])
        assert len(cat) == 7
        assert np.array_equal(cat.start[:3], a.start)

    def test_concatenate_empty_list(self):
        assert len(TransferLog.concatenate([])) == 0


class TestTransferLogAccess:
    def test_record_out_of_range(self):
        with pytest.raises(IndexError):
            make_log(3).record(3)

    def test_record_negative_index(self):
        log = make_log(3)
        assert log.record(-1) == log.record(2)

    def test_end_column(self):
        log = make_log(5)
        assert np.allclose(log.end, log.start + log.duration)

    def test_throughput_column(self):
        log = make_log(5)
        assert np.allclose(log.throughput_bps, log.size * 8 / log.duration)

    def test_throughput_zero_duration(self):
        log = TransferLog({"start": [0.0], "duration": [0.0], "size": [10.0]})
        assert log.throughput_bps[0] == 0.0

    def test_iteration_yields_records(self):
        log = make_log(4)
        recs = list(log)
        assert len(recs) == 4
        assert all(isinstance(r, TransferRecord) for r in recs)

    def test_equality(self):
        assert make_log(4, seed=3) == make_log(4, seed=3)
        assert make_log(4, seed=3) != make_log(4, seed=4)

    def test_repr(self):
        assert "4" in repr(make_log(4))


class TestTransferLogTransforms:
    def test_select_boolean_mask(self):
        log = make_log(10)
        mask = log.size > np.median(log.size)
        sub = log.select(mask)
        assert len(sub) == int(mask.sum())
        assert np.all(sub.size > np.median(log.size))

    def test_select_index_array(self):
        log = make_log(10)
        sub = log.select(np.array([2, 5, 7]))
        assert len(sub) == 3
        assert sub.record(0) == log.record(2)

    def test_sorted_by_start(self):
        log = make_log(10, seed=9)
        shuffled = log.select(np.random.default_rng(0).permutation(10))
        resorted = shuffled.sorted_by_start()
        assert np.all(np.diff(resorted.start) >= 0)

    def test_structured_roundtrip(self):
        log = make_log(6)
        arr = log.to_structured()
        assert arr.shape == (6,)
        back = TransferLog.from_structured(arr)
        assert back == log

    def test_anonymize_remote(self):
        log = make_log(5)
        anon = log.anonymize_remote()
        assert anon.is_anonymized
        assert not log.is_anonymized  # original untouched

    def test_pairs(self):
        log = make_log(5)
        pairs = log.pairs()
        assert pairs.shape == (1, 2)
        assert tuple(pairs[0]) == (0, 7)

    def test_for_pair(self):
        log = make_log(5)
        assert len(log.for_pair(0, 7)) == 5
        assert len(log.for_pair(1, 7)) == 0

    def test_empty_log_is_not_anonymized(self):
        assert not TransferLog().is_anonymized
