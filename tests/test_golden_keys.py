"""Golden-key regression tests: the cache identity layer is byte-stable.

Every artifact on disk is addressed by :func:`cell_key`, every
checkpoint journal by :func:`spec_fingerprint`, and every pipeline
stage's inputs by :func:`keys_digest`.  A silent change to any of these
— a reordered field, a new default leaking into the identity dict, a
canonical-JSON tweak — would orphan every cache and checkpoint users
have on disk while looking like a no-op in ordinary tests (everything
still *works*, it just recomputes).  So the current values are pinned
here as literal hex fixtures: if one of these tests fails, either
revert the change, or bump the cache version and say so loudly in the
changelog — never "fix the test" quietly.
"""

from repro.experiments import (
    ExperimentSpec,
    cell_key,
    keys_digest,
    spec_fingerprint,
)

#: a representative flat cell identity, pinned at cache version 2
GOLDEN_FLAT_KEY = (
    "b8c820dbf579f8adcaf619ac4788f24109ad37ed47adb6d0b850155b0ab4bc73"
)
#: the same machinery with upstream digests folded in
GOLDEN_INPUTS_KEY = (
    "4fca4b69c9081c40141c67ed60ffba2e565e3ea0f0e804ecf2a375e5812a375f"
)
GOLDEN_FLAT_FINGERPRINT = (
    "1f5d6857e29509262393b281c0993ec0cab13f839d86bacc0ef53c3e9faee53a"
)
GOLDEN_INPUTS_FINGERPRINT = (
    "cfff08a2ff0c5133e30fe800f220fbf65440aaf34ef8b96388a789cb5b82cc36"
)
GOLDEN_KEYS_DIGEST = (
    "ae64a715c0313bb2039463bfdb2cf0ff3c30f6085a021e2423b1a64585f04670"
)

_INPUTS = {"workload": "a" * 64}


def _golden_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="golden",
        scenario="chaos",
        params={"n_jobs": 4},
        axes={"flaps_per_hour": (0.0, 10.0)},
        seed=11,
        seed_mode="shared",
    )


class TestGoldenCellKeys:
    def test_flat_cell_key_is_pinned(self):
        key = cell_key("chaos", {"n_jobs": 4, "flaps_per_hour": 10.0}, 11)
        assert key == GOLDEN_FLAT_KEY

    def test_param_order_does_not_move_the_key(self):
        key = cell_key("chaos", {"flaps_per_hour": 10.0, "n_jobs": 4}, 11)
        assert key == GOLDEN_FLAT_KEY

    def test_inputs_cell_key_is_pinned(self):
        key = cell_key(
            "managed_from_workload", {"n_tasks": 2}, 3, inputs=_INPUTS
        )
        assert key == GOLDEN_INPUTS_KEY

    def test_empty_inputs_mean_flat(self):
        # inputs={} must hash exactly like inputs=None: a flat spec run
        # through the pipeline plumbing keeps its historical artifacts
        flat = cell_key("chaos", {"n_jobs": 4, "flaps_per_hour": 10.0}, 11)
        empty = cell_key(
            "chaos", {"n_jobs": 4, "flaps_per_hour": 10.0}, 11, inputs={}
        )
        assert flat == empty == GOLDEN_FLAT_KEY


class TestGoldenFingerprints:
    def test_flat_fingerprint_is_pinned(self):
        assert spec_fingerprint(_golden_spec()) == GOLDEN_FLAT_FINGERPRINT

    def test_inputs_fingerprint_is_pinned(self):
        fp = spec_fingerprint(_golden_spec(), inputs=_INPUTS)
        assert fp == GOLDEN_INPUTS_FINGERPRINT

    def test_empty_inputs_mean_flat(self):
        fp = spec_fingerprint(_golden_spec(), inputs={})
        assert fp == GOLDEN_FLAT_FINGERPRINT

    def test_inputs_change_the_fingerprint(self):
        fp = spec_fingerprint(_golden_spec(), inputs={"workload": "b" * 64})
        assert fp not in (GOLDEN_FLAT_FINGERPRINT, GOLDEN_INPUTS_FINGERPRINT)


class TestGoldenDigests:
    def test_keys_digest_is_pinned(self):
        digest = keys_digest([GOLDEN_FLAT_KEY, GOLDEN_INPUTS_KEY])
        assert digest == GOLDEN_KEYS_DIGEST

    def test_digest_is_order_sensitive(self):
        # the digest identifies an *ordered* grid; a reordered upstream
        # is different data to a consumer
        digest = keys_digest([GOLDEN_INPUTS_KEY, GOLDEN_FLAT_KEY])
        assert digest != GOLDEN_KEYS_DIGEST
