"""Unit tests for the managed transfer service (Globus-Online layer)."""

import numpy as np
import pytest

from repro.gridftp.reliability import FaultModel, RestartPolicy
from repro.gridftp.transfer_service import (
    ManagedTransferService,
    TaskState,
    TransferTask,
)


def flat_rate(_src, _dst):
    return 1e9


class TestTaskValidation:
    def test_empty_task_rejected(self):
        with pytest.raises(ValueError):
            TransferTask(0, 1, 2, (), 0.0)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            TransferTask(0, 1, 2, (0.0,), 0.0)

    def test_bad_deadline(self):
        with pytest.raises(ValueError):
            TransferTask(0, 1, 2, (1.0,), 0.0, deadline_s=0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TransferTask(0, 1, 2, (1e9, -5.0), 0.0)

    def test_non_finite_size_rejected(self):
        with pytest.raises(ValueError):
            TransferTask(0, 1, 2, (float("nan"),), 0.0)
        with pytest.raises(ValueError):
            TransferTask(0, 1, 2, (float("inf"),), 0.0)

    def test_bad_submitted_at_rejected(self):
        with pytest.raises(ValueError):
            TransferTask(0, 1, 2, (1e9,), -1.0)
        with pytest.raises(ValueError):
            TransferTask(0, 1, 2, (1e9,), float("nan"))

    def test_non_finite_deadline_rejected(self):
        with pytest.raises(ValueError):
            TransferTask(0, 1, 2, (1e9,), 0.0, deadline_s=float("inf"))


class TestSubmitValidation:
    """`submit` refuses malformed requests before they reach the queue."""

    def test_empty_file_list(self):
        svc = ManagedTransferService(flat_rate)
        with pytest.raises(ValueError, match="at least one file"):
            svc.submit(1, 2, [])

    @pytest.mark.parametrize("sizes", [[0.0], [-1e9], [1e9, 0.0], [float("nan")]])
    def test_non_positive_sizes(self, sizes):
        svc = ManagedTransferService(flat_rate)
        with pytest.raises(ValueError):
            svc.submit(1, 2, sizes)

    def test_negative_submitted_at(self):
        svc = ManagedTransferService(flat_rate)
        with pytest.raises(ValueError):
            svc.submit(1, 2, [1e9], submitted_at=-0.5)

    def test_rejected_submission_leaves_no_trace(self):
        svc = ManagedTransferService(flat_rate)
        with pytest.raises(ValueError):
            svc.submit(1, 2, [-1.0])
        tid = svc.submit(1, 2, [1e9])
        log = svc.run()
        # the failed submit queued nothing; the service works normally
        assert svc.task(tid).state is TaskState.SUCCEEDED
        assert len(log) == 1


class TestHappyPath:
    def test_single_task_completes(self):
        svc = ManagedTransferService(flat_rate)
        tid = svc.submit(1, 2, [1e9, 2e9], submitted_at=100.0)
        log = svc.run()
        assert svc.task(tid).state is TaskState.SUCCEEDED
        assert len(log) == 2
        assert log.start[0] == 100.0
        assert log.duration[0] == pytest.approx(8.0)
        # second file starts when the first ends
        assert log.start[1] == pytest.approx(108.0)

    def test_log_hosts(self):
        svc = ManagedTransferService(flat_rate)
        svc.submit(3, 7, [1e9])
        log = svc.run()
        assert log.local_host[0] == 3
        assert log.remote_host[0] == 7

    def test_event_audit_trail(self):
        svc = ManagedTransferService(flat_rate)
        tid = svc.submit(1, 2, [1e9])
        svc.run()
        kinds = [e.event for e in svc.events_for(tid)]
        assert kinds == ["submitted", "activated", "succeeded"]

    def test_states_dashboard(self):
        svc = ManagedTransferService(flat_rate)
        svc.submit(1, 2, [1e9])
        svc.submit(1, 2, [1e9])
        svc.run()
        assert svc.states()[TaskState.SUCCEEDED] == 2
        assert svc.states()[TaskState.QUEUED] == 0


class TestConcurrencyAndFairness:
    def test_concurrency_cap_queues_excess(self):
        svc = ManagedTransferService(flat_rate, concurrency=1)
        a = svc.submit(1, 2, [1e9], submitted_at=0.0)
        b = svc.submit(1, 2, [1e9], submitted_at=0.0)
        svc.run()
        # both succeed; with one slot, task b only activates after a ends
        events_b = svc.events_for(b)
        assert [e.event for e in events_b] == ["submitted", "activated", "succeeded"]
        assert svc.task(a).state is TaskState.SUCCEEDED

    def test_round_robin_interleaves_files(self):
        """A long task does not starve a short one sharing the endpoint."""
        svc = ManagedTransferService(flat_rate, concurrency=2)
        long_task = svc.submit(1, 2, [1e9] * 10, submitted_at=0.0)
        short = svc.submit(1, 2, [1e9], submitted_at=0.0)
        svc.run()
        done = {e.task_id: e.time for e in svc.events if e.event == "succeeded"}
        assert done[short] < done[long_task]

    def test_bad_concurrency(self):
        with pytest.raises(ValueError):
            ManagedTransferService(flat_rate, concurrency=0)


class TestFaultsAndDeadlines:
    def test_faulty_files_retry_and_finish(self):
        svc = ManagedTransferService(
            flat_rate,
            fault_model=FaultModel(faults_per_hour=120.0),
            restart_policy=RestartPolicy(marker_interval_bytes=32e6),
            max_attempts_per_file=1000,
        )
        tid = svc.submit(1, 2, [4e9] * 5)
        log = svc.run(rng=np.random.default_rng(1))
        assert svc.task(tid).state is TaskState.SUCCEEDED
        assert len(log) == 5
        # faults inflate durations beyond the clean 32 s
        assert log.duration.sum() > 5 * 32.0

    def test_retry_exhaustion_fails_task(self):
        svc = ManagedTransferService(
            flat_rate,
            fault_model=FaultModel(faults_per_hour=50_000.0),
            restart_policy=RestartPolicy(marker_interval_bytes=None),
            max_attempts_per_file=2,
        )
        tid = svc.submit(1, 2, [10e9])
        svc.run(rng=np.random.default_rng(0))
        assert svc.task(tid).state is TaskState.FAILED

    def test_deadline_expiry_mid_batch(self):
        svc = ManagedTransferService(flat_rate)
        # 5 files x 8 s at 1 Gbps; 20 s budget -> expires partway
        tid = svc.submit(1, 2, [1e9] * 5, deadline_s=20.0)
        log = svc.run()
        task = svc.task(tid)
        assert task.state is TaskState.EXPIRED
        assert 1 <= task.files_done < 5
        assert len(log) == task.files_done

    def test_failed_task_keeps_partial_log(self):
        svc = ManagedTransferService(
            flat_rate,
            fault_model=FaultModel(faults_per_hour=50_000.0),
            restart_policy=RestartPolicy(marker_interval_bytes=None),
            max_attempts_per_file=2,
        )
        svc.submit(1, 2, [1e5, 10e9])  # tiny file succeeds, big one cannot
        log = svc.run(rng=np.random.default_rng(0))
        assert len(log) == 1
        assert log.size[0] == 1e5


class TestRateCallable:
    def test_per_pair_rates_respected(self):
        def rate_for(src, dst):
            return 2e9 if (src, dst) == (1, 2) else 0.5e9

        svc = ManagedTransferService(rate_for, concurrency=2)
        fast = svc.submit(1, 2, [1e9])
        slow = svc.submit(3, 4, [1e9])
        log = svc.run()
        durations = {
            int(log.local_host[i]): float(log.duration[i]) for i in range(2)
        }
        assert durations[1] == pytest.approx(4.0)
        assert durations[3] == pytest.approx(16.0)
        assert svc.task(fast).state is svc.task(slow).state is TaskState.SUCCEEDED
