"""Unit tests for anonymization / pseudonymization."""

import numpy as np
import pytest

from repro.core.sessions import group_sessions
from repro.gridftp.anonymize import pseudonymize_remote_hosts, scrub_remote_hosts
from repro.gridftp.records import ANONYMIZED_HOST, TransferLog


def make_log():
    rng = np.random.default_rng(5)
    n = 60
    return TransferLog(
        {
            "start": np.sort(rng.uniform(0, 1e5, n)),
            "duration": rng.uniform(1, 20, n),
            "size": rng.uniform(1e6, 1e9, n),
            "local_host": np.zeros(n, dtype=np.int32),
            "remote_host": rng.integers(0, 4, n),
        }
    )


class TestScrub:
    def test_scrub_blocks_session_analysis(self):
        scrubbed = scrub_remote_hosts(make_log())
        assert scrubbed.is_anonymized
        with pytest.raises(ValueError):
            group_sessions(scrubbed, 60.0)

    def test_scrub_preserves_other_columns(self):
        log = make_log()
        scrubbed = scrub_remote_hosts(log)
        assert np.array_equal(scrubbed.size, log.size)
        assert np.array_equal(scrubbed.start, log.start)


class TestPseudonymize:
    def test_mapping_consistent(self):
        log = make_log()
        pseudo, reverse = pseudonymize_remote_hosts(log)
        recovered = np.array([reverse[int(h)] for h in pseudo.remote_host])
        assert np.array_equal(recovered, log.remote_host)

    def test_pseudonyms_disjoint_from_real_ids(self):
        pseudo, _ = pseudonymize_remote_hosts(make_log())
        assert pseudo.remote_host.min() >= 2**20

    def test_distinct_hosts_stay_distinct(self):
        log = make_log()
        pseudo, _ = pseudonymize_remote_hosts(log)
        assert len(np.unique(pseudo.remote_host)) == len(
            np.unique(log.remote_host)
        )

    def test_session_structure_preserved(self):
        """The remediation property: pseudonyms keep sessions recoverable."""
        log = make_log()
        pseudo, _ = pseudonymize_remote_hosts(log)
        s_orig = group_sessions(log, 60.0)
        s_pseudo = group_sessions(pseudo, 60.0)
        assert len(s_orig) == len(s_pseudo)
        assert sorted(s_orig.n_transfers) == sorted(s_pseudo.n_transfers)

    def test_deterministic_by_seed(self):
        log = make_log()
        a, _ = pseudonymize_remote_hosts(log, seed=1)
        b, _ = pseudonymize_remote_hosts(log, seed=1)
        c, _ = pseudonymize_remote_hosts(log, seed=2)
        assert np.array_equal(a.remote_host, b.remote_host)
        assert not np.array_equal(a.remote_host, c.remote_host)

    def test_already_anonymized_rejected(self):
        with pytest.raises(ValueError):
            pseudonymize_remote_hosts(scrub_remote_hosts(make_log()))
